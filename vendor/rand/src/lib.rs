//! Offline stand-in for the `rand` crate (0.9-style API subset).
//!
//! This build environment has no network access, so the workspace vendors
//! the small surface its tests use: [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] over integer ranges, and [`Rng::random_bool`].
//! `rngs::StdRng` is a xoshiro256++ generator seeded via SplitMix64 — not
//! the real StdRng (ChaCha12), but a high-quality deterministic PRNG with
//! the same contract for test purposes.

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can serve as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// The raw 64-bit generation interface.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the given range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, exactly as rand does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range for random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range for random_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range for random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range for random_range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i32 => u32, i64 => u64, isize => usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the real `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.random_range(0usize..=0);
            assert_eq!(w, 0);
            let x = r.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
