//! End-to-end exercise of the vendored `proptest!` macro: generated
//! bindings, config override, composite strategies, and failure reporting.

use proptest::prelude::*;

proptest! {
    #[test]
    fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn composite_strategies_generate_in_bounds(
        v in prop::collection::vec(any::<u8>(), 0..10),
        name in "[a-z]{1,5}",
        pick in prop::sample::select(vec![2usize, 4, 8]),
        flag in prop::bool::ANY,
        pair in (0usize..3, 10u64..20).prop_map(|(x, y)| y + x as u64),
    ) {
        prop_assert!(v.len() < 10);
        prop_assert!((1..=5).contains(&name.len()));
        prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()));
        prop_assert!([2usize, 4, 8].contains(&pick));
        prop_assert!(flag || !flag);
        prop_assert!((10..23).contains(&pair));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    #[should_panic(expected = "always fails")]
    fn failing_property_panics_with_inputs(a in 0u64..10) {
        prop_assert!(a > 100, "always fails (a = {})", a);
    }
}

#[test]
fn cases_actually_loop() {
    // Count executions through a thread-local to prove the macro runs the
    // configured number of cases.
    use std::cell::Cell;
    thread_local! { static COUNT: Cell<u32> = const { Cell::new(0) }; }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        fn counted(_x in 0u64..5) {
            COUNT.with(|c| c.set(c.get() + 1));
        }
    }
    counted();
    assert_eq!(COUNT.with(|c| c.get()), 17);
}
