//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `true` or `false` with equal probability.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// The canonical boolean strategy instance.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Returns a strategy yielding `true` with the given probability.
pub fn weighted(p: f64) -> Weighted {
    Weighted { p }
}

/// Strategy returned by [`weighted`].
#[derive(Clone, Copy, Debug)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_hits_both_values() {
        let mut rng = TestRng::from_seed(7);
        let trues = (0..1000).filter(|_| ANY.generate(&mut rng)).count();
        assert!((300..700).contains(&trues), "got {trues}");
    }
}
