//! The [`Arbitrary`] trait and [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_range() {
        let mut rng = TestRng::from_seed(8);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[any::<u8>().generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&b| b).count() > 250);
    }
}
