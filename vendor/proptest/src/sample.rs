//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Returns a strategy choosing uniformly among the given values.
pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.usize_in(0, self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_picks_all_options_eventually() {
        let mut rng = TestRng::from_seed(6);
        let s = select(vec!["a", "b", "c"]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
