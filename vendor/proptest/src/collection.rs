//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: r.end() + 1,
        }
    }
}

/// Generates a `Vec` of values from `element`, with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_seed(4);
        let s = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn vec_fixed_size() {
        let mut rng = TestRng::from_seed(5);
        assert_eq!(vec(0u8..2, 3usize).generate(&mut rng).len(), 3);
    }
}
