//! The [`Strategy`] trait and core combinators: ranges, tuples, map.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Unlike the real proptest (which generates *value trees* that can shrink),
/// this stand-in generates plain values; failing cases are reported with
/// their full inputs instead of being shrunk.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// `&str` literals act as regex-like string strategies (generative subset:
/// literals, `.`, `[..]` classes, and `* + ? {m} {m,n}` quantifiers).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..=4).generate(&mut rng);
            assert!(w <= 4);
            let x = (0u64..u64::MAX).generate(&mut rng);
            assert!(x < u64::MAX);
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = (0u64..10, 0usize..3).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 13);
        }
    }

    #[test]
    fn just_yields_value() {
        let mut rng = TestRng::from_seed(3);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }
}
