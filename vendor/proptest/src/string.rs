//! Generative regex subset: `&str` strategies like `"[a-z0-9]{1,40}"`.
//!
//! Supports literal characters, `.` (any printable ASCII), character
//! classes `[..]` with ranges, escapes, and the quantifiers `*`, `+`, `?`,
//! `{m}`, `{m,n}`. Unbounded quantifiers are capped at 8 repetitions. This
//! is a *generator*, not a matcher — exactly what property tests need.

use crate::test_runner::TestRng;

/// Maximum repetitions for `*` and `+`.
const UNBOUNDED_CAP: usize = 8;

#[derive(Debug)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// `.`: any printable ASCII character.
    AnyChar,
    /// `[..]`: one of an explicit set.
    Class(Vec<char>),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// Generates one string matching the pattern.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = if piece.min == piece.max {
            piece.min
        } else {
            rng.usize_in(piece.min, piece.max + 1)
        };
        for _ in 0..n {
            out.push(gen_atom(&piece.atom, rng));
        }
    }
    out
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        // Printable ASCII (space through tilde).
        Atom::AnyChar => (0x20 + rng.below(0x5f) as u8) as char,
        Atom::Class(set) => set[rng.usize_in(0, set.len())],
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let set = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                i += 1;
                Atom::Literal(unescape(c))
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                parse_counts(&body, pattern)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_counts(body: &str, pattern: &str) -> (usize, usize) {
    if let Some((lo, hi)) = body.split_once(',') {
        let lo: usize = lo.trim().parse().unwrap_or(0);
        let hi: usize = hi
            .trim()
            .parse()
            .unwrap_or_else(|_| (lo + UNBOUNDED_CAP).max(lo));
        assert!(lo <= hi, "bad counts in {pattern:?}");
        (lo, hi)
    } else {
        let n: usize = body
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad count in {pattern:?}"));
        (n, n)
    }
}

fn parse_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty class in {pattern:?}");
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // A `-` between two chars forms a range; at the ends it is literal.
        if body[i] == '\\' {
            i += 1;
            set.push(unescape(body[i]));
            i += 1;
        } else if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_and_trailing_dash() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..500 {
            let s = generate_from_pattern("[a-zA-Z0-9/_-]{1,40}", &mut rng);
            assert!((1..=40).contains(&s.len()), "len {}", s.len());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "/_-".contains(c)));
        }
    }

    #[test]
    fn dot_star_generates_printable() {
        let mut rng = TestRng::from_seed(10);
        for _ in 0..200 {
            let s = generate_from_pattern(".*", &mut rng);
            assert!(s.len() <= UNBOUNDED_CAP);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::from_seed(11);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
        assert_eq!(generate_from_pattern("x{3}", &mut rng), "xxx");
    }
}
