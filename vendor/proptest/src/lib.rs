//! Offline stand-in for the `proptest` crate.
//!
//! This build environment has no network access, so the workspace vendors a
//! compact property-testing engine covering the API subset its tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * strategies: integer ranges, tuples, [`collection::vec`],
//!   [`sample::select`], [`bool::ANY`](crate::bool::ANY), [`any`],
//!   `&str` regex literals (a generative subset), and
//!   [`Strategy::prop_map`].
//!
//! Compared to the real crate there is **no shrinking** and no persisted
//! failure corpus: a failing case panics with the full generated inputs so
//! it can be replayed by reading the panic message. Case generation is
//! deterministic per test (seeded from the test's module path), so failures
//! reproduce across runs.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The user-facing prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace of strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::string;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the generated inputs reported) rather than unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)*),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                let inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", &$arg));
                        s.push_str(", ");
                    )+
                    s
                };
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
