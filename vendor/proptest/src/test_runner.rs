//! Test-runner plumbing: configuration, RNG, and case-failure reporting.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest default. Override per-block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`, or globally
        // via the PROPTEST_CASES environment variable.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A failed property case, carrying the failure message.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias for [`TestCaseError::fail`], mirroring the real API.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG used to drive strategies (xoshiro256++ seeded by
/// hashing the test's module path, so each test has a stable stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates an RNG whose stream is a deterministic function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    /// Creates an RNG from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a value uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Returns a value uniform in `[lo, hi)` as usize.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_deterministic_per_name() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        let mut c = TestRng::deterministic("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn config_default_and_with_cases() {
        assert!(ProptestConfig::default().cases > 0);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
