//! Offline stand-in for the `bytes` crate.
//!
//! This build environment has no network access, so the workspace vendors a
//! minimal implementation of the API subset it actually uses: [`Bytes`], a
//! cheaply cloneable, immutable, contiguous byte buffer. Swapping in the real
//! crate is a one-line change in the workspace manifest.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Clones share the underlying allocation (or point at static data), matching
/// the real `bytes::Bytes` cost model closely enough for simulation use.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    /// A window (`off..off + len`) into a shared allocation. Slicing
    /// narrows the window without copying, matching the real crate's
    /// zero-copy contract.
    Shared {
        buf: Arc<Vec<u8>>,
        off: usize,
        len: usize,
    },
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Creates `Bytes` from a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(bytes),
        }
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns true if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-slice of the buffer as a new `Bytes` **without
    /// copying**: the result shares the underlying allocation (or static
    /// data) and only narrows the visible window. Panics when the range
    /// is out of bounds, like slice indexing.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice {start}..{end} of {len}");
        match &self.inner {
            Inner::Static(s) => Bytes {
                inner: Inner::Static(&s[start..end]),
            },
            Inner::Shared { buf, off, .. } => Bytes {
                inner: Inner::Shared {
                    buf: buf.clone(),
                    off: off + start,
                    len: end - start,
                },
            },
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared { buf, off, len } => &buf[*off..*off + *len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            inner: Inner::Shared {
                buf: Arc::new(v),
                off: 0,
                len,
            },
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b == b'"' {
                write!(f, "\\\"")?;
            } else if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn static_and_clone_share() {
        let s = Bytes::from_static(b"hello");
        let c = s.clone();
        assert_eq!(&s[..], b"hello");
        assert_eq!(c, s);
    }

    #[test]
    fn slicing() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(a.slice(1..3), Bytes::from(vec![2, 3]));
        assert_eq!(a.slice(..), a);
    }

    #[test]
    fn slicing_is_zero_copy() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = a.slice(2..4);
        assert_eq!(s, Bytes::from(vec![3, 4]));
        // The slice points into the parent's allocation, not a copy.
        assert_eq!(s.as_ref().as_ptr(), a[2..].as_ptr());
        let nested = s.slice(1..2);
        assert_eq!(nested, Bytes::from(vec![4]));
        assert_eq!(nested.as_ref().as_ptr(), a[3..].as_ptr());
    }

    #[test]
    #[should_panic]
    fn slicing_out_of_bounds_panics() {
        let a = Bytes::from(vec![1, 2, 3]);
        let _ = a.slice(1..5);
    }

    #[test]
    fn debug_escapes() {
        let a = Bytes::from(vec![b'h', 0x01]);
        assert_eq!(format!("{a:?}"), "b\"h\\x01\"");
    }
}
