//! Offline stand-in for the `criterion` crate.
//!
//! This build environment has no network access, so the workspace vendors a
//! minimal benchmarking harness with criterion's API shape: groups,
//! `bench_function`, `iter`/`iter_batched`/`iter_with_setup`, throughput
//! annotation, and the `criterion_group!`/`criterion_main!` macros. It
//! measures a median-of-samples nanoseconds-per-iteration and prints one
//! line per benchmark — enough to compare hot paths locally; swap in the
//! real crate for statistics, plots and regression tracking.

use std::time::{Duration, Instant};

/// How a batch of inputs is sized in `iter_batched` (accepted for API
/// compatibility; this harness always batches per-iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; configuration flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 30,
            throughput: None,
        }
    }

    /// Prints the final summary (no-op in this stand-in).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples_ns: Vec::new(),
        target_samples: samples,
    };
    f(&mut b);
    b.samples_ns.sort_unstable_by(f64::total_cmp);
    let median = if b.samples_ns.is_empty() {
        0.0
    } else {
        b.samples_ns[b.samples_ns.len() / 2]
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!(
                "  {:>10.1} MiB/s",
                n as f64 / median * 1e9 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>10.1} Melem/s", n as f64 / median * 1e3)
        }
        _ => String::new(),
    };
    println!("bench: {name:<48} {median:>14.1} ns/iter{rate}");
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<f64>,
    target_samples: usize,
}

impl Bencher {
    /// Measures the routine, called repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in ~2ms?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(10));
        let per_sample = ((2_000_000u128 / once.as_nanos()).clamp(1, 100_000)) as u32;
        for _ in 0..self.target_samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Measures a routine over inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.target_samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t.elapsed().as_nanos() as f64);
        }
    }

    /// Like [`Bencher::iter_batched`] with per-iteration batches.
    pub fn iter_with_setup<I, O>(&mut self, setup: impl FnMut() -> I, routine: impl FnMut(I) -> O) {
        self.iter_batched(setup, routine, BatchSize::PerIteration)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_flows() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("noop", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
