//! Shared helpers for the workspace-level integration tests.

use p2p_ltr::harness::LtrNet;
use p2p_ltr::LtrConfig;
use simnet::{Duration, NetConfig};

/// Build a network over the given net model and let it stabilize.
pub fn stabilized(seed: u64, net_cfg: NetConfig, peers: usize, cfg: LtrConfig) -> LtrNet {
    let mut net = LtrNet::build(seed, net_cfg, peers, cfg, Duration::from_millis(150));
    net.settle(20 + peers as u64 / 4);
    net
}

/// Assert the three correctness oracles all pass, with readable diagnostics.
pub fn assert_invariants(net: &LtrNet) {
    let cont = p2p_ltr::check_continuity(&net.sim);
    assert!(
        cont.is_clean(),
        "continuity violated: dups={:?} gaps={:?}",
        cont.duplicates,
        cont.gaps
    );
    let order = p2p_ltr::check_total_order(&net.sim);
    assert!(
        order.is_clean(),
        "total order violated: {:?}",
        order.violations
    );
    let conv = p2p_ltr::check_convergence(&net.sim);
    assert!(
        conv.is_converged(),
        "diverged: busy={} variants={:?}",
        conv.busy_replicas,
        conv.variants
    );
}
