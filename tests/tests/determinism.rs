//! Workspace-level reproducibility guard: the simulator's headline claim is
//! that every experiment is a pure function of its seed. Two `LtrNet::build`
//! runs with the same seed and workload must produce **byte-identical**
//! metrics output — every counter, every histogram sample, every `Summary`
//! line — while a different seed must actually perturb the run.

use ltr_integration::{assert_invariants, stabilized};
use p2p_ltr::harness::LtrNet;
use p2p_ltr::LtrConfig;
use simnet::{NetConfig, Summary};
use std::fmt::Write as _;

const DOC: &str = "wiki/Determinism";

/// Run a fixed collaborative-editing session and return the network.
fn session(seed: u64) -> LtrNet {
    let mut net = stabilized(seed, NetConfig::lan(), 12, LtrConfig::default());
    let peers = net.peers.clone();
    net.open_doc(&peers[..4], DOC, "base");
    net.settle(1);
    for round in 0..6 {
        let editor = peers[round % 4];
        let cur = net.node(editor).doc_text(DOC).unwrap();
        net.edit(editor, DOC, &format!("{cur}\nedit-{round}"));
        net.run_until_quiet(&[DOC], 30);
    }
    // A late reader joins the document and catches up from the log.
    net.open_doc(&[peers[5]], DOC, "base");
    net.settle(10);
    net
}

/// Serialize the complete metrics state: counters (both the pre-registered
/// `CounterId` slots and the string-keyed compatibility layer land in the
/// same name-ordered iteration), raw histogram samples (bit-exact via
/// `f64::to_bits`), the formatted `Summary` of each histogram, the event
/// count, and per-node document state (exercising the interned `DocName`
/// paths: open-doc listing, timestamps, grant records). Any nondeterminism
/// anywhere in the stack shows up here.
fn metrics_dump(net: &LtrNet) -> String {
    let m = net.sim.metrics();
    let mut out = String::new();
    writeln!(out, "events_processed = {}", net.sim.events_processed()).unwrap();
    for (name, v) in m.counters() {
        writeln!(out, "counter {name} = {v}").unwrap();
    }
    for (name, h) in m.histograms() {
        let bits: Vec<u64> = h.samples().iter().map(|s| s.to_bits()).collect();
        let s: Summary = h.summary();
        writeln!(
            out,
            "hist {name} n={} summary=[{s}] samples={bits:?}",
            h.count()
        )
        .unwrap();
    }
    for p in &net.peers {
        let node = net.node(*p);
        for doc in node.open_docs() {
            writeln!(
                out,
                "node {} doc {doc} ts={} busy={}",
                p.addr,
                node.doc_ts(&doc).unwrap_or(0),
                node.is_busy(&doc)
            )
            .unwrap();
        }
        for (doc, ts) in node.grants() {
            writeln!(out, "node {} granted {doc}@{ts}", p.addr).unwrap();
        }
    }
    out
}

#[test]
fn same_seed_produces_byte_identical_metrics() {
    let a = session(0xDE7E_12);
    let b = session(0xDE7E_12);
    assert_invariants(&a);
    assert_invariants(&b);

    let dump_a = metrics_dump(&a);
    let dump_b = metrics_dump(&b);
    assert!(!dump_a.is_empty(), "expected a populated metrics registry");
    // The dump must cover both counter flavours (pre-registered sim.*
    // handles and string-keyed protocol counters) and the DocName paths.
    assert!(dump_a.contains("counter sim.msgs_delivered"));
    assert!(dump_a.contains("counter ltr.publish_ok"));
    assert!(dump_a.contains(&format!("doc {DOC}")));
    assert!(dump_a.contains(&format!("granted {DOC}@")));
    if dump_a != dump_b {
        // Point at the first diverging line for a readable failure.
        for (la, lb) in dump_a.lines().zip(dump_b.lines()) {
            assert_eq!(la, lb, "first metrics divergence between identical seeds");
        }
        panic!(
            "metrics dumps differ in length: {} vs {} bytes",
            dump_a.len(),
            dump_b.len()
        );
    }

    // The documents themselves must match too, replica by replica.
    for (pa, pb) in a.peers.iter().zip(b.peers.iter()) {
        assert_eq!(
            a.node(*pa).doc_text(DOC),
            b.node(*pb).doc_text(DOC),
            "replica text diverged between identical seeds"
        );
        assert_eq!(a.node(*pa).doc_ts(DOC), b.node(*pb).doc_ts(DOC));
    }
}

#[test]
fn different_seed_perturbs_the_run() {
    // Guards against the oracle being vacuous (e.g. metrics_dump returning
    // a constant): a different seed must change latency samples somewhere.
    let a = session(0xDE7E_12);
    let c = session(0xC0FFEE);
    assert_ne!(
        metrics_dump(&a),
        metrics_dump(&c),
        "distinct seeds produced identical metrics — dump is not sensitive"
    );
}
