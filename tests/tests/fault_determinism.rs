//! Determinism survives fault injection: any seeded [`FaultPlan`]
//! replayed with the same seeds yields a **byte-identical** event log
//! (message trace, every counter, every replica), and an inert plan
//! leaves the run indistinguishable from one with no plan installed at
//! all — the fault engine draws from its own RNG and never perturbs the
//! zero-fault stream.

use p2p_ltr::harness::LtrNet;
use p2p_ltr::{LtrConfig, LtrNode};
use proptest::prelude::*;
use simnet::{Duration, FaultPlan, LinkFaults, NetConfig};
use workload::{drive_editors, EditMix, EditorSpec};

const DOCS: usize = 2;

/// Run a small faulted collaborative session and serialize everything
/// observable: the full message trace, event count, all counters, and
/// per-replica document state. A run that panics (the protocol's loud
/// divergence detector can fire inside aggressive generated envelopes —
/// see the residual-races note in `workload::scenario`) serializes to
/// its deterministic panic message instead: replay determinism must hold
/// for failing executions exactly as for clean ones.
fn faulted_session_dump(sim_seed: u64, plan: Option<FaultPlan>) -> String {
    let plan2 = plan.clone();
    match std::panic::catch_unwind(move || faulted_session_dump_inner(sim_seed, plan2)) {
        Ok(dump) => dump,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            format!("PANIC: {msg}\n")
        }
    }
}

fn faulted_session_dump_inner(sim_seed: u64, plan: Option<FaultPlan>) -> String {
    let mut net = LtrNet::build_with_stores(
        sim_seed,
        NetConfig::lan(),
        6,
        LtrConfig::default(),
        Duration::from_millis(150),
        |_| Box::new(store::MemStore::new()),
    );
    if let Some(plan) = plan {
        net.install_faults(plan);
    }
    net.sim.set_trace(true);
    net.settle(21);
    let peers = net.peers.clone();
    let docs: Vec<String> = (0..DOCS).map(|d| format!("det/doc-{d}")).collect();
    for d in &docs {
        net.open_doc(&peers[..3], d, "seed");
    }
    net.settle(2);
    let horizon = net.now() + Duration::from_secs(4);
    drive_editors(
        &mut net.sim,
        &peers[..3],
        &EditorSpec {
            docs: docs.clone(),
            zipf_skew: 0.5,
            mean_think: Duration::from_millis(300),
            mix: EditMix::default(),
            horizon,
        },
        sim_seed ^ 0xED17,
    );
    net.settle(10);

    use std::fmt::Write as _;
    let mut out = String::new();
    for line in net.sim.take_trace() {
        out.push_str(&line);
        out.push('\n');
    }
    writeln!(out, "events_processed = {}", net.sim.events_processed()).unwrap();
    for (name, v) in net.sim.metrics().counters() {
        writeln!(out, "counter {name} = {v}").unwrap();
    }
    for p in &peers {
        let node = net.sim.node_as::<LtrNode>(p.addr).expect("alive");
        for doc in node.open_docs() {
            writeln!(
                out,
                "node {} doc {doc} ts={} text={:?}",
                p.addr,
                node.doc_ts(&doc).unwrap_or(0),
                node.doc_text(&doc)
            )
            .unwrap();
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Replaying any seeded fault plan is bit-reproducible — including
    /// executions where the protocol's divergence detector fires (those
    /// must panic identically on replay).
    #[test]
    fn seeded_fault_plan_replays_byte_identically(
        sim_seed in 1u64..1_000,
        fault_seed in 1u64..1_000,
        drop_pm in 0u32..80,       // ‰, up to 8%
        dup_pm in 0u32..200,       // ‰, up to 20%
        reorder_pm in 0u32..200,   // ‰, up to 20%
        jitter_ms in 0u64..8,
    ) {
        let plan = || {
            FaultPlan::new(fault_seed).with_default(LinkFaults {
                drop: drop_pm as f64 / 1_000.0,
                duplicate: dup_pm as f64 / 1_000.0,
                reorder: reorder_pm as f64 / 1_000.0,
                jitter: (jitter_ms > 0).then(|| {
                    (Duration::from_millis(1), Duration::from_millis(jitter_ms))
                }),
                ..LinkFaults::none()
            })
        };
        let a = faulted_session_dump(sim_seed, Some(plan()));
        let b = faulted_session_dump(sim_seed, Some(plan()));
        prop_assert!(!a.is_empty());
        // Line-by-line so a failure names the first divergence.
        for (la, lb) in a.lines().zip(b.lines()) {
            prop_assert_eq!(la, lb, "fault replay diverged");
        }
        prop_assert_eq!(a.len(), b.len(), "fault replay dumps differ in length");
        // A different fault seed must actually perturb the run (guards
        // against the dump — or the engine — being insensitive).
        if drop_pm + dup_pm + reorder_pm > 0 || jitter_ms > 0 {
            let c = faulted_session_dump(sim_seed, Some(FaultPlan {
                seed: fault_seed ^ 0x5EED,
                ..plan()
            }));
            // Distinct fault seeds must actually perturb the run.
            prop_assert_ne!(a, c);
        }
    }
}

#[test]
fn inert_plan_is_byte_identical_to_no_plan() {
    // Installing a plan with zero rates and nothing scheduled must not
    // move a single byte of the event stream: no RNG draws, no queue
    // entries, no behaviour change. Only the (all-zero) `faults.*`
    // counters betray its presence.
    let strip_faults = |dump: &str| -> String {
        let mut out = String::with_capacity(dump.len());
        for l in dump.lines() {
            if let Some(rest) = l.strip_prefix("counter faults.") {
                assert!(rest.ends_with("= 0"), "inert plan injected a fault: {l}");
            } else {
                out.push_str(l);
                out.push('\n');
            }
        }
        out
    };
    let without = faulted_session_dump(0xBEE, None);
    let with = faulted_session_dump(0xBEE, Some(FaultPlan::new(42)));
    assert!(!without.contains("counter faults."));
    assert_eq!(
        strip_faults(&with),
        without,
        "an inert fault plan perturbed the event stream"
    );
}
