//! The grant-fence seeded sweep: the delivery vehicle for master epochs.
//!
//! Fencing closes a probabilistic window (a partially published grant
//! re-granted, forking the log), so one pinned seed proves little. This
//! sweep runs the two scenarios that historically drove the window —
//! `lossy_links` (message loss reshuffles every publish fan-out) and
//! `partition_during_handoff` (master handoff under a cut) — across a
//! block of consecutive seeds in *both* replication modes, and asserts
//! the two fencing invariants on every run:
//!
//! * **no dual grant** — no `(doc, ts)` is ever stored with two payloads
//!   under one master epoch (`equivocation_free`), and
//! * **epoch monotonicity** — no replica ever integrates a record whose
//!   epoch regresses (`epoch_monotonic`).
//!
//! The full oracle set (continuity, total order, convergence) must hold
//! too — a seed that diverges is as red as one that forks.
//!
//! Each run prints one line (`cargo test -- --nocapture`, or the CI step
//! summary) so a red seed names itself: scenario, mode, seed, verdict.
//! The sweep is wall-clock capped as a harness-health check: quick-mode
//! scenarios run in well under a second each, and a blowup here means
//! the simulator or the protocol regressed badly enough that the seed
//! verdicts are beside the point.

use std::time::Instant;

use workload::scenario::{named_scenarios, run_scenario_with_mode, Scenario};

/// Seeds swept per scenario × mode. 32 consecutive seeds from the sweep
/// base give deterministic, disjoint-from-the-matrix coverage
/// (`fault_matrix.rs` pins `0xFA_0200 + index`; the sweep block starts
/// well above every matrix seed).
const SEEDS: u64 = 32;
const SEED_BASE: u64 = 0xFE_0000;

/// Wall-clock budget for one scenario's full sweep (both modes). Far
/// above the observed cost (populations are quick-mode); a breach means
/// the harness itself regressed.
const BUDGET_SECS: u64 = 600;

fn sweep(scenario: &str) {
    let sc: Scenario = named_scenarios(true)
        .into_iter()
        .find(|s| s.name == scenario)
        .unwrap_or_else(|| panic!("unknown scenario {scenario}"));
    let wall = Instant::now();
    let mut red: Vec<String> = Vec::new();
    for i in 0..SEEDS {
        let seed = SEED_BASE + i;
        for (mode, tag) in [
            (chord::ReplicationMode::MerkleDiff, "merkle"),
            (chord::ReplicationMode::FullPush, "full-push"),
        ] {
            let out = run_scenario_with_mode(&sc, seed, mode);
            println!(
                "sweep {scenario} seed={seed:#x} mode={tag} ok={} dual-grant-free={} \
                 epoch-monotonic={} ({:.0} ms)",
                out.ok(),
                out.equivocation_free,
                out.epoch_monotonic,
                out.wall_ms
            );
            if !out.ok() {
                red.push(format!(
                    "{scenario} seed={seed:#x} mode={tag}: {}",
                    out.detail
                ));
            }
        }
    }
    assert!(
        red.is_empty(),
        "{} of {} sweep runs violated an invariant:\n{}",
        red.len(),
        SEEDS * 2,
        red.join("\n")
    );
    let spent = wall.elapsed().as_secs();
    assert!(
        spent < BUDGET_SECS,
        "sweep of {scenario} took {spent}s (budget {BUDGET_SECS}s): harness regressed"
    );
}

#[test]
fn sweep_lossy_links_both_modes() {
    sweep("lossy_links");
}

#[test]
fn sweep_partition_during_handoff_both_modes() {
    sweep("partition_during_handoff");
}
