//! Flagship soak test: a full collaborative-editing session with editors
//! *and* randomized churn running concurrently, audited by all three
//! oracles. This is the paper's whole demonstration compressed into one
//! assertion.

use ltr_integration::{assert_invariants, stabilized};
use p2p_ltr::LtrConfig;
use simnet::{Duration, NetConfig};
use workload::{drive_churn, drive_editors, ChurnSpec, EditMix, EditorSpec};

#[test]
fn editors_plus_churn_soak() {
    let cfg = LtrConfig::default();
    let mut net = stabilized(0x50AC, NetConfig::lan(), 20, cfg.clone());
    let peers = net.peers.clone();
    let editors: Vec<_> = peers[..4].to_vec();
    let docs: Vec<String> = (0..6).map(|i| format!("doc-{i}")).collect();
    for d in &docs {
        net.open_doc(&editors, d, "origin");
    }
    net.settle(2);

    let horizon = net.now() + Duration::from_secs(45);
    drive_editors(
        &mut net.sim,
        &editors,
        &EditorSpec {
            docs: docs.clone(),
            zipf_skew: 0.8,
            mean_think: Duration::from_millis(700),
            mix: EditMix::default(),
            horizon,
        },
        0xED17,
    );
    drive_churn(
        &mut net.sim,
        ChurnSpec {
            mean_interval: Duration::from_secs(4),
            crash_weight: 2,
            leave_weight: 1,
            join_weight: 2,
            protected: editors.clone(),
            min_alive: 10,
            horizon,
        },
        cfg,
        0xC4C4,
    );

    net.settle(55);
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    assert!(net.run_until_quiet(&doc_refs, 240), "system never quiesced");
    net.settle(20);
    assert!(net.run_until_quiet(&doc_refs, 60));
    net.settle(10);

    // Real work happened.
    let grants = net.sim.metrics().counter("kts.grants");
    assert!(grants >= 30, "only {grants} grants in a 45s session");
    let churn = net.sim.metrics().counter("churn.crashes")
        + net.sim.metrics().counter("churn.leaves")
        + net.sim.metrics().counter("churn.joins");
    assert!(
        churn >= 5,
        "churn did not exercise the system ({churn} events)"
    );

    assert_invariants(&net);
}

#[test]
fn message_loss_is_survivable() {
    // 2% independent message loss: timeouts and retries must still drive
    // the system to a consistent quiescent state.
    let mut net_cfg = NetConfig::lan();
    net_cfg.loss = 0.02;
    let mut net = stabilized(0x105E, net_cfg, 12, LtrConfig::default());
    let peers = net.peers.clone();
    net.open_doc(&peers, "doc", "base");
    net.settle(1);
    for i in 0..4 {
        let editor = peers[i];
        let cur = net.node(editor).doc_text("doc").unwrap();
        net.edit(editor, "doc", &format!("{cur}\nedit-{i}"));
        assert!(
            net.run_until_quiet(&["doc"], 120),
            "edit {i} stuck under loss"
        );
        net.settle(3);
    }
    net.settle(15);
    net.run_until_quiet(&["doc"], 60);
    net.settle(10);
    assert!(
        net.sim.metrics().counter("sim.msgs_dropped") > 0,
        "loss model inactive"
    );
    assert_invariants(&net);
}

#[test]
fn wan_latency_profile_converges() {
    // WAN model: 40ms median one-way, log-normal tail. Timeouts scaled.
    let mut cfg = LtrConfig::default();
    cfg.chord.op_timeout = Duration::from_millis(2_000);
    cfg.chord.suspect_ttl = Duration::from_secs(20);
    cfg.validate_timeout = Duration::from_secs(6);
    cfg.retry_backoff = Duration::from_secs(2);
    let mut net = stabilized(0x3A11, NetConfig::wan(), 10, cfg);
    let peers = net.peers.clone();
    net.open_doc(&peers, "doc", "base");
    net.settle(2);
    net.edit(peers[0], "doc", "base\nfrom-zero");
    net.edit(peers[7], "doc", "from-seven\nbase");
    net.settle(30);
    assert!(net.run_until_quiet(&["doc"], 180), "WAN run stuck");
    net.settle(30);
    assert_invariants(&net);
    let lat = net.sim.metrics().summary("ltr.publish_latency_ms");
    assert!(
        lat.mean > 100.0,
        "WAN publish should cost hundreds of ms, got {}",
        lat.mean
    );
}
