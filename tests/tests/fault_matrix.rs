//! The scenario matrix as individual integration tests: every named
//! fault scenario (quick sizing) must end with all three correctness
//! oracles green. One test per scenario so a violation names its
//! scenario directly in the test report, plus the zero-fault identity
//! pin (an inert fault plan must not perturb the event stream at all).

use workload::scenario::{named_scenarios, run_scenario, run_scenario_with_mode, Scenario};

/// Fixed seeds, aligned with `exp_fault` (`seed_for`).
///
/// The base moved from `0xFA_0000` when the default replication mode
/// became Merkle-diff: the new message pattern reshuffles the per-message
/// fault draws, and the old base landed `lossy_links` on a seed that
/// trips the dual-master grant window that grant fencing has since
/// closed. Those once-red seeds are pinned below
/// (`repro_dual_grant_seed_*`) as regressions, and the whole
/// seed-neighbourhood is swept by `grant_fence_sweep.rs`.
const SEED_BASE: u64 = 0xFA_0200;

fn find(name: &str) -> (usize, Scenario) {
    let scenarios = named_scenarios(true);
    let (i, sc): (usize, &Scenario) = scenarios
        .iter()
        .enumerate()
        .find(|(_, s)| s.name == name)
        .unwrap_or_else(|| panic!("unknown scenario {name}"));
    (i, sc.clone())
}

fn run_named(name: &str) -> workload::scenario::ScenarioOutcome {
    let (i, sc) = find(name);
    let out = run_scenario(&sc, SEED_BASE + i as u64);
    assert!(
        out.ok(),
        "scenario {name} violated an invariant: {}",
        out.detail
    );
    out
}

/// Same matrix entry under the legacy full-push fallback — the mode must
/// stay usable, not just encodable.
fn run_named_fullpush(name: &str) -> workload::scenario::ScenarioOutcome {
    let (i, sc) = find(name);
    let out = run_scenario_with_mode(&sc, SEED_BASE + i as u64, chord::ReplicationMode::FullPush);
    assert!(
        out.ok(),
        "scenario {name} (full-push) violated an invariant: {}",
        out.detail
    );
    out
}

#[test]
fn scenario_partition_during_handoff() {
    let out = run_named("partition_during_handoff");
    assert!(out.faults_cut > 0, "the partition never bit: {out:?}");
    assert!(out.grants > 0);
}

#[test]
fn scenario_master_crash_storm() {
    let out = run_named("master_crash_storm");
    assert!(out.crashes >= 3, "storm too small: {out:?}");
    assert_eq!(out.restarts, out.crashes, "every crash restarts from disk");
}

#[test]
fn scenario_churn_under_load() {
    let out = run_named("churn_under_load");
    assert!(out.crashes > 0, "churn never crashed anyone: {out:?}");
    assert!(out.grants > 0);
}

#[test]
fn scenario_dup_heavy_links() {
    let out = run_named("dup_heavy_links");
    assert!(out.faults_duplicated > 100, "dup rate too low: {out:?}");
}

#[test]
fn scenario_asym_partition_master_users() {
    let out = run_named("asym_partition_master_users");
    assert!(out.faults_cut > 0, "one-way cut never bit: {out:?}");
}

#[test]
fn scenario_laggy_master() {
    let out = run_named("laggy_master");
    assert!(out.grants > 0);
}

#[test]
fn scenario_lossy_links() {
    let out = run_named("lossy_links");
    assert!(out.faults_dropped > 0, "loss never bit: {out:?}");
}

#[test]
fn scenario_lossy_links_fullpush() {
    let out = run_named_fullpush("lossy_links");
    assert!(out.faults_dropped > 0, "loss never bit: {out:?}");
}

#[test]
fn scenario_churn_under_load_fullpush() {
    let out = run_named_fullpush("churn_under_load");
    assert!(out.crashes > 0, "churn never crashed anyone: {out:?}");
    assert!(out.grants > 0);
}

/// Before grant fencing, `lossy_links` at seed `0xFA_0000` in legacy
/// full-push mode ended with two different payloads stored for one
/// `(doc, ts)` — a master re-granted a slot whose earlier publish had
/// partially landed. The seed is pinned red-to-green: every oracle
/// (including the equivocation and epoch-monotonicity detectors this
/// seed used to trip) must now hold.
#[test]
fn repro_dual_grant_seed_fullpush() {
    let (_, sc) = find("lossy_links");
    let out = run_scenario_with_mode(&sc, 0xFA_0000, chord::ReplicationMode::FullPush);
    assert!(
        out.ok(),
        "historic dual-grant seed 0xFA_0000 (full-push) regressed: {}",
        out.detail
    );
    assert!(out.equivocation_free && out.epoch_monotonic);
}

/// The Merkle-mode twin of the repro above: seed `0xFA_0006` drove the
/// same dual-grant window through the anti-entropy message pattern.
#[test]
fn repro_dual_grant_seed_merkle() {
    let (_, sc) = find("lossy_links");
    let out = run_scenario_with_mode(&sc, 0xFA_0006, chord::ReplicationMode::MerkleDiff);
    assert!(
        out.ok(),
        "historic dual-grant seed 0xFA_0006 (merkle) regressed: {}",
        out.detail
    );
    assert!(out.equivocation_free && out.epoch_monotonic);
}
