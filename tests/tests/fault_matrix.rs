//! The scenario matrix as individual integration tests: every named
//! fault scenario (quick sizing) must end with all three correctness
//! oracles green. One test per scenario so a violation names its
//! scenario directly in the test report, plus the zero-fault identity
//! pin (an inert fault plan must not perturb the event stream at all).

use workload::scenario::{named_scenarios, run_scenario, Scenario};

/// Fixed seeds, aligned with `exp_fault` (`seed_for`).
fn run_named(name: &str) -> workload::scenario::ScenarioOutcome {
    let scenarios = named_scenarios(true);
    let (i, sc): (usize, &Scenario) = scenarios
        .iter()
        .enumerate()
        .find(|(_, s)| s.name == name)
        .unwrap_or_else(|| panic!("unknown scenario {name}"));
    let out = run_scenario(sc, 0xFA_0000 + i as u64);
    assert!(
        out.ok(),
        "scenario {name} violated an invariant: {}",
        out.detail
    );
    out
}

#[test]
fn scenario_partition_during_handoff() {
    let out = run_named("partition_during_handoff");
    assert!(out.faults_cut > 0, "the partition never bit: {out:?}");
    assert!(out.grants > 0);
}

#[test]
fn scenario_master_crash_storm() {
    let out = run_named("master_crash_storm");
    assert!(out.crashes >= 3, "storm too small: {out:?}");
    assert_eq!(out.restarts, out.crashes, "every crash restarts from disk");
}

#[test]
fn scenario_churn_under_load() {
    let out = run_named("churn_under_load");
    assert!(out.crashes > 0, "churn never crashed anyone: {out:?}");
    assert!(out.grants > 0);
}

#[test]
fn scenario_dup_heavy_links() {
    let out = run_named("dup_heavy_links");
    assert!(out.faults_duplicated > 100, "dup rate too low: {out:?}");
}

#[test]
fn scenario_asym_partition_master_users() {
    let out = run_named("asym_partition_master_users");
    assert!(out.faults_cut > 0, "one-way cut never bit: {out:?}");
}

#[test]
fn scenario_laggy_master() {
    let out = run_named("laggy_master");
    assert!(out.grants > 0);
}

#[test]
fn scenario_lossy_links() {
    let out = run_named("lossy_links");
    assert!(out.faults_dropped > 0, "loss never bit: {out:?}");
}
