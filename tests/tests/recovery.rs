//! Hard failure-recovery paths: double failure (master *and* Master-Succ),
//! lost acks recovered from the log, watermark GC — and, since the durable
//! store landed, crash-with-disk restarts where a peer recovers its key
//! table, timestamp state and logs *locally* instead of relying on
//! Master-Succ takeover.

use ltr_integration::{assert_invariants, stabilized};
use p2p_ltr::harness::LtrNet;
use p2p_ltr::{GcConfig, LtrConfig};
use simnet::{Duration, NetConfig};
use store::{FileStore, MemStore, StoreConfig};

const DOC: &str = "wiki/Main";

/// The current master and its ring successor, per the sorted-ring oracle.
fn master_and_succ(net: &p2p_ltr::harness::LtrNet, doc: &str) -> (chord::NodeRef, chord::NodeRef) {
    let key = p2plog::ht(doc);
    let mut alive = net.alive_peers();
    alive.sort_by_key(|r| key.distance_to(r.id));
    (alive[0], alive[1])
}

#[test]
fn double_failure_recovers_last_ts_from_the_log() {
    // Kill the master AND its successor simultaneously: the last-ts state
    // and its backup are both gone. The next master must recover last_ts by
    // probing the log (the gallop/binary-search extension) — continuity
    // must survive.
    let mut net = stabilized(0xD0B1, NetConfig::lan(), 14, LtrConfig::default());
    let peers = net.peers.clone();
    net.open_doc(&peers, DOC, "base");
    net.settle(1);

    for i in 0..4 {
        let editor = peers[i];
        let cur = net.node(editor).doc_text(DOC).unwrap();
        net.edit(editor, DOC, &format!("{cur}\nedit-{i}"));
        assert!(net.run_until_quiet(&[DOC], 60));
        net.settle(2);
    }
    let (master, succ) = master_and_succ(&net, DOC);
    net.crash(master);
    net.crash(succ);
    net.settle(20); // detection + stabilization

    // A surviving editor publishes: the new master has no entry and no
    // backup for the key, so it must probe the log and grant ts=5.
    let editor = peers
        .iter()
        .copied()
        .find(|p| p.addr != master.addr && p.addr != succ.addr)
        .unwrap();
    let cur = net.node(editor).doc_text(DOC).unwrap();
    net.edit(editor, DOC, &format!("{cur}\nafter-double-failure"));
    assert!(
        net.run_until_quiet(&[DOC], 120),
        "stuck after double failure"
    );
    net.settle(15);

    let cont = p2p_ltr::check_continuity(&net.sim);
    assert!(cont.is_clean(), "{cont:?}");
    assert_eq!(cont.last_ts(DOC), 5, "grants: {:?}", cont.granted);
    assert!(
        net.sim.metrics().counter("kts.probes_started") > 0,
        "log probe never ran"
    );
    assert_invariants(&net);
}

#[test]
fn lost_ack_recovered_via_own_record_detection() {
    // Crash the master right after publishing completes but (potentially)
    // before the ack arrives; the editor re-validates, gets Retry from the
    // new master, retrieves — and must recognise its own record instead of
    // double-applying it.
    let mut net = stabilized(0xACED, NetConfig::lan(), 12, LtrConfig::default());
    let peers = net.peers.clone();
    net.open_doc(&peers, DOC, "base");
    net.settle(1);

    // Establish ts=1.
    net.edit(peers[0], DOC, "base\nfirst");
    assert!(net.run_until_quiet(&[DOC], 60));
    net.settle(3);

    // Many rapid edits while we crash the master mid-stream: some acks are
    // bound to be in flight.
    let (master, _) = master_and_succ(&net, DOC);
    let editor = peers
        .iter()
        .copied()
        .find(|p| p.addr != master.addr)
        .unwrap();
    let cur = net.node(editor).doc_text(DOC).unwrap();
    net.edit(editor, DOC, &format!("{cur}\nracing"));
    // Crash quickly — the publish may or may not have been acked.
    net.run_for(Duration::from_millis(8));
    net.crash(master);

    assert!(net.run_until_quiet(&[DOC], 120), "stuck after racing crash");
    net.settle(15);
    net.run_until_quiet(&[DOC], 60);
    net.settle(10);

    let cont = p2p_ltr::check_continuity(&net.sim);
    assert!(cont.is_clean(), "{cont:?}");
    // The racing edit must exist exactly once in every replica.
    for p in net.alive_peers() {
        let text = net.node(p).doc_text(DOC).unwrap();
        let occurrences = text.matches("racing").count();
        assert_eq!(occurrences, 1, "edit duplicated or lost at {p:?}: {text}");
    }
    assert_invariants(&net);
}

#[test]
fn master_crash_with_disk_restart_recovers_locally() {
    // Every peer journals to an in-memory store (the crash-with-disk
    // scenario inside the deterministic simulator). The document's master
    // crashes after four grants and restarts from its own journal: key
    // table, timestamp state, stored log records and the open document all
    // come back locally, the peer rejoins through a survivor, and the
    // timestamp sequence continues without a gap.
    let mut net = LtrNet::build_with_stores(
        0x0D15C,
        NetConfig::lan(),
        10,
        LtrConfig::default(),
        Duration::from_millis(150),
        |_| Box::new(MemStore::new()),
    );
    net.settle(23);
    let peers = net.peers.clone();
    net.open_doc(&peers, DOC, "base");
    net.settle(1);

    for i in 0..4 {
        let editor = peers[i];
        let cur = net.node(editor).doc_text(DOC).unwrap();
        net.edit(editor, DOC, &format!("{cur}\nedit-{i}"));
        assert!(net.run_until_quiet(&[DOC], 60));
        net.settle(2);
    }
    let (master, _) = master_and_succ(&net, DOC);
    assert!(
        net.node(master).is_journaling(),
        "master journals to its store"
    );
    net.crash(master);
    net.settle(6); // outage: failure detection + stabilization run

    let report = net.restart_from_store(master).expect("journal replays");
    assert!(report.entries > 0, "{report:?}");
    assert!(
        report.kts_entries >= 1,
        "timestamp table recovered: {report:?}"
    );
    assert!(report.docs >= 1, "open document recovered: {report:?}");
    assert!(
        report.log_items > 0,
        "stored log records recovered: {report:?}"
    );
    assert_eq!(net.sim.metrics().counter("sim.restarts"), 1);
    net.settle(20); // rejoin, stabilize, anti-entropy catch-up

    // The restarted master serves the next grant; its restored entry is
    // re-verified against the log before first use, so continuity holds.
    let editor = peers
        .iter()
        .copied()
        .find(|p| p.addr != master.addr)
        .unwrap();
    let cur = net.node(editor).doc_text(DOC).unwrap();
    net.edit(editor, DOC, &format!("{cur}\nafter-restart"));
    assert!(net.run_until_quiet(&[DOC], 120), "stuck after restart");
    net.settle(15);
    net.run_until_quiet(&[DOC], 60);

    let cont = p2p_ltr::check_continuity(&net.sim);
    assert!(cont.is_clean(), "{cont:?}");
    assert_eq!(cont.last_ts(DOC), 5, "grants: {:?}", cont.granted);
    // The restarted replica itself converged (caught up via retrieval).
    assert_eq!(net.node(master).doc_ts(DOC), Some(5));
    assert_invariants(&net);
}

#[test]
fn file_store_survives_repeated_crashes() {
    // The same scenario against the real file backend, twice: a second
    // crash must replay the journal written across *both* incarnations
    // (verified Merkle checkpoint included).
    let base = std::env::temp_dir().join(format!("p2pltr-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cfg = StoreConfig {
        segment_max_bytes: 16 * 1024,
        // Checkpoint every append: small journals (a master may hold only
        // a handful of entries) still get Merkle-verified recovery.
        checkpoint_every: 1,
    };
    let dirs: Vec<_> = (0..8).map(|i| base.join(format!("peer-{i}"))).collect();
    let mut net = LtrNet::build_with_stores(
        0xF11E,
        NetConfig::lan(),
        8,
        LtrConfig::default(),
        Duration::from_millis(150),
        |i| {
            let (store, _) = FileStore::open(&dirs[i], cfg).expect("open store dir");
            Box::new(store)
        },
    );
    net.settle(22);
    let peers = net.peers.clone();
    net.open_doc(&peers, DOC, "base");
    net.settle(1);

    let mut expected_ts = 0;
    for round in 0..2 {
        for i in 0..2 {
            let editor = peers[i];
            let cur = net.node(editor).doc_text(DOC).unwrap();
            net.edit(editor, DOC, &format!("{cur}\nround-{round}-edit-{i}"));
            assert!(net.run_until_quiet(&[DOC], 60));
            net.settle(2);
            expected_ts += 1;
        }
        let (master, _) = master_and_succ(&net, DOC);
        net.crash(master);
        net.settle(6);
        let report = net
            .restart_from_store(master)
            .expect("file journal replays");
        assert!(report.entries > 0, "{report:?}");
        assert_eq!(report.torn_bytes, 0, "clean segments: {report:?}");
        assert!(
            report.verified_entries.is_some(),
            "merkle checkpoint verified: {report:?}"
        );
        net.settle(20);
    }

    let editor = peers[2];
    let cur = net.node(editor).doc_text(DOC).unwrap();
    net.edit(editor, DOC, &format!("{cur}\nfinal"));
    assert!(net.run_until_quiet(&[DOC], 120));
    net.settle(15);
    net.run_until_quiet(&[DOC], 60);
    expected_ts += 1;

    let cont = p2p_ltr::check_continuity(&net.sim);
    assert!(cont.is_clean(), "{cont:?}");
    assert_eq!(cont.last_ts(DOC), expected_ts, "grants: {:?}", cont.granted);
    assert_invariants(&net);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn gc_prunes_old_records_but_keeps_retention_window() {
    let mut cfg = LtrConfig::default();
    cfg.gc = Some(GcConfig {
        every: Duration::from_secs(2),
        retain: 5,
    });
    let mut net = stabilized(0x6C6C, NetConfig::lan(), 8, cfg);
    let peers = net.peers.clone();
    let editor = peers[0];
    net.open_doc(&[editor], DOC, "base");
    net.settle(1);
    for i in 0..15 {
        let cur = net.node(editor).doc_text(DOC).unwrap();
        net.edit(editor, DOC, &format!("{cur}\np{i}"));
        assert!(net.run_until_quiet(&[DOC], 60));
    }
    net.settle(10); // a few GC sweeps

    assert!(
        net.sim.metrics().counter("log.gc_removed") > 0,
        "GC never removed anything"
    );

    // A reader can still catch up if it is within the retention window:
    // prime it at ts=10 (i.e. 5 behind), then sync.
    // Simplest check: the *editor itself* continues cleanly, and a late
    // reader beyond the window stalls rather than corrupting state.
    let reader = peers[1];
    net.open_doc(&[reader], DOC, "base");
    net.settle(20);
    net.run_until_quiet(&[DOC], 60);
    let reader_ts = net.node(reader).doc_ts(DOC).unwrap_or(0);
    // With history pruned below ts 10, a from-scratch reader cannot fully
    // catch up (documented GC trade-off): it must either stall cleanly at 0
    // or have found enough surviving records to reach 15.
    assert!(
        reader_ts == 0 || reader_ts == 15,
        "reader at inconsistent ts {reader_ts}"
    );
    // The editor's own view remains fully consistent.
    let cont = p2p_ltr::check_continuity(&net.sim);
    assert!(cont.is_clean(), "{cont:?}");
    assert_eq!(net.node(editor).doc_ts(DOC), Some(15));
}
