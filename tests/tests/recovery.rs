//! Hard failure-recovery paths: double failure (master *and* Master-Succ),
//! lost acks recovered from the log, and watermark GC.

use ltr_integration::{assert_invariants, stabilized};
use p2p_ltr::{GcConfig, LtrConfig};
use simnet::{Duration, NetConfig};

const DOC: &str = "wiki/Main";

/// The current master and its ring successor, per the sorted-ring oracle.
fn master_and_succ(net: &p2p_ltr::harness::LtrNet, doc: &str) -> (chord::NodeRef, chord::NodeRef) {
    let key = p2plog::ht(doc);
    let mut alive = net.alive_peers();
    alive.sort_by_key(|r| key.distance_to(r.id));
    (alive[0], alive[1])
}

#[test]
fn double_failure_recovers_last_ts_from_the_log() {
    // Kill the master AND its successor simultaneously: the last-ts state
    // and its backup are both gone. The next master must recover last_ts by
    // probing the log (the gallop/binary-search extension) — continuity
    // must survive.
    let mut net = stabilized(0xD0B1, NetConfig::lan(), 14, LtrConfig::default());
    let peers = net.peers.clone();
    net.open_doc(&peers, DOC, "base");
    net.settle(1);

    for i in 0..4 {
        let editor = peers[i];
        let cur = net.node(editor).doc_text(DOC).unwrap();
        net.edit(editor, DOC, &format!("{cur}\nedit-{i}"));
        assert!(net.run_until_quiet(&[DOC], 60));
        net.settle(2);
    }
    let (master, succ) = master_and_succ(&net, DOC);
    net.crash(master);
    net.crash(succ);
    net.settle(20); // detection + stabilization

    // A surviving editor publishes: the new master has no entry and no
    // backup for the key, so it must probe the log and grant ts=5.
    let editor = peers
        .iter()
        .copied()
        .find(|p| p.addr != master.addr && p.addr != succ.addr)
        .unwrap();
    let cur = net.node(editor).doc_text(DOC).unwrap();
    net.edit(editor, DOC, &format!("{cur}\nafter-double-failure"));
    assert!(
        net.run_until_quiet(&[DOC], 120),
        "stuck after double failure"
    );
    net.settle(15);

    let cont = p2p_ltr::check_continuity(&net.sim);
    assert!(cont.is_clean(), "{cont:?}");
    assert_eq!(cont.last_ts(DOC), 5, "grants: {:?}", cont.granted);
    assert!(
        net.sim.metrics().counter("kts.probes_started") > 0,
        "log probe never ran"
    );
    assert_invariants(&net);
}

#[test]
fn lost_ack_recovered_via_own_record_detection() {
    // Crash the master right after publishing completes but (potentially)
    // before the ack arrives; the editor re-validates, gets Retry from the
    // new master, retrieves — and must recognise its own record instead of
    // double-applying it.
    let mut net = stabilized(0xACED, NetConfig::lan(), 12, LtrConfig::default());
    let peers = net.peers.clone();
    net.open_doc(&peers, DOC, "base");
    net.settle(1);

    // Establish ts=1.
    net.edit(peers[0], DOC, "base\nfirst");
    assert!(net.run_until_quiet(&[DOC], 60));
    net.settle(3);

    // Many rapid edits while we crash the master mid-stream: some acks are
    // bound to be in flight.
    let (master, _) = master_and_succ(&net, DOC);
    let editor = peers
        .iter()
        .copied()
        .find(|p| p.addr != master.addr)
        .unwrap();
    let cur = net.node(editor).doc_text(DOC).unwrap();
    net.edit(editor, DOC, &format!("{cur}\nracing"));
    // Crash quickly — the publish may or may not have been acked.
    net.run_for(Duration::from_millis(8));
    net.crash(master);

    assert!(net.run_until_quiet(&[DOC], 120), "stuck after racing crash");
    net.settle(15);
    net.run_until_quiet(&[DOC], 60);
    net.settle(10);

    let cont = p2p_ltr::check_continuity(&net.sim);
    assert!(cont.is_clean(), "{cont:?}");
    // The racing edit must exist exactly once in every replica.
    for p in net.alive_peers() {
        let text = net.node(p).doc_text(DOC).unwrap();
        let occurrences = text.matches("racing").count();
        assert_eq!(occurrences, 1, "edit duplicated or lost at {p:?}: {text}");
    }
    assert_invariants(&net);
}

#[test]
fn gc_prunes_old_records_but_keeps_retention_window() {
    let mut cfg = LtrConfig::default();
    cfg.gc = Some(GcConfig {
        every: Duration::from_secs(2),
        retain: 5,
    });
    let mut net = stabilized(0x6C6C, NetConfig::lan(), 8, cfg);
    let peers = net.peers.clone();
    let editor = peers[0];
    net.open_doc(&[editor], DOC, "base");
    net.settle(1);
    for i in 0..15 {
        let cur = net.node(editor).doc_text(DOC).unwrap();
        net.edit(editor, DOC, &format!("{cur}\np{i}"));
        assert!(net.run_until_quiet(&[DOC], 60));
    }
    net.settle(10); // a few GC sweeps

    assert!(
        net.sim.metrics().counter("log.gc_removed") > 0,
        "GC never removed anything"
    );

    // A reader can still catch up if it is within the retention window:
    // prime it at ts=10 (i.e. 5 behind), then sync.
    // Simplest check: the *editor itself* continues cleanly, and a late
    // reader beyond the window stalls rather than corrupting state.
    let reader = peers[1];
    net.open_doc(&[reader], DOC, "base");
    net.settle(20);
    net.run_until_quiet(&[DOC], 60);
    let reader_ts = net.node(reader).doc_ts(DOC).unwrap_or(0);
    // With history pruned below ts 10, a from-scratch reader cannot fully
    // catch up (documented GC trade-off): it must either stall cleanly at 0
    // or have found enough surviving records to reach 15.
    assert!(
        reader_ts == 0 || reader_ts == 15,
        "reader at inconsistent ts {reader_ts}"
    );
    // The editor's own view remains fully consistent.
    let cont = p2p_ltr::check_continuity(&net.sim);
    assert!(cont.is_clean(), "{cont:?}");
    assert_eq!(net.node(editor).doc_ts(DOC), Some(15));
}
