//! Property test for the Merkle-diff anti-entropy protocol: two nodes
//! whose stores diverged arbitrarily must reconcile to byte-identical
//! contents, with the wire cost of the round logged per message class.
//!
//! The harness embeds two raw [`chord::ChordNode`] state machines with a
//! deterministic in-memory shuttle (no simulator): messages are delivered
//! FIFO and timers fire in deadline order, so every proptest case is
//! exactly reproducible from its generated inputs. Bytes are counted by
//! encoding each shuttled message with the production `wire` codec — the
//! same accounting the benches report.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use chord::{ChordConfig, Id, NodeRef, ReplicationMode};
use proptest::prelude::*;
use simnet::{NodeId, Time};
use wire::{chord_class, Encode};

/// Owner ring id: top of the ring, so its primary arc is the upper half.
const OWNER_ID: u64 = u64::MAX;
/// Replica ring id: halfway point.
const REPLICA_ID: u64 = u64::MAX / 2;

/// Map an arbitrary u64 into the owner's primary arc `(REPLICA_ID, OWNER_ID]`.
fn owner_key(k: u64) -> Id {
    Id(REPLICA_ID + 1 + (k >> 1))
}

/// Per-entry divergence the replica starts from.
#[derive(Clone, Copy, Debug)]
enum Drift {
    /// Replica already holds the owner's exact bytes.
    InSync,
    /// Replica holds different bytes under the same key.
    Stale,
    /// Replica does not hold the key at all.
    Missing,
}

fn drift_of(sel: u8) -> Drift {
    match sel % 3 {
        0 => Drift::InSync,
        1 => Drift::Stale,
        _ => Drift::Missing,
    }
}

/// Deterministic two-node shuttle around raw Chord state machines.
struct TwoNodes {
    owner: chord::ChordNode,
    replica: chord::ChordNode,
    now: Time,
    /// FIFO message queue: (to, from, msg).
    msgs: VecDeque<(NodeId, NodeId, chord::ChordMsg)>,
    /// Pending timers keyed by (deadline, insertion seq, node).
    timers: BTreeMap<(Time, u64, NodeId), chord::ChordTimer>,
    seq: u64,
    msg_count: u64,
    byte_count: u64,
    bytes_by_class: BTreeMap<&'static str, u64>,
}

const OWNER_ADDR: NodeId = NodeId(1);
const REPLICA_ADDR: NodeId = NodeId(2);

impl TwoNodes {
    fn new(mode: ReplicationMode) -> Self {
        let mut cfg = ChordConfig::default();
        cfg.replication_mode = mode;
        let owner_ref = NodeRef {
            addr: OWNER_ADDR,
            id: Id(OWNER_ID),
        };
        let replica_ref = NodeRef {
            addr: REPLICA_ADDR,
            id: Id(REPLICA_ID),
        };
        let mut h = TwoNodes {
            owner: chord::ChordNode::new(owner_ref, cfg.clone()),
            replica: chord::ChordNode::new(replica_ref, cfg),
            now: Time::ZERO,
            msgs: VecDeque::new(),
            timers: BTreeMap::new(),
            seq: 0,
            msg_count: 0,
            byte_count: 0,
            bytes_by_class: BTreeMap::new(),
        };
        let acts = h.owner.start(h.now, None);
        h.absorb(OWNER_ADDR, acts);
        let acts = h.replica.start(h.now, Some(owner_ref));
        h.absorb(REPLICA_ADDR, acts);
        h
    }

    fn absorb(&mut self, from: NodeId, acts: Vec<chord::Action>) {
        for a in acts {
            match a {
                chord::Action::Send(to, msg) => {
                    self.msg_count += 1;
                    let len = msg.encoded_len() as u64;
                    self.byte_count += len;
                    *self.bytes_by_class.entry(chord_class(&msg)).or_insert(0) += len;
                    self.msgs.push_back((to, from, msg));
                }
                chord::Action::SetTimer(d, t) => {
                    self.seq += 1;
                    self.timers
                        .insert((self.now.saturating_add(d), self.seq, from), t);
                }
                chord::Action::Event(_) => {}
            }
        }
    }

    fn deliver_all(&mut self) {
        let mut steps = 0u32;
        while let Some((to, from, msg)) = self.msgs.pop_front() {
            steps += 1;
            assert!(steps < 100_000, "message shuttle diverged (protocol loop)");
            let acts = match to {
                OWNER_ADDR => self.owner.handle(self.now, from, msg),
                REPLICA_ADDR => self.replica.handle(self.now, from, msg),
                _ => continue,
            };
            self.absorb(to, acts);
        }
    }

    /// Drive messages + timers until the two-node ring is fully linked.
    fn form_ring(&mut self) {
        for _ in 0..10_000 {
            self.deliver_all();
            if self.ring_formed() {
                return;
            }
            let Some((&(at, s, node), _)) = self.timers.iter().next() else {
                break;
            };
            let t = self.timers.remove(&(at, s, node)).expect("timer just seen");
            self.now = self.now.max(at);
            let acts = match node {
                OWNER_ADDR => self.owner.on_timer(self.now, t),
                _ => self.replica.on_timer(self.now, t),
            };
            self.absorb(node, acts);
        }
        panic!("two-node ring failed to form");
    }

    fn ring_formed(&self) -> bool {
        self.owner.is_joined()
            && self.replica.is_joined()
            && self.owner.successor().id == Id(REPLICA_ID)
            && self.replica.successor().id == Id(OWNER_ID)
            && self.owner.predecessor().map(|p| p.id) == Some(Id(REPLICA_ID))
            && self.replica.predecessor().map(|p| p.id) == Some(Id(OWNER_ID))
    }

    /// Zero the wire accounting (ring formation traffic is not the
    /// replication round under measurement).
    fn reset_accounting(&mut self) {
        self.msg_count = 0;
        self.byte_count = 0;
        self.bytes_by_class.clear();
    }

    /// Fire one replicate tick on the owner and drain the exchange.
    /// Timers armed during the round are deliberately not fired: a
    /// healthy round must complete on message flow alone.
    fn run_replicate_round(&mut self) {
        let acts = self.owner.on_timer(self.now, chord::ChordTimer::Replicate);
        self.absorb(OWNER_ADDR, acts);
        self.deliver_all();
    }
}

/// Seed both stores from the generated divergence plan. Returns the
/// owner's expected in-range contents.
fn seed_stores(
    h: &mut TwoNodes,
    items: &BTreeMap<u64, Vec<u8>>,
    selectors: &[u8],
    extras: &BTreeMap<u64, Vec<u8>>,
) -> BTreeMap<Id, Bytes> {
    let mut expect = BTreeMap::new();
    for (i, (k, v)) in items.iter().enumerate() {
        let key = owner_key(*k);
        let val = Bytes::from(v.clone());
        h.owner.storage_mut().put_primary(key, val.clone());
        match drift_of(selectors[i % selectors.len()]) {
            Drift::InSync => h.replica.storage_mut().put_replica(key, val.clone()),
            Drift::Stale => {
                let mut stale = v.clone();
                stale.push(0xFF);
                h.replica.storage_mut().put_replica(key, Bytes::from(stale));
            }
            Drift::Missing => {}
        }
        expect.insert(key, val);
    }
    for (k, v) in extras {
        // A collision with an owner key is just another stale entry;
        // a true extra must be pruned by the round.
        h.replica
            .storage_mut()
            .put_replica(owner_key(*k), Bytes::from(v.clone()));
    }
    expect
}

fn check_converged(h: &mut TwoNodes, expect: &BTreeMap<Id, Bytes>, check_extras: bool) {
    for (k, v) in expect {
        assert_eq!(
            h.replica.storage().get(*k),
            Some(v),
            "replica missing or stale at {k:?} after reconciliation"
        );
    }
    if check_extras {
        let replica_keys: Vec<Id> = h
            .replica
            .storage()
            .iter_replica()
            .map(|(k, _)| *k)
            .collect();
        for k in replica_keys {
            assert!(
                expect.contains_key(&k),
                "replica kept {k:?}, which the owner no longer holds"
            );
        }
        // The strongest form: the replica's union summary now reproduces
        // the owner's primary root over the synced range.
        let from = Id(REPLICA_ID);
        let to = Id(OWNER_ID);
        let owner_pairs =
            h.owner
                .storage_mut()
                .sync_bucket_digests(chord::SyncView::Primary, from, to);
        let replica_pairs =
            h.replica
                .storage_mut()
                .sync_bucket_digests(chord::SyncView::Union, from, to);
        assert_eq!(
            chord::sync::range_root(&owner_pairs),
            chord::sync::range_root(&replica_pairs),
            "summaries disagree after reconciliation"
        );
    }
}

/// Strategy for a keyed byte-value map (the vendored proptest has no
/// `btree_map` combinator, so build one from `vec` + `prop_map`).
fn kv_map(size: std::ops::Range<usize>) -> impl Strategy<Value = BTreeMap<u64, Vec<u8>>> {
    proptest::collection::vec(
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..24)),
        size,
    )
    .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary divergence (stale values, missing records, deleted
    /// records) reconciles to byte-identical contents in one Merkle
    /// round, and the replica holds nothing the owner dropped.
    #[test]
    fn merkle_round_reconciles_any_divergence(
        items in kv_map(1..40),
        selectors in proptest::collection::vec(any::<u8>(), 1..40),
        extras in kv_map(0..8),
    ) {
        let mut h = TwoNodes::new(ReplicationMode::MerkleDiff);
        h.form_ring();
        let expect = seed_stores(&mut h, &items, &selectors, &extras);
        h.reset_accounting();
        h.run_replicate_round();
        check_converged(&mut h, &expect, true);

        // A second round over already-identical stores is root-exchange
        // only: one SyncRoot, one SyncAck, no descent, no records.
        h.reset_accounting();
        h.run_replicate_round();
        prop_assert!(h.msg_count <= 2, "steady-state round sent {} messages", h.msg_count);
        prop_assert_eq!(h.bytes_by_class.get("chord.replicate").copied().unwrap_or(0), 0,
            "steady-state round shipped records");
    }

    /// Wire-cost comparison against the legacy full push on the same
    /// divergence, logged per class. (No universal `merkle < full`
    /// assertion: for tiny stores the descent overhead can exceed one
    /// small push — the crossover is what the benches quantify.)
    #[test]
    fn merkle_and_full_push_costs_logged(
        items in kv_map(1..40),
        selectors in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let extras = BTreeMap::new();

        let mut m = TwoNodes::new(ReplicationMode::MerkleDiff);
        m.form_ring();
        let expect = seed_stores(&mut m, &items, &selectors, &extras);
        m.reset_accounting();
        m.run_replicate_round();
        check_converged(&mut m, &expect, true);

        let mut f = TwoNodes::new(ReplicationMode::FullPush);
        f.form_ring();
        let expect_f = seed_stores(&mut f, &items, &selectors, &extras);
        f.reset_accounting();
        f.run_replicate_round();
        // Full push overwrites stale and fills missing but never prunes.
        check_converged(&mut f, &expect_f, false);

        println!(
            "reconcile {} items: merkle {} msgs / {} bytes {:?} vs full-push {} msgs / {} bytes",
            items.len(), m.msg_count, m.byte_count, m.bytes_by_class, f.msg_count, f.byte_count,
        );
    }
}

/// Non-proptest pin of the steady-state cost: an in-sync pair exchanges
/// exactly `SyncRoot` + `SyncAck` per round in Merkle mode, while the
/// legacy push re-ships the full store once per version forever.
#[test]
fn steady_state_is_two_small_messages() {
    let mut h = TwoNodes::new(ReplicationMode::MerkleDiff);
    h.form_ring();
    let items: BTreeMap<u64, Vec<u8>> = (0u64..32).map(|i| (i << 32, vec![i as u8; 16])).collect();
    let expect = seed_stores(&mut h, &items, &[0], &BTreeMap::new());
    h.run_replicate_round();
    check_converged(&mut h, &expect, true);

    h.reset_accounting();
    h.run_replicate_round();
    assert_eq!(
        h.msg_count, 2,
        "steady state: root + ack, got {:?}",
        h.bytes_by_class
    );
    assert!(h.bytes_by_class.contains_key("chord.sync.root"));
    assert!(h.bytes_by_class.contains_key("chord.sync.ack"));
    assert!(
        h.byte_count < 100,
        "steady-state round cost {} bytes",
        h.byte_count
    );
}
