//! A ready-made embedding of [`ChordNode`] into the simulator, for
//! chord-only tests, benchmarks and examples.
//!
//! The production embedding lives in the `p2p_ltr` crate (which multiplexes
//! Chord with the timestamping and log layers); this driver speaks a small
//! wrapper message type so external test code can inject client commands
//! with [`simnet::Sim::send_external`].

use bytes::Bytes;

use crate::config::ChordConfig;
use crate::events::{Action, ChordEvent, ChordTimer};
use crate::id::Id;
use crate::msg::{ChordMsg, NodeRef, OpId, PutMode};
use crate::node::ChordNode;
use simnet::{CounterId, Ctx, Duration, Metrics, NodeId, Process, Time};

/// Timer tag for a deferred ring join (outside the `ChordTimer` space).
const START_TAG: u64 = 5;

/// Client commands accepted by the driver (injected externally).
#[derive(Clone, Debug)]
pub enum Cmd {
    /// Resolve the owner of an id.
    Lookup(Id),
    /// Store a value.
    Put(Id, Bytes, PutMode),
    /// Fetch a value.
    Get(Id),
    /// Leave the ring gracefully and halt.
    Leave,
}

/// Wrapper payload: either protocol traffic or an injected command.
#[derive(Clone, Debug)]
pub enum DriverMsg {
    /// Chord protocol message.
    Chord(ChordMsg),
    /// Externally injected client command.
    Cmd(Cmd),
}

/// A completed client operation, kept for inspection by tests.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The operation handle.
    pub op: OpId,
    /// When it completed.
    pub at: Time,
    /// The event that completed it.
    pub event: ChordEvent,
}

/// Pre-registered handles for the per-completion counters — resolved once
/// at `on_start` so the completion path never does a by-name lookup.
#[derive(Clone, Copy)]
struct DriverCounters {
    lookups_ok: CounterId,
    lookups_failed: CounterId,
    puts_ok: CounterId,
    puts_failed: CounterId,
    gets_ok: CounterId,
    gets_failed: CounterId,
}

impl DriverCounters {
    fn register(m: &mut Metrics) -> Self {
        DriverCounters {
            lookups_ok: m.register_counter("chord.lookups_ok"),
            lookups_failed: m.register_counter("chord.lookups_failed"),
            puts_ok: m.register_counter("chord.puts_ok"),
            puts_failed: m.register_counter("chord.puts_failed"),
            gets_ok: m.register_counter("chord.gets_ok"),
            gets_failed: m.register_counter("chord.gets_failed"),
        }
    }
}

/// Simulator process wrapping one Chord node.
pub struct ChordDriver {
    /// The wrapped state machine (public for post-run inspection).
    pub node: ChordNode,
    bootstrap: Option<NodeRef>,
    start_delay: Duration,
    /// Counter handles; registered on the first upcall (`on_start`).
    counters: Option<DriverCounters>,
    /// Every upcall event, in order.
    pub events: Vec<ChordEvent>,
    /// Completed client operations.
    pub completions: Vec<Completion>,
}

impl ChordDriver {
    /// Create a driver that joins immediately on start.
    pub fn new(me: NodeRef, cfg: ChordConfig, bootstrap: Option<NodeRef>) -> Self {
        Self::with_delay(me, cfg, bootstrap, Duration::ZERO)
    }

    /// Create a driver that waits `start_delay` before joining (staggered
    /// ring construction).
    pub fn with_delay(
        me: NodeRef,
        cfg: ChordConfig,
        bootstrap: Option<NodeRef>,
        start_delay: Duration,
    ) -> Self {
        ChordDriver {
            node: ChordNode::new(me, cfg),
            bootstrap,
            start_delay,
            counters: None,
            events: Vec::new(),
            completions: Vec::new(),
        }
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, DriverMsg>, actions: Vec<Action>) {
        let now = ctx.now();
        let counters = match self.counters {
            Some(c) => c,
            None => {
                let c = DriverCounters::register(ctx.metrics());
                self.counters = Some(c);
                c
            }
        };
        for act in actions {
            match act {
                Action::Send(to, msg) => ctx.send(to, DriverMsg::Chord(msg)),
                Action::SetTimer(delay, timer) => {
                    ctx.set_timer(delay, timer.encode());
                }
                Action::Event(ev) => {
                    match &ev {
                        ChordEvent::LookupDone { op, hops, .. } => {
                            ctx.metrics().incr_id(counters.lookups_ok);
                            ctx.metrics().record("chord.lookup_hops", *hops as f64);
                            self.completions.push(Completion {
                                op: *op,
                                at: now,
                                event: ev.clone(),
                            });
                        }
                        ChordEvent::LookupFailed { op } => {
                            ctx.metrics().incr_id(counters.lookups_failed);
                            self.completions.push(Completion {
                                op: *op,
                                at: now,
                                event: ev.clone(),
                            });
                        }
                        ChordEvent::PutDone { op, ok, .. } => {
                            ctx.metrics().incr_id(if *ok {
                                counters.puts_ok
                            } else {
                                counters.puts_failed
                            });
                            self.completions.push(Completion {
                                op: *op,
                                at: now,
                                event: ev.clone(),
                            });
                        }
                        ChordEvent::GetDone { op, ok, .. } => {
                            ctx.metrics().incr_id(if *ok {
                                counters.gets_ok
                            } else {
                                counters.gets_failed
                            });
                            self.completions.push(Completion {
                                op: *op,
                                at: now,
                                event: ev.clone(),
                            });
                        }
                        _ => {}
                    }
                    self.events.push(ev);
                }
            }
        }
    }
}

impl Process<DriverMsg> for ChordDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DriverMsg>) {
        if self.start_delay.is_zero() {
            let actions = self.node.start(ctx.now(), self.bootstrap);
            self.apply(ctx, actions);
        } else {
            ctx.set_timer(self.start_delay, START_TAG);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DriverMsg>, from: NodeId, msg: DriverMsg) {
        let now = ctx.now();
        let actions = match msg {
            DriverMsg::Chord(m) => self.node.handle(now, from, m),
            DriverMsg::Cmd(cmd) => match cmd {
                Cmd::Lookup(target) => self.node.lookup(now, target).1,
                Cmd::Put(key, value, mode) => self.node.put(now, key, value, mode).1,
                Cmd::Get(key) => self.node.get(now, key).1,
                Cmd::Leave => {
                    let acts = self.node.leave(now);
                    self.apply(ctx, acts);
                    ctx.halt_self();
                    return;
                }
            },
        };
        self.apply(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DriverMsg>, tag: u64) {
        if tag == START_TAG {
            let actions = self.node.start(ctx.now(), self.bootstrap);
            self.apply(ctx, actions);
            return;
        }
        if let Some(timer) = ChordTimer::decode(tag) {
            let actions = self.node.on_timer(ctx.now(), timer);
            self.apply(ctx, actions);
        }
    }

    fn on_stop(&mut self, ctx: &mut Ctx<'_, DriverMsg>) {
        if self.node.is_joined() {
            let actions = self.node.leave(ctx.now());
            self.apply(ctx, actions);
        }
    }
}

/// Build a ring of `n` nodes with deterministic ids, joins staggered by
/// `join_gap`. Returns the `NodeRef` of every node (addresses match the
/// simulator's assignment order).
pub fn build_ring(
    sim: &mut simnet::Sim<DriverMsg>,
    n: usize,
    cfg: &ChordConfig,
    join_gap: Duration,
) -> Vec<NodeRef> {
    assert!(n >= 1);
    let mut refs: Vec<NodeRef> = Vec::with_capacity(n);
    let mut first: Option<NodeRef> = None;
    for i in 0..n {
        let id = Id::hash(format!("chord-node-{i}").as_bytes());
        let addr = NodeId(sim.node_count() as u32);
        let me = NodeRef::new(addr, id);
        let (bootstrap, delay) = match first {
            None => (None, Duration::ZERO),
            Some(f) => (Some(f), join_gap * i as u64),
        };
        let assigned = sim.add_node(ChordDriver::with_delay(me, cfg.clone(), bootstrap, delay));
        assert_eq!(assigned, addr, "address assignment raced");
        if first.is_none() {
            first = Some(me);
        }
        refs.push(me);
    }
    refs
}

/// The ground-truth owner of `key` among `members`: the first node at or
/// after `key` walking clockwise (minimal clockwise distance from the key).
/// Used by tests as an oracle against the routed answer.
pub fn oracle_owner(members: &[NodeRef], key: Id) -> NodeRef {
    assert!(!members.is_empty());
    *members
        .iter()
        .min_by_key(|m| key.distance_to(m.id))
        .unwrap()
}
