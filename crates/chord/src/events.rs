//! Effects emitted by the sans-IO Chord state machine, and upcall events for
//! the layers above (KTS / P2P-Log / P2P-LTR).

use bytes::Bytes;

use crate::msg::{ChordMsg, NodeRef, OpId};
use simnet::{Duration, NodeId};

/// Timers the Chord node arms. The embedding process encodes these into the
/// simulator's opaque `u64` timer tags via [`ChordTimer::encode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChordTimer {
    /// Periodic successor-pointer repair.
    Stabilize,
    /// Periodic finger repair.
    FixFingers,
    /// Periodic predecessor liveness probe.
    CheckPredecessor,
    /// Periodic replica push.
    Replicate,
    /// Per-operation timeout.
    OpTimeout(OpId),
}

impl ChordTimer {
    /// Pack into a `u64` tag (low 3 bits discriminate; op ids shift left).
    pub fn encode(self) -> u64 {
        match self {
            ChordTimer::Stabilize => 0,
            ChordTimer::FixFingers => 1,
            ChordTimer::CheckPredecessor => 2,
            ChordTimer::Replicate => 3,
            ChordTimer::OpTimeout(op) => 4 | (op.0 << 3),
        }
    }

    /// Inverse of [`ChordTimer::encode`]. Returns `None` for foreign tags.
    pub fn decode(tag: u64) -> Option<ChordTimer> {
        match tag & 0b111 {
            0 => Some(ChordTimer::Stabilize),
            1 => Some(ChordTimer::FixFingers),
            2 => Some(ChordTimer::CheckPredecessor),
            3 => Some(ChordTimer::Replicate),
            4 => Some(ChordTimer::OpTimeout(OpId(tag >> 3))),
            _ => None,
        }
    }
}

/// Upcalls from Chord to the application layer.
#[derive(Clone, Debug)]
pub enum ChordEvent {
    /// The node completed its join and participates in the ring.
    Joined,
    /// Join could not complete after the configured attempts.
    JoinFailed,
    /// A [`crate::ChordNode::lookup`] completed.
    LookupDone {
        /// The operation handle returned by `lookup`.
        op: OpId,
        /// Node responsible for the looked-up id.
        owner: NodeRef,
        /// Routing hops taken.
        hops: u32,
    },
    /// A lookup exhausted its retries.
    LookupFailed {
        /// The operation handle.
        op: OpId,
    },
    /// A [`crate::ChordNode::put`] completed.
    PutDone {
        /// The operation handle.
        op: OpId,
        /// True if stored.
        ok: bool,
        /// On a first-writer conflict, the value already present.
        conflict: Option<Bytes>,
    },
    /// A [`crate::ChordNode::get`] completed.
    GetDone {
        /// The operation handle.
        op: OpId,
        /// The value found, if any.
        value: Option<Bytes>,
        /// False when the operation exhausted its retries (vs. an
        /// authoritative miss).
        ok: bool,
    },
    /// A [`crate::ChordNode::fence`] completed.
    FenceDone {
        /// The operation handle.
        op: OpId,
        /// True iff the floor is in force at the key's owner.
        ok: bool,
        /// The floor in force at the owner (the rival's, when `!ok`);
        /// 0 when the operation exhausted its retries unanswered.
        current: u64,
        /// True when a primary record already occupies the fenced key.
        occupied: bool,
    },
    /// The predecessor pointer changed (join, leave, or failure detection).
    /// The upper layers use this to hand off per-key application state
    /// (the paper's "transfers its keys and timestamps" step).
    PredecessorChanged {
        /// Previous predecessor.
        old: Option<NodeRef>,
        /// New predecessor (None = presumed failed).
        new: Option<NodeRef>,
    },
    /// Keys were transferred in from another node (join/leave handoff).
    KeysReceived {
        /// Number of items received.
        count: usize,
    },
}

/// One buffered effect from the Chord state machine.
#[derive(Clone, Debug)]
pub enum Action {
    /// Send a Chord message to a transport address.
    Send(NodeId, ChordMsg),
    /// Arm a timer.
    SetTimer(Duration, ChordTimer),
    /// Deliver an upcall to the embedding layer.
    Event(ChordEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_encoding_roundtrips() {
        let timers = [
            ChordTimer::Stabilize,
            ChordTimer::FixFingers,
            ChordTimer::CheckPredecessor,
            ChordTimer::Replicate,
            ChordTimer::OpTimeout(OpId(0)),
            ChordTimer::OpTimeout(OpId(12345)),
            ChordTimer::OpTimeout(OpId(u64::MAX >> 3)),
        ];
        for t in timers {
            assert_eq!(ChordTimer::decode(t.encode()), Some(t));
        }
    }

    #[test]
    fn distinct_ops_distinct_tags() {
        assert_ne!(
            ChordTimer::OpTimeout(OpId(1)).encode(),
            ChordTimer::OpTimeout(OpId(2)).encode()
        );
        assert_ne!(
            ChordTimer::Stabilize.encode(),
            ChordTimer::OpTimeout(OpId(0)).encode()
        );
    }
}
