//! # ltr-chord — a Chord DHT as a sans-IO state machine
//!
//! From-scratch implementation of the Chord protocol (Stoica et al.,
//! SIGCOMM'01) in the variant the P2P-LTR paper builds on (Open Chord plus
//! the authors' own successor-management/stabilization layer):
//!
//! * 2^64 identifier ring (SHA-1-derived ids, [`id::Id`]);
//! * recursive [`msg::ChordMsg::FindSuccessor`] routing with finger tables
//!   and greedy closest-preceding-node forwarding;
//! * successor lists, periodic stabilize/notify/fix-fingers/check-predecessor;
//! * key-value storage with **successor replication** (the paper's
//!   Log-Peers-Succ robustness) and first-writer-wins conditional puts;
//! * responsibility handoff on join, graceful leave and crash — every
//!   predecessor change surfaces as [`events::ChordEvent::PredecessorChanged`]
//!   so the timestamping layer can move `last-ts` state (the paper's
//!   "transfers its keys and timestamps" behaviour);
//! * failure handling via per-operation timeouts, retry-through-successors,
//!   and short-lived suspect blacklists.
//!
//! The protocol core ([`node::ChordNode`]) performs no IO: callers feed it
//! messages/timers and execute the returned [`events::Action`]s. The
//! [`harness`] module provides a ready [`simnet::Process`] embedding.

#![warn(missing_docs)]

pub mod config;
pub mod docname;
pub mod events;
pub mod harness;
pub mod id;
pub mod merkle;
pub mod msg;
pub mod node;
pub mod routing;
pub mod sha1;
pub mod stabilize;
pub mod storage;
pub mod storage_proto;
pub mod sync;

pub use config::{ChordConfig, ReplicationMode};
pub use docname::DocName;
pub use events::{Action, ChordEvent, ChordTimer};
pub use id::{Id, M};
pub use msg::{ChordMsg, NodeRef, OpId, PutMode};
pub use node::ChordNode;
pub use storage::{value_rank, Storage, StorageDelta, SyncView, RANK_MAGIC};
