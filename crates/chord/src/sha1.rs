//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! The paper locates Master-key peers and Log-Peers by hashing document
//! names/keys with SHA-1 (reference [11] of RR-6497 is the Secure Hash
//! Standard). No SHA crate is in the offline dependency set, so we implement
//! the 1995 standard directly; it is ~100 lines and exhaustively tested
//! against the official test vectors.
//!
//! SHA-1's cryptographic weaknesses (collision attacks) are irrelevant here:
//! the DHT only needs uniform dispersion, exactly as in the original Chord
//! paper.

/// Output size in bytes.
pub const DIGEST_LEN: usize = 20;

/// A SHA-1 digest.
pub type Digest = [u8; DIGEST_LEN];

/// Compute the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];

    // Message padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut padded = Vec::with_capacity(data.len() + 72);
    padded.extend_from_slice(data);
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in padded.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// First 8 bytes of the digest as a big-endian `u64` — the ring id.
pub fn sha1_u64(data: &[u8]) -> u64 {
    let d = sha1(data);
    u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Official FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn vector_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn vector_448_bits() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn vector_quick_brown_fox() {
        assert_eq!(
            hex(&sha1(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn boundary_lengths_pad_correctly() {
        // 55, 56, 63, 64, 65 bytes cross the padding boundaries.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0x5a; len];
            let d = sha1(&data);
            // Re-hash must be identical (determinism) and non-degenerate.
            assert_eq!(d, sha1(&data));
            assert_ne!(d, [0u8; 20]);
        }
    }

    #[test]
    fn u64_prefix_matches_digest() {
        let d = sha1(b"abc");
        let expect = u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]);
        assert_eq!(sha1_u64(b"abc"), expect);
        assert_eq!(sha1_u64(b"abc"), 0xa9993e364706816a);
    }

    #[test]
    fn distinct_inputs_distinct_u64() {
        // Sanity: no accidental collisions among a few thousand keys.
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000u32 {
            assert!(seen.insert(sha1_u64(format!("doc-{i}").as_bytes())));
        }
    }
}
