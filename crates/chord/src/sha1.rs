//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! The paper locates Master-key peers and Log-Peers by hashing document
//! names/keys with SHA-1 (reference \[11\] of RR-6497 is the Secure Hash
//! Standard). No SHA crate is in the offline dependency set, so we implement
//! the 1995 standard directly; it is ~100 lines and exhaustively tested
//! against the official test vectors.
//!
//! The implementation is **incremental** ([`Sha1`]): input is absorbed in
//! 64-byte blocks with a small stack buffer for the tail, and padding is
//! applied on a stack copy at finalization — no heap allocation anywhere.
//! Incremental hashing also enables **midstate caching**: the placement
//! hash family in `p2plog` absorbs `salt ':' doc` once per document and
//! clones the ~100-byte state per timestamp instead of re-hashing the
//! document name for every key derivation.
//!
//! SHA-1's cryptographic weaknesses (collision attacks) are irrelevant here:
//! the DHT only needs uniform dispersion, exactly as in the original Chord
//! paper.

/// Output size in bytes.
pub const DIGEST_LEN: usize = 20;

/// A SHA-1 digest.
pub type Digest = [u8; DIGEST_LEN];

const H0: [u32; 5] = [
    0x6745_2301,
    0xEFCD_AB89,
    0x98BA_DCFE,
    0x1032_5476,
    0xC3D2_E1F0,
];

/// One compression round over a full 64-byte block.
fn compress(h: &mut [u32; 5], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 80];
    for (i, word) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }

    let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
            20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
            _ => (b ^ c ^ d, 0xCA62_C1D6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// Incremental SHA-1 state: absorb with [`Sha1::update`], read the digest
/// with [`Sha1::finalize`]. `finalize` borrows immutably, so a state can be
/// cloned/reused — the basis of midstate caching for key derivation.
#[derive(Clone, Debug)]
pub struct Sha1 {
    h: [u32; 5],
    /// Total bytes absorbed.
    len: u64,
    /// Tail bytes not yet forming a full block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            h: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len += data.len() as u64;
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                return; // everything fit in the tail buffer
            }
            let block = self.buf;
            compress(&mut self.h, &block);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            compress(&mut self.h, block);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// The digest of everything absorbed so far. Pads a stack copy of the
    /// state, leaving `self` usable for further updates.
    pub fn finalize(&self) -> Digest {
        let mut h = self.h;
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 64-bit bit length —
        // at most two blocks, built on the stack.
        let mut block = [0u8; 64];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        block[self.buf_len] = 0x80;
        if self.buf_len >= 56 {
            compress(&mut h, &block);
            block = [0u8; 64];
        }
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        compress(&mut h, &block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// First 8 bytes of the digest as a big-endian `u64` — the ring id.
    pub fn finalize_u64(&self) -> u64 {
        let d = self.finalize();
        u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
    }
}

/// Compute the SHA-1 digest of `data` (one-shot convenience).
pub fn sha1(data: &[u8]) -> Digest {
    let mut s = Sha1::new();
    s.update(data);
    s.finalize()
}

/// First 8 bytes of the digest as a big-endian `u64` — the ring id.
pub fn sha1_u64(data: &[u8]) -> u64 {
    let mut s = Sha1::new();
    s.update(data);
    s.finalize_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Official FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn vector_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn vector_448_bits() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn vector_quick_brown_fox() {
        assert_eq!(
            hex(&sha1(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn boundary_lengths_pad_correctly() {
        // 55, 56, 63, 64, 65 bytes cross the padding boundaries.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0x5a; len];
            let d = sha1(&data);
            // Re-hash must be identical (determinism) and non-degenerate.
            assert_eq!(d, sha1(&data));
            assert_ne!(d, [0u8; 20]);
        }
    }

    #[test]
    fn incremental_matches_oneshot_all_split_points() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let expect = sha1(&data);
        for split in 0..=data.len() {
            let mut s = Sha1::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finalize(), expect, "split at {split}");
        }
        // Byte-at-a-time.
        let mut s = Sha1::new();
        for &b in &data {
            s.update(&[b]);
        }
        assert_eq!(s.finalize(), expect);
    }

    #[test]
    fn finalize_is_nondestructive_and_cloneable() {
        let mut s = Sha1::new();
        s.update(b"abc");
        let first = s.finalize();
        assert_eq!(s.finalize(), first, "finalize must not consume state");
        // A cloned midstate diverges independently.
        let mut fork = s.clone();
        fork.update(b"def");
        s.update(b"xyz");
        assert_eq!(fork.finalize(), sha1(b"abcdef"));
        assert_eq!(s.finalize(), sha1(b"abcxyz"));
        assert_eq!(first, sha1(b"abc"));
    }

    #[test]
    fn u64_prefix_matches_digest() {
        let d = sha1(b"abc");
        let expect = u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]);
        assert_eq!(sha1_u64(b"abc"), expect);
        assert_eq!(sha1_u64(b"abc"), 0xa9993e364706816a);
    }

    #[test]
    fn distinct_inputs_distinct_u64() {
        // Sanity: no accidental collisions among a few thousand keys.
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000u32 {
            assert!(seen.insert(sha1_u64(format!("doc-{i}").as_bytes())));
        }
    }
}
