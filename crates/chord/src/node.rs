//! The Chord node state machine: struct, lifecycle, public DHT operations,
//! and timer dispatch. Routing lives in [`crate::routing`], stabilization in
//! [`crate::stabilize`], and the storage protocol in
//! [`crate::storage_proto`].

use std::collections::{BTreeMap, BTreeSet, HashMap};

use bytes::Bytes;

use crate::config::ChordConfig;
use crate::events::{Action, ChordEvent, ChordTimer};
use crate::id::{Id, M};
use crate::msg::{ChordMsg, NodeRef, OpId, PutMode};
use crate::storage::Storage;
use simnet::{NodeId, Time};

/// In-flight operation kinds. `owner: None` means the op is still in its
/// lookup phase; `Some` means the direct request was sent to that node.
#[derive(Clone, Debug)]
pub(crate) enum OpKind {
    Join {
        bootstrap: NodeRef,
    },
    Lookup {
        target: Id,
    },
    FingerLookup {
        idx: usize,
    },
    Put {
        key: Id,
        value: Bytes,
        mode: PutMode,
        owner: Option<NodeRef>,
    },
    Get {
        key: Id,
        owner: Option<NodeRef>,
    },
    Fence {
        key: Id,
        floor: u64,
        owner: Option<NodeRef>,
    },
    StabilizeGetPred {
        asked: NodeRef,
    },
    PingPred {
        target: NodeRef,
    },
}

#[derive(Clone, Debug)]
pub(crate) struct OpState {
    pub kind: OpKind,
    pub attempts: u32,
}

/// A Chord DHT node as a sans-IO state machine.
///
/// Drive it with [`ChordNode::start`], [`ChordNode::handle`] (messages) and
/// [`ChordNode::on_timer`]; each returns the [`Action`]s to perform. The
/// embedding process is responsible for actually sending messages and
/// arming timers (see `chord::harness` for a ready-made embedding).
pub struct ChordNode {
    pub(crate) me: NodeRef,
    pub(crate) cfg: ChordConfig,
    pub(crate) pred: Option<NodeRef>,
    /// Successor list, closest first. Contains `me` only when singleton.
    pub(crate) succs: Vec<NodeRef>,
    pub(crate) fingers: Vec<Option<NodeRef>>,
    pub(crate) next_finger: usize,
    pub(crate) store: Storage,
    pub(crate) store_version: u64,
    // detlint::allow(DET-HASH, keyed acks from a specific successor; never iterated)
    pub(crate) replicated_to: HashMap<NodeId, u64>,
    // detlint::allow(DET-HASH, hot per-op lookup; ops complete or time out individually, never iterated)
    pub(crate) ops: HashMap<OpId, OpState>,
    pub(crate) op_seq: u64,
    pub(crate) joined: bool,
    pub(crate) suspects: BTreeMap<NodeId, Time>,
    /// Consecutive predecessor-ping losses (reset by any pong from the
    /// current predecessor or a predecessor change). The predecessor is
    /// only declared dead at `cfg.fail_threshold`.
    pub(crate) pred_fails: u32,
    /// Consecutive stabilize-round losses against the current successor.
    pub(crate) succ_fails: u32,
    /// In-flight re-home puts (orphaned primary → true owner): op → key.
    /// See the orphan sweep in `tick_replicate`.
    pub(crate) rehoming: BTreeMap<OpId, Id>,
    /// Reverse index of `rehoming`'s values: the orphan sweep's
    /// "already in flight?" test, O(log n) instead of a scan per orphan.
    pub(crate) rehoming_keys: BTreeSet<Id>,
    /// Merkle sync rounds we are driving as owner, per replica address.
    pub(crate) sync_out: BTreeMap<NodeId, crate::sync::SyncOut>,
    /// Merkle sync rounds we are serving as replica, per owner address.
    pub(crate) sync_in: BTreeMap<NodeId, crate::sync::SyncIn>,
    pub(crate) acts: Vec<Action>,
    /// Cumulative hop count of completed lookups (for metrics).
    pub(crate) total_lookup_hops: u64,
    pub(crate) completed_lookups: u64,
}

impl ChordNode {
    /// Create a node that is not yet part of any ring.
    pub fn new(me: NodeRef, cfg: ChordConfig) -> Self {
        ChordNode {
            me,
            cfg,
            pred: None,
            succs: Vec::new(),
            fingers: vec![None; M],
            next_finger: 0,
            store: Storage::new(),
            store_version: 0,
            replicated_to: HashMap::new(), // detlint::allow(DET-HASH, lookup-only; see field decl)
            ops: HashMap::new(),           // detlint::allow(DET-HASH, lookup-only; see field decl)
            op_seq: 0,
            joined: false,
            suspects: BTreeMap::new(),
            pred_fails: 0,
            succ_fails: 0,
            rehoming: BTreeMap::new(),
            rehoming_keys: BTreeSet::new(),
            sync_out: BTreeMap::new(),
            sync_in: BTreeMap::new(),
            acts: Vec::new(),
            total_lookup_hops: 0,
            completed_lookups: 0,
        }
    }

    // ----- accessors --------------------------------------------------

    /// This node's address + ring id.
    pub fn me(&self) -> NodeRef {
        self.me
    }

    /// Ring id.
    pub fn id(&self) -> Id {
        self.me.id
    }

    /// Current immediate successor (self when singleton/unjoined).
    pub fn successor(&self) -> NodeRef {
        self.succs.first().copied().unwrap_or(self.me)
    }

    /// The whole successor list.
    pub fn successor_list(&self) -> &[NodeRef] {
        &self.succs
    }

    /// Current predecessor, if known.
    pub fn predecessor(&self) -> Option<NodeRef> {
        self.pred
    }

    /// Has the join completed?
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// Is this node currently responsible for `key`?
    ///
    /// True iff `key ∈ (pred, me]`; a singleton ring owns everything. With
    /// an unknown predecessor we answer `true` conservatively — the KTS
    /// layer adds epoch fencing on top (see DESIGN.md).
    pub fn is_responsible(&self, key: Id) -> bool {
        if !self.joined {
            return false;
        }
        match self.pred {
            Some(p) => key.in_half_open(p.id, self.me.id),
            None => true,
        }
    }

    /// Immutable view of the local store.
    pub fn storage(&self) -> &Storage {
        &self.store
    }

    /// Mutable view of the local store (used by upper layers that co-locate
    /// state with ownership, e.g. log garbage collection).
    pub fn storage_mut(&mut self) -> &mut Storage {
        self.store_version += 1;
        &mut self.store
    }

    /// Mean routing hops over all completed lookups on this node.
    pub fn mean_lookup_hops(&self) -> f64 {
        if self.completed_lookups == 0 {
            0.0
        } else {
            self.total_lookup_hops as f64 / self.completed_lookups as f64
        }
    }

    /// Finger-table entries currently populated (diagnostics).
    pub fn finger_fill(&self) -> usize {
        self.fingers.iter().filter(|f| f.is_some()).count()
    }

    // ----- effect helpers ----------------------------------------------

    pub(crate) fn send(&mut self, to: NodeId, msg: ChordMsg) {
        self.acts.push(Action::Send(to, msg));
    }

    pub(crate) fn emit(&mut self, ev: ChordEvent) {
        self.acts.push(Action::Event(ev));
    }

    pub(crate) fn arm(&mut self, delay: simnet::Duration, t: ChordTimer) {
        self.acts.push(Action::SetTimer(delay, t));
    }

    pub(crate) fn arm_op_timeout(&mut self, op: OpId) {
        self.arm(self.cfg.op_timeout, ChordTimer::OpTimeout(op));
    }

    pub(crate) fn drain(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.acts)
    }

    pub(crate) fn new_op(&mut self, kind: OpKind) -> OpId {
        self.op_seq += 1;
        let op = OpId(self.op_seq);
        self.ops.insert(op, OpState { kind, attempts: 0 });
        op
    }

    pub(crate) fn mark_suspect(&mut self, addr: NodeId, now: Time) {
        if addr != self.me.addr {
            self.suspects.insert(addr, now + self.cfg.suspect_ttl);
        }
    }

    pub(crate) fn is_suspect(&self, addr: NodeId, now: Time) -> bool {
        self.suspects.get(&addr).is_some_and(|&until| until > now)
    }

    pub(crate) fn prune_suspects(&mut self, now: Time) {
        self.suspects.retain(|_, &mut until| until > now);
    }

    // ----- lifecycle ----------------------------------------------------

    /// Start the node. With no bootstrap it forms a singleton ring;
    /// otherwise it joins via the given contact node.
    pub fn start(&mut self, _now: Time, bootstrap: Option<NodeRef>) -> Vec<Action> {
        match bootstrap {
            None => {
                self.succs = vec![self.me];
                self.joined = true;
                self.emit(ChordEvent::Joined);
                self.arm_periodic_timers();
            }
            Some(contact) => {
                let op = self.new_op(OpKind::Join { bootstrap: contact });
                self.send(
                    contact.addr,
                    ChordMsg::FindSuccessor {
                        op,
                        target: self.me.id,
                        origin: self.me,
                        hops: 0,
                    },
                );
                self.arm_op_timeout(op);
            }
        }
        self.drain()
    }

    pub(crate) fn arm_periodic_timers(&mut self) {
        self.arm(self.cfg.stabilize_every, ChordTimer::Stabilize);
        self.arm(self.cfg.fix_fingers_every, ChordTimer::FixFingers);
        self.arm(self.cfg.check_pred_every, ChordTimer::CheckPredecessor);
        if self.cfg.storage_replicas > 0 {
            self.arm(self.cfg.replicate_every, ChordTimer::Replicate);
        }
    }

    pub(crate) fn complete_join(&mut self, succ: NodeRef) {
        self.integrate_successor(succ);
        self.joined = true;
        self.emit(ChordEvent::Joined);
        self.send(
            self.successor().addr,
            ChordMsg::Notify { candidate: self.me },
        );
        self.arm_periodic_timers();
    }

    /// Insert a candidate into the successor list, keeping it sorted by
    /// clockwise distance from `me` and truncated to the configured length.
    pub(crate) fn integrate_successor(&mut self, cand: NodeRef) {
        if cand.id == self.me.id {
            return;
        }
        // The list (possibly its head) changes: losses counted against
        // the previous head must not carry over to a new one.
        self.succ_fails = 0;
        self.succs.retain(|s| s.id != self.me.id && s.id != cand.id);
        self.succs.push(cand);
        let me = self.me.id;
        self.succs.sort_by_key(|s| me.distance_to(s.id));
        self.succs.truncate(self.cfg.succ_list_len);
    }

    /// Remove a node from the successor list (after detecting failure).
    pub(crate) fn drop_successor(&mut self, addr: NodeId) {
        // Whatever replaces the dropped head starts with a clean record.
        self.succ_fails = 0;
        self.succs.retain(|s| s.addr != addr);
        if self.succs.is_empty() {
            // Fall back to any live finger; otherwise we are singleton.
            let me = self.me.id;
            let mut cands: Vec<NodeRef> = self
                .fingers
                .iter()
                .flatten()
                .copied()
                .filter(|f| f.addr != addr && f.id != self.me.id)
                .collect();
            cands.sort_by_key(|s| me.distance_to(s.id));
            match cands.first() {
                Some(&c) => self.succs.push(c),
                None => {
                    self.succs.push(self.me);
                    // Last node standing: adopt everything we hold.
                    let promoted = self.store.promote_replicas_in_range(me, me);
                    if promoted > 0 {
                        self.store_version += 1;
                    }
                }
            }
        }
    }

    /// Graceful departure: hand primary items to the successor and splice
    /// predecessor/successor around us. The embedder should stop the node
    /// after performing the returned actions.
    pub fn leave(&mut self, _now: Time) -> Vec<Action> {
        let succ = self.successor();
        if succ.id != self.me.id {
            let items = self.store.primary_items();
            self.send(
                succ.addr,
                ChordMsg::LeaveToSucc {
                    pred_of_leaver: self.pred,
                    items,
                },
            );
        }
        if let Some(p) = self.pred {
            if p.id != self.me.id && succ.id != self.me.id {
                self.send(
                    p.addr,
                    ChordMsg::LeaveToPred {
                        succ_of_leaver: succ,
                    },
                );
            }
        }
        self.joined = false;
        self.drain()
    }

    // ----- public DHT operations -----------------------------------------

    /// Find the node responsible for `target`. Completion is reported via
    /// [`ChordEvent::LookupDone`] / [`ChordEvent::LookupFailed`].
    pub fn lookup(&mut self, now: Time, target: Id) -> (OpId, Vec<Action>) {
        let op = self.new_op(OpKind::Lookup { target });
        self.issue_lookup(now, op, target, 0);
        self.arm_op_timeout(op);
        (op, self.drain())
    }

    /// Store `value` under `key` at the responsible node (k-replicated by
    /// its successors). Completion via [`ChordEvent::PutDone`].
    pub fn put(&mut self, now: Time, key: Id, value: Bytes, mode: PutMode) -> (OpId, Vec<Action>) {
        let op = self.new_op(OpKind::Put {
            key,
            value,
            mode,
            owner: None,
        });
        self.issue_lookup(now, op, key, 0);
        self.arm_op_timeout(op);
        (op, self.drain())
    }

    /// Fetch the value under `key`. Completion via [`ChordEvent::GetDone`].
    pub fn get(&mut self, now: Time, key: Id) -> (OpId, Vec<Action>) {
        let op = self.new_op(OpKind::Get { key, owner: None });
        self.issue_lookup(now, op, key, 0);
        self.arm_op_timeout(op);
        (op, self.drain())
    }

    /// Raise the fence floor for `key` at its owner (see
    /// [`crate::Storage::raise_fence`]). Completion via
    /// [`ChordEvent::FenceDone`].
    pub fn fence(&mut self, now: Time, key: Id, floor: u64) -> (OpId, Vec<Action>) {
        let op = self.new_op(OpKind::Fence {
            key,
            floor,
            owner: None,
        });
        self.issue_lookup(now, op, key, 0);
        self.arm_op_timeout(op);
        (op, self.drain())
    }

    // ----- dispatch -------------------------------------------------------

    /// Feed an incoming message; returns the actions to perform.
    pub fn handle(&mut self, now: Time, from: NodeId, msg: ChordMsg) -> Vec<Action> {
        match msg {
            ChordMsg::FindSuccessor {
                op,
                target,
                origin,
                hops,
            } => self.on_find_successor(now, op, target, origin, hops),
            ChordMsg::FoundSuccessor { op, owner, hops } => {
                self.on_found_successor(now, op, owner, hops)
            }
            ChordMsg::GetPredecessor { op } => {
                let pred = self.pred;
                let succ_list = self.succs.clone();
                self.send(
                    from,
                    ChordMsg::PredecessorIs {
                        op,
                        pred,
                        succ_list,
                    },
                );
            }
            ChordMsg::PredecessorIs {
                op,
                pred,
                succ_list,
            } => self.on_predecessor_is(now, op, pred, succ_list),
            ChordMsg::Notify { candidate } => self.on_notify(now, candidate),
            ChordMsg::Ping { op } => self.send(from, ChordMsg::Pong { op }),
            ChordMsg::Pong { op } => {
                if let Some(st) = self.ops.remove(&op) {
                    // A pong from the current predecessor clears its
                    // accumulated liveness-probe failures.
                    if let OpKind::PingPred { target } = st.kind {
                        if self.pred.is_some_and(|p| p.addr == target.addr) {
                            self.pred_fails = 0;
                        }
                    }
                }
            }
            ChordMsg::Put {
                op,
                key,
                value,
                mode,
                origin,
            } => self.on_put(now, op, key, value, mode, origin),
            ChordMsg::PutAck { op, ok, existing } => self.on_put_ack(now, op, ok, existing),
            ChordMsg::Get { op, key, origin } => self.on_get(now, op, key, origin),
            ChordMsg::GetReply {
                op,
                value,
                authoritative,
            } => self.on_get_reply(now, op, value, authoritative),
            ChordMsg::Replicate { items } => self.on_replicate(now, from, items),
            ChordMsg::TransferKeys { items } => self.on_transfer_keys(now, items),
            ChordMsg::LeaveToSucc {
                pred_of_leaver,
                items,
            } => self.on_leave_to_succ(now, from, pred_of_leaver, items),
            ChordMsg::LeaveToPred { succ_of_leaver } => {
                self.on_leave_to_pred(now, from, succ_of_leaver)
            }
            ChordMsg::SyncRoot {
                ver,
                from: range_from,
                to,
                root,
            } => self.on_sync_root(from, ver, range_from, to, root),
            ChordMsg::SyncDiff { ver, wants, need } => self.on_sync_diff(from, ver, wants, need),
            ChordMsg::SyncNodes { ver, nodes, leaves } => {
                self.on_sync_nodes(from, ver, nodes, leaves)
            }
            ChordMsg::SyncAck { ver } => self.on_sync_ack(from, ver),
            ChordMsg::Fence {
                op,
                key,
                floor,
                origin,
            } => self.on_fence(now, op, key, floor, origin),
            ChordMsg::FenceAck {
                op,
                ok,
                current,
                occupied,
            } => self.on_fence_ack(now, op, ok, current, occupied),
        }
        self.drain()
    }

    /// Feed a fired timer; returns the actions to perform.
    pub fn on_timer(&mut self, now: Time, timer: ChordTimer) -> Vec<Action> {
        match timer {
            ChordTimer::Stabilize => self.tick_stabilize(now),
            ChordTimer::FixFingers => self.tick_fix_fingers(now),
            ChordTimer::CheckPredecessor => self.tick_check_predecessor(now),
            ChordTimer::Replicate => self.tick_replicate(now),
            ChordTimer::OpTimeout(op) => self.on_op_timeout(now, op),
        }
        self.drain()
    }
}
