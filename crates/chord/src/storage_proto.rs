//! The direct phase of the storage protocol: `Put`/`Get` requests arriving
//! at the responsible node and their acknowledgements at the origin.

use bytes::Bytes;

use crate::events::ChordEvent;
use crate::id::Id;
use crate::msg::{ChordMsg, NodeRef, OpId, PutMode};
use crate::node::{ChordNode, OpKind};
use simnet::Time;

impl ChordNode {
    /// A `Put` arrived; we should be the owner.
    pub(crate) fn on_put(
        &mut self,
        _now: Time,
        op: OpId,
        key: Id,
        value: Bytes,
        mode: PutMode,
        origin: NodeRef,
    ) {
        if !self.joined || !self.is_responsible(key) {
            // Retryable refusal: ownership moved; origin re-resolves.
            self.send(
                origin.addr,
                ChordMsg::PutAck {
                    op,
                    ok: false,
                    existing: None,
                },
            );
            return;
        }
        let (ok, existing) = self.apply_put_local(key, value, mode);
        self.send(origin.addr, ChordMsg::PutAck { op, ok, existing });
    }

    /// Our earlier `Put` was answered.
    pub(crate) fn on_put_ack(&mut self, now: Time, op: OpId, ok: bool, existing: Option<Bytes>) {
        let is_put = matches!(self.ops.get(&op).map(|s| &s.kind), Some(OpKind::Put { .. }));
        if !is_put {
            return; // late duplicate
        }
        if ok {
            self.finish_put(op, true, None);
        } else if existing.is_some() {
            // First-writer conflict: definitive failure, report the winner.
            self.finish_put(op, false, existing);
        } else {
            // Wrong owner: re-resolve and retry.
            self.retry_from_lookup(now, op);
        }
    }

    /// A `Fence` arrived; we should be the owner of the fenced key.
    pub(crate) fn on_fence(&mut self, _now: Time, op: OpId, key: Id, floor: u64, origin: NodeRef) {
        if !self.joined || !self.is_responsible(key) {
            // Retryable refusal (`current: 0` — real floors are ≥ 1):
            // ownership moved; the origin re-resolves.
            self.send(
                origin.addr,
                ChordMsg::FenceAck {
                    op,
                    ok: false,
                    current: 0,
                    occupied: false,
                },
            );
            return;
        }
        let (ok, current) = match self.store.raise_fence(key, floor, origin.id.0) {
            Ok(()) => (true, floor),
            Err(cur) => (false, cur),
        };
        let occupied = self.store.get_primary(key).is_some();
        self.send(
            origin.addr,
            ChordMsg::FenceAck {
                op,
                ok,
                current,
                occupied,
            },
        );
    }

    /// Our earlier `Fence` was answered.
    pub(crate) fn on_fence_ack(
        &mut self,
        now: Time,
        op: OpId,
        ok: bool,
        current: u64,
        occupied: bool,
    ) {
        let is_fence = matches!(
            self.ops.get(&op).map(|s| &s.kind),
            Some(OpKind::Fence { .. })
        );
        if !is_fence {
            return; // late duplicate
        }
        if ok || current > 0 {
            // Definitive: the floor is in force, or a rival's higher (or
            // equal, different-origin) floor already is.
            self.finish_fence(op, ok, current, occupied);
        } else {
            // Wrong owner: re-resolve and retry.
            self.retry_from_lookup(now, op);
        }
    }

    /// A `Get` arrived. Serve from primary or replica bucket; flag whether
    /// our answer is authoritative (we own the key).
    pub(crate) fn on_get(&mut self, _now: Time, op: OpId, key: Id, origin: NodeRef) {
        let value = self.store.get(key).cloned();
        let authoritative = self.joined && self.is_responsible(key);
        self.send(
            origin.addr,
            ChordMsg::GetReply {
                op,
                value,
                authoritative,
            },
        );
    }

    /// Our earlier `Get` was answered.
    pub(crate) fn on_get_reply(
        &mut self,
        now: Time,
        op: OpId,
        value: Option<Bytes>,
        authoritative: bool,
    ) {
        let is_get = matches!(self.ops.get(&op).map(|s| &s.kind), Some(OpKind::Get { .. }));
        if !is_get {
            return;
        }
        if value.is_some() || authoritative {
            self.ops.remove(&op);
            self.emit(ChordEvent::GetDone {
                op,
                value,
                ok: true,
            });
        } else {
            self.retry_from_lookup(now, op);
        }
    }
}
