//! Tunables for the Chord layer.

use simnet::Duration;

/// How `tick_replicate` ships backup copies to the storage successors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Legacy full push: on every `store_version` bump, re-send the whole
    /// primary item set to each successor. Simple, correct, and O(store)
    /// bytes per change — retained as the drift-comparison baseline.
    FullPush,
    /// Merkle-diff anti-entropy: exchange a range root, descend only into
    /// subtrees that differ, and ship exactly the records the replica
    /// proved missing or stale (see `chord::sync`).
    MerkleDiff,
}

/// Chord protocol parameters.
///
/// Defaults are sized for the LAN latency model (0.5–2 ms one-way); the
/// experiment harness scales `op_timeout` up for WAN runs.
#[derive(Clone, Debug)]
pub struct ChordConfig {
    /// Successor-list length `r` (robustness to `r-1` simultaneous failures).
    pub succ_list_len: usize,
    /// Number of successor nodes holding backup copies of each stored item
    /// (the paper's Log-Peers-Succ / Master-key-Succ redundancy).
    pub storage_replicas: usize,
    /// Period of the stabilize round (successor pointer repair).
    pub stabilize_every: Duration,
    /// Period of finger repair (one finger per round, round-robin).
    pub fix_fingers_every: Duration,
    /// Period of the predecessor liveness probe.
    pub check_pred_every: Duration,
    /// Period of the replica push (storage anti-entropy).
    pub replicate_every: Duration,
    /// Timeout for any single request/response exchange.
    pub op_timeout: Duration,
    /// Retries for lookups / puts / gets before reporting failure.
    pub max_attempts: u32,
    /// Routing loop guard: lookups exceeding this hop count are dropped.
    pub max_hops: u32,
    /// How long a node observed to time out stays blacklisted from routing
    /// decisions.
    pub suspect_ttl: Duration,
    /// Consecutive liveness-probe losses before a ring neighbour
    /// (predecessor or successor) is declared failed. A single lost ping
    /// or stabilize reply must NOT drop a live neighbour: under message
    /// loss that splits the ring's ownership view, two nodes can both
    /// believe they own a key, and the storage layer's first-writer
    /// conflict detection is blind across the split (it almost never
    /// fires on a clean run, so the threshold costs nothing there).
    pub fail_threshold: u32,
    /// Replica-synchronization protocol (see [`ReplicationMode`]).
    pub replication_mode: ReplicationMode,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            succ_list_len: 4,
            storage_replicas: 2,
            stabilize_every: Duration::from_millis(250),
            fix_fingers_every: Duration::from_millis(100),
            check_pred_every: Duration::from_millis(500),
            replicate_every: Duration::from_millis(1_000),
            op_timeout: Duration::from_millis(400),
            max_attempts: 4,
            max_hops: 3 * 64,
            suspect_ttl: Duration::from_secs(4),
            fail_threshold: 3,
            replication_mode: ReplicationMode::MerkleDiff,
        }
    }
}

impl ChordConfig {
    /// Scale all timeouts/periods for a slower (e.g. WAN) network where the
    /// one-way latency is roughly `factor`× the LAN model.
    pub fn scaled(mut self, factor: u64) -> Self {
        self.stabilize_every = self.stabilize_every * factor;
        self.fix_fingers_every = self.fix_fingers_every * factor;
        self.check_pred_every = self.check_pred_every * factor;
        self.replicate_every = self.replicate_every * factor;
        self.op_timeout = self.op_timeout * factor;
        self.suspect_ttl = self.suspect_ttl * factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ChordConfig::default();
        assert!(c.succ_list_len >= 2);
        assert!(c.max_attempts >= 2);
        assert!(c.op_timeout > Duration::ZERO);
    }

    #[test]
    fn scaling_multiplies_timeouts() {
        let c = ChordConfig::default().scaled(10);
        assert_eq!(c.op_timeout, Duration::from_millis(4_000));
        assert_eq!(c.stabilize_every, Duration::from_millis(2_500));
    }
}
