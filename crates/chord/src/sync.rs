//! Merkle-diff anti-entropy for replica synchronization.
//!
//! The legacy replica push (`ReplicationMode::FullPush`) re-ships a node's
//! *entire* primary item set to each storage successor on every
//! `store_version` bump — O(store) bytes per change, and the single
//! biggest wire consumer in every benchmark scenario. This module replaces
//! it with content-addressed set reconciliation in the spirit of the
//! Merkle-tree log-savings construction of Barontini (arXiv:2110.02103)
//! and the structural-sharing prolly-tree design: the owner summarizes its
//! primary range as a fixed-shape Merkle tree, the replica compares
//! digests, and only the subtrees that differ are expanded.
//!
//! ## Tree shape
//!
//! The 2^64 key ring is cut into [`BUCKETS`] = 256 leaf buckets by the top
//! byte of the key ([`bucket_of`]), grouped 16-per-node into one interior
//! level, with a single root above — a fixed-shape radix-16 tree of depth
//! 2. Empty buckets are omitted everywhere, so the digests cover exactly
//! the keys present:
//!
//! * entry: `SHA-1(0x02 ‖ key-LE ‖ value)` ([`entry_digest`]);
//! * leaf bucket: the store's Merkle root over its entry digests in
//!   ascending key order ([`bucket_digest`], reusing [`crate::merkle`] —
//!   the same domain-separated tree the durable log store checkpoints
//!   with);
//! * interior/root: `SHA-1(0x03 ‖ depth ‖ prefix-LE ‖ (child-index ‖
//!   digest)*)` over the non-empty children ([`interior_digest`]);
//! * an empty range has the fixed root `SHA-1("p2p-ltr/sync-empty")`.
//!
//! A single put or delete dirties one bucket; [`crate::storage::Storage`]
//! caches per-bucket digests and recomputes only the dirtied path, so the
//! steady-state tick costs one cached root comparison, not a rehash.
//!
//! ## Protocol
//!
//! Three phases over four messages, owner-driven, restartable at any
//! point:
//!
//! 1. **Root** — the owner sends `SyncRoot { ver, from, to, root }` for
//!    its primary range `(pred, me]`. The replica compares against its own
//!    summary (union view: primary-preferred, covering the promotion
//!    window) over the same range; equal roots ack immediately — the
//!    steady-state cost of a round is this ~45-byte exchange.
//! 2. **Descent** — on mismatch the replica walks the tree with
//!    `SyncDiff { wants }` / `SyncNodes` rounds (root → 16 interior nodes
//!    → leaf listings), descending only into children whose digests
//!    differ. Leaf listings carry per-key entry digests; from them the
//!    replica learns which keys are missing/stale (`need`) and which of
//!    its replica-bucket keys the owner no longer has (deleted — pruned
//!    locally, never touching the replica's own primary bucket).
//! 3. **Transfer** — the owner answers `need` with a `Replicate` carrying
//!    exactly those records. When the replica's recomputed root matches
//!    the session root it sends `SyncAck { ver }`, and only then does the
//!    owner advance its `replicated_to` cursor — a lost message anywhere
//!    simply leaves the cursor behind, and the next replicate tick
//!    restarts the round (the legacy full push marked the cursor *before*
//!    sending, so a lossy link silently lost the update until the next
//!    version bump).
//!
//! Every message echoes the owner's `store_version` (`ver`); stale rounds
//! are discarded on both sides. If the owner's store mutates mid-descent,
//! the replica converges toward the new contents, the final root check
//! against the old session root fails, and the round restarts cheaply at
//! the next tick.

use std::collections::{BTreeMap, BTreeSet};

use crate::id::Id;
use crate::merkle;
use crate::msg::{ChordMsg, NodeRef};
use crate::sha1::{sha1, Digest, Sha1};
use crate::storage::SyncView;
use simnet::NodeId;

/// Number of leaf buckets (the top byte of the key).
pub const BUCKETS: usize = 256;
/// Bits below the bucket number.
pub const BUCKET_SHIFT: u32 = 56;
/// Mask of the in-bucket key bits.
pub const BUCKET_SPAN_MASK: u64 = (1u64 << BUCKET_SHIFT) - 1;
/// Tree depth of a leaf-bucket coordinate in `SyncDiff::wants`.
pub const LEAF_DEPTH: u8 = 2;

/// Domain prefixes for the sync digests, disjoint from the generic tree's
/// leaf/node prefixes (0x00/0x01 in [`crate::merkle`]).
const ENTRY_PREFIX: u8 = 0x02;
const INTERIOR_PREFIX: u8 = 0x03;

/// Leaf bucket holding `key`.
#[inline]
pub fn bucket_of(key: Id) -> u32 {
    (key.0 >> BUCKET_SHIFT) as u32
}

/// Is bucket `b`'s entire key span contained in the arc `(from, to]`?
/// Only then may a cached whole-bucket digest stand in for the
/// range-filtered one. Conservative: a misclassification as "partial"
/// merely costs a recompute, never correctness — so the degenerate
/// whole-ring arc (`from == to`) intentionally fails the third clause
/// for `from`'s own bucket.
pub fn bucket_covered(bucket: u32, from: Id, to: Id) -> bool {
    let lo = Id((bucket as u64) << BUCKET_SHIFT);
    let hi = Id(lo.0 | BUCKET_SPAN_MASK);
    // Both endpoints inside the arc, and the arc's excluded point `from`
    // not inside the bucket span (the span is contiguous and never wraps,
    // so these three checks are exact).
    lo.in_half_open(from, to) && hi.in_half_open(from, to) && bucket_of(from) != bucket
}

/// Digest of an empty range.
pub fn empty_digest() -> Digest {
    sha1(b"p2p-ltr/sync-empty")
}

/// Content digest of one stored entry.
pub fn entry_digest(key: Id, value: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(&[ENTRY_PREFIX]);
    h.update(&key.0.to_le_bytes());
    h.update(value);
    h.finalize()
}

/// Digest of one leaf bucket: the generic Merkle root over its entry
/// digests (which must be in ascending key order, as
/// [`crate::storage::Storage::sync_leaf`] returns them).
pub fn bucket_digest(entries: &[(Id, Digest)]) -> Digest {
    let ds: Vec<Digest> = entries.iter().map(|(_, d)| *d).collect();
    merkle::root_of_entry_hashes(&ds)
}

/// Digest of an interior node (or the root, at depth 0) from its
/// non-empty children.
pub fn interior_digest(depth: u8, prefix: u32, children: &[(u8, Digest)]) -> Digest {
    let mut h = Sha1::new();
    h.update(&[INTERIOR_PREFIX, depth]);
    h.update(&prefix.to_le_bytes());
    for (i, d) in children {
        h.update(&[*i]);
        h.update(d);
    }
    h.finalize()
}

/// Children of the tree node at `(depth, prefix)`, computed from the flat
/// list of non-empty `(bucket, digest)` pairs (ascending bucket order).
/// Depth 0 is the root (its children are the 16 interior nodes, index =
/// `bucket >> 4`); depth 1 children are leaf buckets (index = low nibble).
pub fn children_of(pairs: &[(u32, Digest)], depth: u8, prefix: u32) -> Vec<(u8, Digest)> {
    match depth {
        0 => {
            let mut out = Vec::new();
            let mut idx = 0;
            while idx < pairs.len() {
                let group = pairs[idx].0 >> 4;
                let mut kids = Vec::new();
                while idx < pairs.len() && pairs[idx].0 >> 4 == group {
                    kids.push(((pairs[idx].0 & 0xF) as u8, pairs[idx].1));
                    idx += 1;
                }
                out.push((group as u8, interior_digest(1, group, &kids)));
            }
            out
        }
        1 => pairs
            .iter()
            .filter(|(b, _)| b >> 4 == prefix)
            .map(|(b, d)| ((b & 0xF) as u8, *d))
            .collect(),
        _ => Vec::new(),
    }
}

/// Root digest over the whole range summary.
pub fn range_root(pairs: &[(u32, Digest)]) -> Digest {
    if pairs.is_empty() {
        empty_digest()
    } else {
        interior_digest(0, 0, &children_of(pairs, 0, 0))
    }
}

/// Owner-side state of one in-flight sync round with one replica. The
/// range and version are pinned at round start: descent answers always
/// describe the range the `SyncRoot` advertised, and the cursor advance
/// on ack is exactly the pinned version.
#[derive(Clone, Copy, Debug)]
pub struct SyncOut {
    /// `store_version` the round's root summarizes.
    pub ver: u64,
    /// Range start, exclusive.
    pub from: Id,
    /// Range end, inclusive.
    pub to: Id,
}

/// Replica-side state of one in-flight sync round with one owner.
#[derive(Clone, Copy, Debug)]
pub struct SyncIn {
    /// Round version echoed in every message.
    pub ver: u64,
    /// Range start, exclusive.
    pub from: Id,
    /// Range end, inclusive.
    pub to: Id,
    /// The owner's advertised root — the convergence target.
    pub root: Digest,
}

impl crate::node::ChordNode {
    /// Merkle-mode replicate tick: open (or restart) a sync round toward
    /// every storage successor whose cursor is behind `store_version`.
    pub(crate) fn tick_replicate_merkle(&mut self) {
        let version = self.store_version;
        let succs: Vec<NodeRef> = self
            .succs
            .iter()
            .filter(|s| s.id != self.me.id)
            .take(self.cfg.storage_replicas)
            .copied()
            .collect();
        if succs.is_empty() || self.store.primary_len() == 0 {
            return;
        }
        // With no (or a self-pointing) predecessor we would claim the arc
        // (me, me] — the whole ring — and a replica comparing against that
        // range would prune every replica it holds for other owners. Wait
        // for stabilization to link us in; full push had no deletions, so
        // it never needed this guard.
        let pred = match self.pred {
            Some(p) if p.id != self.me.id => p,
            _ => return,
        };
        let (from, to) = (pred.id, self.me.id);
        let pairs = self.store.sync_bucket_digests(SyncView::Primary, from, to);
        let root = range_root(&pairs);
        for s in succs {
            if self.replicated_to.get(&s.addr) == Some(&version) {
                continue;
            }
            self.sync_out.insert(
                s.addr,
                SyncOut {
                    ver: version,
                    from,
                    to,
                },
            );
            self.send(
                s.addr,
                ChordMsg::SyncRoot {
                    ver: version,
                    from,
                    to,
                    root,
                },
            );
        }
    }

    /// Replica: an owner opened a sync round over `(from, to]`.
    pub(crate) fn on_sync_root(&mut self, src: NodeId, ver: u64, from: Id, to: Id, root: Digest) {
        self.sync_in.insert(
            src,
            SyncIn {
                ver,
                from,
                to,
                root,
            },
        );
        self.advance_sync(src, true);
    }

    /// Replica: compare our summary against the session root; ack when
    /// they match, otherwise (at round start) open the descent.
    pub(crate) fn advance_sync(&mut self, src: NodeId, descend: bool) {
        let sess = match self.sync_in.get(&src) {
            Some(s) => *s,
            None => return,
        };
        let pairs = self
            .store
            .sync_bucket_digests(SyncView::Union, sess.from, sess.to);
        if range_root(&pairs) == sess.root {
            self.sync_in.remove(&src);
            self.send(src, ChordMsg::SyncAck { ver: sess.ver });
        } else if descend {
            self.send(
                src,
                ChordMsg::SyncDiff {
                    ver: sess.ver,
                    wants: vec![(0, 0)],
                    need: Vec::new(),
                },
            );
        }
        // On mismatch without a descent request (owner mutated
        // mid-round), the round stalls and the owner's next replicate
        // tick restarts it with a fresh root.
    }

    /// Owner: the replica asks for tree nodes to be expanded and/or for
    /// the records it proved missing or stale.
    pub(crate) fn on_sync_diff(
        &mut self,
        src: NodeId,
        ver: u64,
        wants: Vec<(u8, u32)>,
        need: Vec<Id>,
    ) {
        let sess = match self.sync_out.get(&src) {
            Some(s) if s.ver == ver => *s,
            _ => return,
        };
        let pairs = self
            .store
            .sync_bucket_digests(SyncView::Primary, sess.from, sess.to);
        let wants: BTreeSet<(u8, u32)> = wants.into_iter().collect();
        let mut nodes = Vec::new();
        let mut leaves = Vec::new();
        for (depth, prefix) in wants {
            match depth {
                0 => nodes.push((0u8, 0u32, children_of(&pairs, 0, 0))),
                1 if prefix < 16 => nodes.push((1u8, prefix, children_of(&pairs, 1, prefix))),
                // A leaf listing may be empty — that is the signal that
                // lets the replica prune a bucket the owner dropped.
                _ if depth == LEAF_DEPTH && prefix < BUCKETS as u32 => leaves.push((
                    prefix,
                    self.store
                        .sync_leaf(SyncView::Primary, prefix, sess.from, sess.to),
                )),
                _ => {}
            }
        }
        let need: BTreeSet<Id> = need
            .into_iter()
            .filter(|k| k.in_half_open(sess.from, sess.to))
            .collect();
        let mut items = Vec::with_capacity(need.len());
        for key in need {
            if let Some(v) = self.store.get_primary(key) {
                items.push((key, v.clone()));
            }
        }
        if !(nodes.is_empty() && leaves.is_empty()) {
            self.send(src, ChordMsg::SyncNodes { ver, nodes, leaves });
        }
        if !items.is_empty() {
            self.send(src, ChordMsg::Replicate { items });
        }
    }

    /// Replica: digested tree expansions from the owner. Diff each level
    /// against our own summary, descend where digests differ, collect
    /// missing/stale keys from leaf listings, and prune replica-bucket
    /// keys the owner no longer holds.
    pub(crate) fn on_sync_nodes(
        &mut self,
        src: NodeId,
        ver: u64,
        nodes: Vec<(u8, u32, Vec<(u8, Digest)>)>,
        leaves: Vec<(u32, Vec<(Id, Digest)>)>,
    ) {
        let sess = match self.sync_in.get(&src) {
            Some(s) if s.ver == ver => *s,
            _ => return,
        };
        let pairs = self
            .store
            .sync_bucket_digests(SyncView::Union, sess.from, sess.to);
        let mut wants: BTreeSet<(u8, u32)> = BTreeSet::new();
        let mut need: BTreeSet<Id> = BTreeSet::new();
        for (depth, prefix, theirs) in nodes {
            if depth > 1 || (depth == 1 && prefix >= 16) {
                continue;
            }
            let mine: BTreeMap<u8, Digest> =
                children_of(&pairs, depth, prefix).into_iter().collect();
            let theirs: BTreeMap<u8, Digest> = theirs.into_iter().collect();
            let indices: BTreeSet<u8> = mine.keys().chain(theirs.keys()).copied().collect();
            for i in indices {
                // Differing on either side — including present on exactly
                // one — descends one level; depth-1 children are leaves.
                if mine.get(&i) != theirs.get(&i) {
                    let child = match depth {
                        0 => i as u32,
                        _ => (prefix << 4) | i as u32,
                    };
                    wants.insert((depth + 1, child));
                }
            }
        }
        for (bucket, theirs) in leaves {
            if bucket >= BUCKETS as u32 {
                continue;
            }
            let mine: BTreeMap<Id, Digest> = self
                .store
                .sync_leaf(SyncView::Union, bucket, sess.from, sess.to)
                .into_iter()
                .collect();
            let theirs: BTreeMap<Id, Digest> = theirs.into_iter().collect();
            for (k, d) in &theirs {
                if k.in_half_open(sess.from, sess.to) && mine.get(k) != Some(d) {
                    need.insert(*k);
                }
            }
            for k in mine.keys() {
                // The owner's listing is authoritative for its range: a
                // key we hold that it lacks was deleted (e.g. GC'd).
                // Prune only our replica copy — our own primary bucket is
                // never deleted from; overlapping ownership claims heal
                // via ring repair, not data loss.
                if !theirs.contains_key(k) && self.store.get_primary(*k).is_none() {
                    self.store.remove_replica(*k);
                }
            }
        }
        if wants.is_empty() && need.is_empty() {
            self.advance_sync(src, false);
        } else {
            self.send(
                src,
                ChordMsg::SyncDiff {
                    ver,
                    wants: wants.into_iter().collect(),
                    need: need.into_iter().collect(),
                },
            );
        }
    }

    /// Owner: the replica proved its contents match version `ver`'s root.
    /// Only now does the `replicated_to` cursor advance — under loss the
    /// cursor stays behind and the next tick retries, where the legacy
    /// path (which marks before sending) would silently skip the retry
    /// until the next version bump.
    pub(crate) fn on_sync_ack(&mut self, src: NodeId, ver: u64) {
        match self.sync_out.get(&src) {
            Some(s) if s.ver == ver => {}
            _ => return,
        }
        self.sync_out.remove(&src);
        self.replicated_to.insert(src, ver);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(b: u8) -> Digest {
        [b; 20]
    }

    #[test]
    fn bucket_of_is_top_byte() {
        assert_eq!(bucket_of(Id(0)), 0);
        assert_eq!(bucket_of(Id(BUCKET_SPAN_MASK)), 0);
        assert_eq!(bucket_of(Id(1u64 << 56)), 1);
        assert_eq!(bucket_of(Id(u64::MAX)), 255);
    }

    #[test]
    fn bucket_covered_is_sound() {
        // Exhaustive-ish cross-check against the definition: covered must
        // imply every key in the bucket span lies in the arc. Probe the
        // span's endpoints and midpoint for a grid of arcs.
        let arcs = [
            (Id(0), Id(u64::MAX)),
            (Id(u64::MAX), Id(0)),
            (Id(3u64 << 56), Id(7u64 << 56)),
            (Id((200u64 << 56) | 5), Id(9u64 << 56)), // wraps
            (Id(42), Id(42)),                         // whole ring
            (Id(5u64 << 56), Id((5u64 << 56) | 99)),  // tiny arc inside one bucket
        ];
        for (from, to) in arcs {
            for b in 0u32..256 {
                let lo = (b as u64) << BUCKET_SHIFT;
                let probes = [lo, lo | (BUCKET_SPAN_MASK / 2), lo | BUCKET_SPAN_MASK];
                if bucket_covered(b, from, to) {
                    for p in probes {
                        assert!(
                            Id(p).in_half_open(from, to),
                            "bucket {b} claimed covered by ({from:?},{to:?}] but {p:#x} outside"
                        );
                    }
                }
            }
        }
        // And it is not vacuous: interior buckets of a wide arc do get
        // the cache path.
        assert!(bucket_covered(5, Id(3u64 << 56), Id(7u64 << 56)));
        assert!(!bucket_covered(3, Id(3u64 << 56), Id(7u64 << 56)));
    }

    #[test]
    fn entry_digest_binds_key_and_value() {
        let base = entry_digest(Id(1), b"v");
        assert_ne!(entry_digest(Id(2), b"v"), base);
        assert_ne!(entry_digest(Id(1), b"w"), base);
        assert_eq!(entry_digest(Id(1), b"v"), base);
    }

    #[test]
    fn empty_range_root_is_sentinel() {
        assert_eq!(range_root(&[]), empty_digest());
        assert_ne!(range_root(&[(0, d(1))]), empty_digest());
    }

    #[test]
    fn children_group_buckets_by_high_nibble() {
        // Buckets 0x01, 0x0F (group 0), 0x12 (group 1), 0xF0 (group 15).
        let pairs = vec![(0x01, d(1)), (0x0F, d(2)), (0x12, d(3)), (0xF0, d(4))];
        let root_kids = children_of(&pairs, 0, 0);
        let groups: Vec<u8> = root_kids.iter().map(|(i, _)| *i).collect();
        assert_eq!(groups, vec![0, 1, 15]);
        let g0 = children_of(&pairs, 1, 0);
        assert_eq!(
            g0.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0x1, 0xF]
        );
        let g1 = children_of(&pairs, 1, 1);
        assert_eq!(g1, vec![(0x2, d(3))]);
        assert!(children_of(&pairs, 1, 7).is_empty());
        // Interior digests commit to their children: group 0's digest in
        // the root listing matches recomputing it from the leaf pairs.
        let (_, g0_digest) = root_kids[0];
        assert_eq!(g0_digest, interior_digest(1, 0, &g0));
    }

    #[test]
    fn range_root_moves_with_any_bucket() {
        let pairs = vec![(3u32, d(1)), (130, d(2))];
        let base = range_root(&pairs);
        assert_ne!(range_root(&[(3, d(9)), (130, d(2))]), base, "changed");
        assert_ne!(range_root(&[(3, d(1))]), base, "dropped");
        assert_ne!(range_root(&[(4, d(1)), (130, d(2))]), base, "moved");
        assert_eq!(range_root(&pairs.clone()), base);
    }

    #[test]
    fn depth_domains_are_separated() {
        // A one-child interior node at depth 1 differs from the same
        // child listed at the root: depth and prefix are hashed in.
        let kid = [(0u8, d(5))];
        assert_ne!(interior_digest(0, 0, &kid), interior_digest(1, 0, &kid));
        assert_ne!(interior_digest(1, 0, &kid), interior_digest(1, 1, &kid));
    }
}
