//! Stabilization, failure detection, finger repair, and churn handoff.
//!
//! The paper implemented "our own successor management and stabilization
//! protocols on top of Open Chord … since the ones proposed by Open Chord
//! are not suited to P2P-LTR". The LTR-specific requirement is that
//! responsibility changes are *observable*: every predecessor change is
//! surfaced as an event so the timestamping layer can hand over `last-ts`
//! state, and storage moves with responsibility.

use crate::events::ChordEvent;
use crate::id::Id;
use crate::msg::{ChordMsg, NodeRef};
use crate::node::{ChordNode, OpKind};
use bytes::Bytes;
use simnet::{NodeId, Time};

impl ChordNode {
    /// Periodic stabilize round: verify the successor pointer and notify.
    pub(crate) fn tick_stabilize(&mut self, now: Time) {
        self.arm(
            self.cfg.stabilize_every,
            crate::events::ChordTimer::Stabilize,
        );
        if !self.joined {
            return;
        }
        self.prune_suspects(now);
        let succ = self.successor();
        if succ.id == self.me.id {
            // Singleton: if someone notified us, they become our successor
            // (the classic two-node bootstrap step, handled locally).
            if let Some(p) = self.pred {
                if p.id != self.me.id {
                    self.integrate_successor(p);
                    let new_succ = self.successor();
                    self.send(new_succ.addr, ChordMsg::Notify { candidate: self.me });
                }
            }
            return;
        }
        let op = self.new_op(OpKind::StabilizeGetPred { asked: succ });
        self.send(succ.addr, ChordMsg::GetPredecessor { op });
        self.arm_op_timeout(op);
    }

    /// Stabilize response from our successor.
    pub(crate) fn on_predecessor_is(
        &mut self,
        now: Time,
        op: crate::msg::OpId,
        pred: Option<NodeRef>,
        succ_list: Vec<NodeRef>,
    ) {
        let asked = match self.ops.remove(&op) {
            Some(s) => match s.kind {
                OpKind::StabilizeGetPred { asked } => asked,
                _ => return,
            },
            None => return,
        };
        // The round completed: the successor answered.
        self.succ_fails = 0;
        // Adopt the successor's predecessor if it sits between us.
        let mut new_succ = asked;
        if let Some(p) = pred {
            if p.id.in_open(self.me.id, asked.id) && !self.is_suspect(p.addr, now) {
                new_succ = p;
            }
        }
        // Rebuild the successor list: entry point first, then the
        // responder's list, stopping at ourselves (small rings wrap).
        let mut rebuilt: Vec<NodeRef> = Vec::with_capacity(self.cfg.succ_list_len + 2);
        let push_unique = |r: NodeRef, v: &mut Vec<NodeRef>| {
            if r.id != self.me.id && !v.iter().any(|x| x.id == r.id) {
                v.push(r);
            }
        };
        push_unique(new_succ, &mut rebuilt);
        if new_succ.id == asked.id {
            for s in &succ_list {
                if s.id == self.me.id {
                    break;
                }
                push_unique(*s, &mut rebuilt);
            }
        } else {
            push_unique(asked, &mut rebuilt);
            for s in &succ_list {
                if s.id == self.me.id {
                    break;
                }
                push_unique(*s, &mut rebuilt);
            }
        }
        rebuilt.retain(|s| !self.is_suspect(s.addr, now));
        rebuilt.truncate(self.cfg.succ_list_len);
        if rebuilt.is_empty() {
            rebuilt.push(self.me);
        }
        self.succs = rebuilt;
        let head = self.successor();
        if head.id != self.me.id {
            self.send(head.addr, ChordMsg::Notify { candidate: self.me });
        }
    }

    /// `Notify{candidate}`: maybe adopt a new predecessor, emitting the
    /// responsibility-change event and handing over the keys the candidate
    /// now owns.
    pub(crate) fn on_notify(&mut self, _now: Time, candidate: NodeRef) {
        if candidate.id == self.me.id {
            return;
        }
        let adopt = match self.pred {
            None => true,
            Some(p) => candidate.id.in_open(p.id, self.me.id),
        };
        if !adopt {
            return;
        }
        let old = self.pred;
        self.pred = Some(candidate);
        self.pred_fails = 0;
        // Any replica we hold for our own (new) range should be primary.
        let promoted = self
            .store
            .promote_replicas_in_range(candidate.id, self.me.id);
        if promoted > 0 {
            self.store_version += 1;
        }
        // Hand over the arc the candidate is now responsible for:
        // (old_pred, candidate]; with no previous predecessor, everything
        // outside our own new range, i.e. (me, candidate].
        let from = old.map_or(self.me.id, |p| p.id);
        let items = self.store.extract_primary_range(from, candidate.id);
        if !items.is_empty() {
            self.store_version += 1;
            self.send(candidate.addr, ChordMsg::TransferKeys { items });
        }
        self.emit(ChordEvent::PredecessorChanged {
            old,
            new: Some(candidate),
        });
    }

    /// Periodic predecessor liveness probe.
    pub(crate) fn tick_check_predecessor(&mut self, _now: Time) {
        self.arm(
            self.cfg.check_pred_every,
            crate::events::ChordTimer::CheckPredecessor,
        );
        if !self.joined {
            return;
        }
        if let Some(p) = self.pred {
            if p.id == self.me.id {
                return;
            }
            let op = self.new_op(OpKind::PingPred { target: p });
            self.send(p.addr, ChordMsg::Ping { op });
            self.arm_op_timeout(op);
        }
    }

    /// Periodic finger repair: one finger per round, round-robin.
    pub(crate) fn tick_fix_fingers(&mut self, now: Time) {
        self.arm(
            self.cfg.fix_fingers_every,
            crate::events::ChordTimer::FixFingers,
        );
        if !self.joined || self.successor().id == self.me.id {
            return;
        }
        let idx = self.next_finger;
        self.next_finger = (self.next_finger + 1) % crate::id::M;
        let target = self.me.id.plus_pow2(idx);
        let op = self.new_op(OpKind::FingerLookup { idx });
        self.issue_lookup(now, op, target, 0);
        self.arm_op_timeout(op);
    }

    /// Periodic replica synchronization tick. Sweeps *orphaned* primaries
    /// back to their true owners, then runs the configured replication
    /// protocol: legacy full push, or Merkle-diff anti-entropy
    /// (see [`crate::sync`]).
    pub(crate) fn tick_replicate(&mut self, now: Time) {
        self.arm(
            self.cfg.replicate_every,
            crate::events::ChordTimer::Replicate,
        );
        if !self.joined {
            return;
        }
        self.rehome_orphans(now);
        match self.cfg.replication_mode {
            crate::config::ReplicationMode::FullPush => self.tick_replicate_full(),
            crate::config::ReplicationMode::MerkleDiff => self.tick_replicate_merkle(),
        }
    }

    /// Legacy full push: send our entire primary item set to the first
    /// `storage_replicas` successors, skipping those already current.
    /// Note the cursor is advanced *before* the send — a lost push is not
    /// retried until the next `store_version` bump. Kept byte-for-byte so
    /// the drift baseline can compare modes; the Merkle path advances the
    /// cursor on ack instead.
    fn tick_replicate_full(&mut self) {
        let version = self.store_version;
        let succs: Vec<NodeRef> = self
            .succs
            .iter()
            .filter(|s| s.id != self.me.id)
            .take(self.cfg.storage_replicas)
            .copied()
            .collect();
        if succs.is_empty() {
            return;
        }
        let items = self.store.primary_items();
        if items.is_empty() {
            return;
        }
        for s in succs {
            if self.replicated_to.get(&s.addr) == Some(&version) {
                continue;
            }
            self.replicated_to.insert(s.addr, version);
            self.send(
                s.addr,
                ChordMsg::Replicate {
                    items: items.clone(),
                },
            );
        }
    }

    /// Re-home orphaned primaries: items we hold in the primary bucket for
    /// ranges we do not own. They are stored-but-unreachable — reads are
    /// lookup-routed to the true owner, which misses — and arise when a
    /// put landed here while our ring view was split (e.g. under message
    /// loss we briefly believed our predecessor was gone). Re-insert each
    /// at the true owner with an ordinary first-writer put and demote our
    /// copy to a replica once acked. A node with a consistent ring view
    /// has no orphans, so a clean run never enters this path.
    fn rehome_orphans(&mut self, now: Time) {
        /// Puts started per sweep (orphans are rare; bound the burst).
        const MAX_REHOMES_PER_SWEEP: usize = 16;
        let orphans: Vec<(Id, Bytes)> = self
            .store
            .iter_primary()
            .filter(|(k, _)| !self.is_responsible(**k))
            .filter(|(k, _)| !self.rehoming_keys.contains(*k))
            .map(|(k, v)| (*k, v.clone()))
            .take(MAX_REHOMES_PER_SWEEP)
            .collect();
        for (key, value) in orphans {
            // Epoch-stamped records re-home with ranked arbitration so a
            // superseded copy can never displace (or spuriously conflict
            // with) a higher-ranked record at the true owner.
            let mode = if crate::storage::value_rank(&value) > 0 {
                crate::msg::PutMode::Ranked
            } else {
                crate::msg::PutMode::FirstWriter
            };
            let op = self.new_op(OpKind::Put {
                key,
                value,
                mode,
                owner: None,
            });
            self.rehoming.insert(op, key);
            self.rehoming_keys.insert(key);
            self.issue_lookup(now, op, key, 0);
            self.arm_op_timeout(op);
        }
    }

    /// Receive a replica push from a predecessor-side owner — the full
    /// set in legacy mode, exactly the proven-missing records during a
    /// Merkle sync round.
    pub(crate) fn on_replicate(&mut self, _now: Time, from: NodeId, items: Vec<(Id, Bytes)>) {
        let mut touched_primary = false;
        for (k, v) in items {
            if self.is_responsible(k) {
                // Responsibility already shifted to us: adopt as primary,
                // without clobbering anything newer we wrote ourselves.
                if self.store.get_primary(k).is_none() {
                    self.store.put_primary(k, v);
                    touched_primary = true;
                }
            } else {
                self.store.put_replica(k, v);
            }
        }
        if touched_primary {
            self.store_version += 1;
        }
        // During a Merkle round the transfer is the last phase: check
        // whether it brought us up to the session root and ack. (No
        // session — e.g. legacy mode — makes this a no-op.)
        if self.sync_in.contains_key(&from) {
            self.advance_sync(from, false);
        }
    }

    /// Receive a responsibility handoff (we own these now).
    pub(crate) fn on_transfer_keys(&mut self, _now: Time, items: Vec<(Id, Bytes)>) {
        let count = items.len();
        for (k, v) in items {
            self.store.put_primary(k, v);
        }
        if count > 0 {
            self.store_version += 1;
        }
        self.emit(ChordEvent::KeysReceived { count });
    }

    /// A graceful leaver handed us its primary items and its predecessor.
    pub(crate) fn on_leave_to_succ(
        &mut self,
        _now: Time,
        from: NodeId,
        pred_of_leaver: Option<NodeRef>,
        items: Vec<(Id, Bytes)>,
    ) {
        let count = items.len();
        for (k, v) in items {
            self.store.put_primary(k, v);
        }
        if count > 0 {
            self.store_version += 1;
        }
        let leaving_pred = self.pred.is_some_and(|p| p.addr == from);
        if leaving_pred || self.pred.is_none() {
            let old = self.pred;
            self.pred = pred_of_leaver.filter(|p| p.id != self.me.id);
            self.pred_fails = 0;
            if let Some(p) = self.pred {
                let promoted = self.store.promote_replicas_in_range(p.id, self.me.id);
                if promoted > 0 {
                    self.store_version += 1;
                }
            }
            self.emit(ChordEvent::PredecessorChanged {
                old,
                new: self.pred,
            });
        }
        self.emit(ChordEvent::KeysReceived { count });
    }

    /// A graceful leaver pointed us at its successor.
    pub(crate) fn on_leave_to_pred(&mut self, _now: Time, from: NodeId, succ_of_leaver: NodeRef) {
        self.succs.retain(|s| s.addr != from);
        self.integrate_successor(succ_of_leaver);
        if self.succs.is_empty() {
            self.succs.push(self.me);
        }
        let head = self.successor();
        if head.id != self.me.id {
            self.send(head.addr, ChordMsg::Notify { candidate: self.me });
        }
    }
}
