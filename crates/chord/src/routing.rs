//! Lookup routing: recursive `FindSuccessor` forwarding with a direct reply
//! to the origin, plus operation retry/timeout logic.

use bytes::Bytes;

use crate::events::ChordEvent;
use crate::id::Id;
use crate::msg::{ChordMsg, NodeRef, OpId, PutMode};
use crate::node::{ChordNode, OpKind};
use simnet::Time;

impl ChordNode {
    /// Start (or restart) the lookup phase of operation `op` for `target`.
    /// `attempt` selects the entry path: attempt 0 routes greedily through
    /// fingers; later attempts enter via successive successor-list entries,
    /// which guarantees progress while fingers are stale after churn.
    pub(crate) fn issue_lookup(&mut self, now: Time, op: OpId, target: Id, attempt: u32) {
        if attempt == 0 || self.succs.is_empty() {
            self.on_find_successor(now, op, target, self.me, 0);
        } else {
            let idx = ((attempt - 1) as usize) % self.succs.len();
            let via = self.succs[idx];
            if via.id == self.me.id {
                self.on_find_successor(now, op, target, self.me, 0);
            } else {
                self.send(
                    via.addr,
                    ChordMsg::FindSuccessor {
                        op,
                        target,
                        origin: self.me,
                        hops: 1,
                    },
                );
            }
        }
    }

    /// Handle a routed `FindSuccessor`, either answering the origin or
    /// forwarding one hop closer.
    pub(crate) fn on_find_successor(
        &mut self,
        now: Time,
        op: OpId,
        target: Id,
        origin: NodeRef,
        hops: u32,
    ) {
        if hops > self.cfg.max_hops {
            return; // loop guard: drop; the origin's timeout handles it
        }
        if !self.joined {
            return;
        }
        let succ = self.successor();
        // Singleton ring: we own everything.
        if succ.id == self.me.id {
            self.reply_found(origin, op, self.me, hops);
            return;
        }
        if target.in_half_open(self.me.id, succ.id) {
            self.reply_found(origin, op, succ, hops);
            return;
        }
        match self.closest_preceding_node(now, target) {
            Some(next) if next.id != self.me.id => {
                self.send(
                    next.addr,
                    ChordMsg::FindSuccessor {
                        op,
                        target,
                        origin,
                        hops: hops + 1,
                    },
                );
            }
            _ => {
                // No better hop known: our successor is the best answer.
                self.reply_found(origin, op, succ, hops);
            }
        }
    }

    fn reply_found(&mut self, origin: NodeRef, op: OpId, owner: NodeRef, hops: u32) {
        if origin.addr == self.me.addr {
            // Local shortcut: complete without a network round-trip.
            self.complete_lookup(Time::ZERO, op, owner, hops);
        } else {
            self.send(origin.addr, ChordMsg::FoundSuccessor { op, owner, hops });
        }
    }

    /// Greedy routing choice: the known node closest *before* `target`,
    /// skipping currently suspected nodes.
    pub(crate) fn closest_preceding_node(&self, now: Time, target: Id) -> Option<NodeRef> {
        let me = self.me.id;
        let mut best: Option<NodeRef> = None;
        let consider = |cand: NodeRef, best: &mut Option<NodeRef>| {
            if cand.id.in_open(me, target)
                && cand.addr != self.me.addr
                && !self.is_suspect(cand.addr, now)
            {
                let better = match *best {
                    None => true,
                    // Closer to target = larger clockwise distance from me.
                    Some(b) => me.distance_to(cand.id) > me.distance_to(b.id),
                };
                if better {
                    *best = Some(cand);
                }
            }
        };
        for f in self.fingers.iter().flatten() {
            consider(*f, &mut best);
        }
        for s in &self.succs {
            consider(*s, &mut best);
        }
        best
    }

    /// A lookup answer arrived (or was produced locally).
    pub(crate) fn on_found_successor(&mut self, now: Time, op: OpId, owner: NodeRef, hops: u32) {
        self.complete_lookup(now, op, owner, hops);
    }

    pub(crate) fn complete_lookup(&mut self, _now: Time, op: OpId, owner: NodeRef, hops: u32) {
        let state = match self.ops.get(&op) {
            Some(s) => s.clone(),
            None => return, // late duplicate answer
        };
        match state.kind {
            OpKind::Join { .. } => {
                self.ops.remove(&op);
                self.complete_join(owner);
            }
            OpKind::Lookup { .. } => {
                self.ops.remove(&op);
                self.total_lookup_hops += hops as u64;
                self.completed_lookups += 1;
                self.emit(ChordEvent::LookupDone { op, owner, hops });
            }
            OpKind::FingerLookup { idx } => {
                self.ops.remove(&op);
                self.fingers[idx] = Some(owner);
            }
            OpKind::Put {
                key, value, mode, ..
            } => {
                self.total_lookup_hops += hops as u64;
                self.completed_lookups += 1;
                if owner.addr == self.me.addr {
                    if let Some(k) = self.rehoming.remove(&op) {
                        // An orphan re-home resolved back to us: either
                        // responsibility genuinely returned, or the routing
                        // view and the predecessor-range test disagree
                        // mid-heal. Both ways the record must stay primary
                        // here — self-applying and then demoting (the normal
                        // re-home completion) would leave it with no primary
                        // anywhere in the ring. A later sweep retries once
                        // the views settle.
                        self.rehoming_keys.remove(&k);
                        self.ops.remove(&op);
                        return;
                    }
                    // We are the owner: apply locally, ack synchronously.
                    let (ok, existing) = self.apply_put_local(key, value, mode);
                    self.finish_put(op, ok, existing);
                } else {
                    if let Some(s) = self.ops.get_mut(&op) {
                        s.kind = OpKind::Put {
                            key,
                            value: value.clone(),
                            mode,
                            owner: Some(owner),
                        };
                    }
                    self.send(
                        owner.addr,
                        ChordMsg::Put {
                            op,
                            key,
                            value,
                            mode,
                            origin: self.me,
                        },
                    );
                    self.arm_op_timeout(op);
                }
            }
            OpKind::Get { key, .. } => {
                self.total_lookup_hops += hops as u64;
                self.completed_lookups += 1;
                if owner.addr == self.me.addr {
                    let value = self.store.get(key).cloned();
                    self.ops.remove(&op);
                    self.emit(ChordEvent::GetDone {
                        op,
                        value,
                        ok: true,
                    });
                } else {
                    if let Some(s) = self.ops.get_mut(&op) {
                        s.kind = OpKind::Get {
                            key,
                            owner: Some(owner),
                        };
                    }
                    self.send(
                        owner.addr,
                        ChordMsg::Get {
                            op,
                            key,
                            origin: self.me,
                        },
                    );
                    self.arm_op_timeout(op);
                }
            }
            OpKind::Fence { key, floor, .. } => {
                self.total_lookup_hops += hops as u64;
                self.completed_lookups += 1;
                if owner.addr == self.me.addr {
                    let origin = self.me.id.0;
                    let (ok, current) = match self.store.raise_fence(key, floor, origin) {
                        Ok(()) => (true, floor),
                        Err(cur) => (false, cur),
                    };
                    let occupied = self.store.get_primary(key).is_some();
                    self.finish_fence(op, ok, current, occupied);
                } else {
                    if let Some(s) = self.ops.get_mut(&op) {
                        s.kind = OpKind::Fence {
                            key,
                            floor,
                            owner: Some(owner),
                        };
                    }
                    self.send(
                        owner.addr,
                        ChordMsg::Fence {
                            op,
                            key,
                            floor,
                            origin: self.me,
                        },
                    );
                    self.arm_op_timeout(op);
                }
            }
            OpKind::StabilizeGetPred { .. } | OpKind::PingPred { .. } => {
                // These ops never go through lookups.
            }
        }
    }

    /// An operation's timeout fired. If the op is still pending, retry or
    /// fail it.
    pub(crate) fn on_op_timeout(&mut self, now: Time, op: OpId) {
        let state = match self.ops.get_mut(&op) {
            Some(s) => s,
            None => return, // completed before the timeout
        };
        state.attempts += 1;
        let attempts = state.attempts;
        let max = self.cfg.max_attempts;
        let kind = state.kind.clone();
        match kind {
            OpKind::Join { bootstrap } => {
                if attempts >= max {
                    self.ops.remove(&op);
                    self.emit(ChordEvent::JoinFailed);
                } else {
                    self.send(
                        bootstrap.addr,
                        ChordMsg::FindSuccessor {
                            op,
                            target: self.me.id,
                            origin: self.me,
                            hops: 0,
                        },
                    );
                    self.arm_op_timeout(op);
                }
            }
            OpKind::Lookup { target } => {
                if attempts >= max {
                    self.ops.remove(&op);
                    self.emit(ChordEvent::LookupFailed { op });
                } else {
                    self.issue_lookup(now, op, target, attempts);
                    self.arm_op_timeout(op);
                }
            }
            OpKind::FingerLookup { .. } => {
                // Fingers are repaired periodically; no retries.
                self.ops.remove(&op);
            }
            OpKind::Put {
                key,
                value,
                mode,
                owner,
            } => {
                if let Some(o) = owner {
                    self.mark_suspect(o.addr, now);
                }
                if attempts >= max {
                    self.finish_put(op, false, None);
                } else {
                    // Restart from the lookup phase; ownership may have moved.
                    if let Some(s) = self.ops.get_mut(&op) {
                        s.kind = OpKind::Put {
                            key,
                            value,
                            mode,
                            owner: None,
                        };
                    }
                    self.issue_lookup(now, op, key, attempts);
                    self.arm_op_timeout(op);
                }
            }
            OpKind::Get { key, owner } => {
                if let Some(o) = owner {
                    self.mark_suspect(o.addr, now);
                }
                if attempts >= max {
                    self.ops.remove(&op);
                    self.emit(ChordEvent::GetDone {
                        op,
                        value: None,
                        ok: false,
                    });
                } else {
                    if let Some(s) = self.ops.get_mut(&op) {
                        s.kind = OpKind::Get { key, owner: None };
                    }
                    self.issue_lookup(now, op, key, attempts);
                    self.arm_op_timeout(op);
                }
            }
            OpKind::Fence { key, floor, owner } => {
                if let Some(o) = owner {
                    self.mark_suspect(o.addr, now);
                }
                if attempts >= max {
                    self.finish_fence(op, false, 0, false);
                } else {
                    if let Some(s) = self.ops.get_mut(&op) {
                        s.kind = OpKind::Fence {
                            key,
                            floor,
                            owner: None,
                        };
                    }
                    self.issue_lookup(now, op, key, attempts);
                    self.arm_op_timeout(op);
                }
            }
            OpKind::StabilizeGetPred { asked } => {
                self.ops.remove(&op);
                // One lost reply must not drop a live successor: a split
                // ring view lets two nodes accept writes for the same key
                // range. Require consecutive losses (see
                // `ChordConfig::fail_threshold`).
                if self.successor().addr == asked.addr {
                    self.succ_fails += 1;
                    if self.succ_fails >= self.cfg.fail_threshold {
                        self.succ_fails = 0;
                        self.mark_suspect(asked.addr, now);
                        self.drop_successor(asked.addr);
                    }
                }
            }
            OpKind::PingPred { target } => {
                self.ops.remove(&op);
                if self.pred.is_some_and(|p| p.addr == target.addr) {
                    self.pred_fails += 1;
                    if self.pred_fails >= self.cfg.fail_threshold {
                        self.pred_fails = 0;
                        self.mark_suspect(target.addr, now);
                        let old = self.pred.take();
                        self.emit(ChordEvent::PredecessorChanged { old, new: None });
                    }
                }
            }
        }
    }

    /// Terminal point of every put op, whatever path ended it: report the
    /// outcome to the embedding — or, for an orphan re-home put (see
    /// `rehome_orphans`), absorb it here. On success (or a first-writer
    /// conflict, which means the true owner already arbitrates the key)
    /// the orphaned primary is demoted to a replica; on failure it stays
    /// primary so the next sweep retries. Re-home ops never surface as
    /// `PutDone` events. Routing every ending through this single helper
    /// is what guarantees the `rehoming` table cannot leak an entry —
    /// a leaked key would be excluded from all future sweeps.
    pub(crate) fn finish_put(&mut self, op: OpId, ok: bool, conflict: Option<Bytes>) {
        self.ops.remove(&op);
        if let Some(key) = self.rehoming.remove(&op) {
            self.rehoming_keys.remove(&key);
            // Responsibility may have returned to us while the re-home was
            // in flight (our predecessor died again): then the key is no
            // longer an orphan and must stay primary here.
            if (ok || conflict.is_some()) && !self.is_responsible(key) {
                if self.store.demote_to_replica(key) {
                    self.store_version += 1;
                }
            }
            return;
        }
        self.emit(ChordEvent::PutDone { op, ok, conflict });
    }

    /// Used by the storage protocol when a put/get reply indicates we asked
    /// the wrong owner (`retryable` failure): restart the lookup phase.
    pub(crate) fn retry_from_lookup(&mut self, now: Time, op: OpId) {
        let state = match self.ops.get_mut(&op) {
            Some(s) => s,
            None => return,
        };
        state.attempts += 1;
        let attempts = state.attempts;
        let max = self.cfg.max_attempts;
        let kind = state.kind.clone();
        match kind {
            OpKind::Put {
                key, value, mode, ..
            } => {
                if attempts >= max {
                    self.finish_put(op, false, None);
                } else {
                    if let Some(s) = self.ops.get_mut(&op) {
                        s.kind = OpKind::Put {
                            key,
                            value,
                            mode,
                            owner: None,
                        };
                    }
                    self.issue_lookup(now, op, key, attempts);
                    self.arm_op_timeout(op);
                }
            }
            OpKind::Get { key, .. } => {
                if attempts >= max {
                    self.ops.remove(&op);
                    self.emit(ChordEvent::GetDone {
                        op,
                        value: None,
                        ok: false,
                    });
                } else {
                    if let Some(s) = self.ops.get_mut(&op) {
                        s.kind = OpKind::Get { key, owner: None };
                    }
                    self.issue_lookup(now, op, key, attempts);
                    self.arm_op_timeout(op);
                }
            }
            OpKind::Fence { key, floor, .. } => {
                if attempts >= max {
                    self.finish_fence(op, false, 0, false);
                } else {
                    if let Some(s) = self.ops.get_mut(&op) {
                        s.kind = OpKind::Fence {
                            key,
                            floor,
                            owner: None,
                        };
                    }
                    self.issue_lookup(now, op, key, attempts);
                    self.arm_op_timeout(op);
                }
            }
            _ => {}
        }
    }

    /// Terminal point of every fence op: report the outcome. `current` is
    /// 0 when the op died unanswered (vs. a definitive rejection, which
    /// always carries the winning floor ≥ 1).
    pub(crate) fn finish_fence(&mut self, op: OpId, ok: bool, current: u64, occupied: bool) {
        self.ops.remove(&op);
        self.emit(ChordEvent::FenceDone {
            op,
            ok,
            current,
            occupied,
        });
    }

    pub(crate) fn apply_put_local(
        &mut self,
        key: Id,
        value: bytes::Bytes,
        mode: PutMode,
    ) -> (bool, Option<bytes::Bytes>) {
        self.store_version += 1;
        match mode {
            PutMode::Overwrite => {
                self.store.put_primary(key, value.clone());
                self.eager_replicate_item(key, value);
                (true, None)
            }
            PutMode::FirstWriter => match self.store.put_primary_first_writer(key, value.clone()) {
                Ok(()) => {
                    self.eager_replicate_item(key, value);
                    (true, None)
                }
                Err(existing) => (false, Some(existing)),
            },
            PutMode::Ranked => match self.store.put_primary_ranked(key, value.clone()) {
                Ok(()) => {
                    self.eager_replicate_item(key, value);
                    (true, None)
                }
                // A fenced-but-empty slot has no surviving record to show;
                // report an empty conflict value so the origin still sees
                // a definitive rejection (not a retryable wrong-owner nack).
                Err(existing) => (false, Some(existing.unwrap_or_default())),
            },
        }
    }

    /// Push a freshly written item to the first `storage_replicas`
    /// successors immediately (the periodic push is only a repair path).
    fn eager_replicate_item(&mut self, key: Id, value: bytes::Bytes) {
        let succs: Vec<NodeRef> = self
            .succs
            .iter()
            .filter(|s| s.id != self.me.id)
            .take(self.cfg.storage_replicas)
            .copied()
            .collect();
        for s in succs {
            self.send(
                s.addr,
                ChordMsg::Replicate {
                    items: vec![(key, value.clone())],
                },
            );
        }
    }
}
