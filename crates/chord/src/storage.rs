//! Per-node key-value storage with primary/replica buckets.
//!
//! A node is *primary* for the keys in `(pred, me]`; it additionally holds
//! *replica* copies of its predecessors' items (the paper's Log-Peers-Succ
//! role). Replicas are promoted to primary when responsibility shifts after
//! a failure.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;

use crate::id::Id;
use crate::sha1::Digest;
use crate::sync;

/// One observed mutation of a [`Storage`] — the journaling upcall the
/// durability layer (the `store` crate) consumes. Deltas are recorded only
/// while journaling is enabled ([`Storage::set_journaling`]), so the
/// default path pays nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageDelta {
    /// An item was stored (or overwritten) in the primary bucket.
    PutPrimary {
        /// The key.
        key: Id,
        /// The stored value.
        value: Bytes,
    },
    /// An item was stored (or overwritten) in the replica bucket.
    PutReplica {
        /// The key.
        key: Id,
        /// The stored value.
        value: Bytes,
    },
    /// An item left the primary bucket.
    DelPrimary {
        /// The key.
        key: Id,
    },
    /// An item left the replica bucket.
    DelReplica {
        /// The key.
        key: Id,
    },
    /// A fence floor was raised on a key (see [`Storage::raise_fence`]).
    SetFence {
        /// The key.
        key: Id,
        /// The new floor: the minimum rank a record must carry to land.
        floor: u64,
        /// The fencing master's identity (its ring id bits).
        origin: u64,
    },
}

/// Magic prefix marking a *ranked* stored value: epoch-stamped log
/// records start with this tag followed by the rank (the master epoch)
/// as a little-endian u64. Legacy values never start with it — a legacy
/// log record opens with its doc-name length, and a name of ~827 MB
/// (the magic read as a length) fails decoding long before storage.
pub const RANK_MAGIC: [u8; 4] = *b"LRE1";

/// The arbitration rank of a stored value: the embedded master epoch of
/// a ranked record, 0 for every legacy (unranked) value.
pub fn value_rank(v: &[u8]) -> u64 {
    if v.len() >= 12 && v[..4] == RANK_MAGIC {
        u64::from_le_bytes(v[4..12].try_into().expect("4..12 is 8 bytes"))
    } else {
        0
    }
}

/// Which key population a Merkle sync digest summarizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncView {
    /// Primary bucket only — what an owner advertises.
    Primary,
    /// Primary ∪ replica with primary preferred (the [`Storage::get`]
    /// read semantics) — what a replica compares against an owner's
    /// advertisement, so items already promoted locally still count.
    Union,
}

/// Per-bucket digest cache for one [`SyncView`]. An entry holds the
/// digest of the bucket's *entire* key span, so it is consulted only when
/// a sync range covers the bucket fully; mutations invalidate the touched
/// bucket, making the replicate-tick root a cache lookup in steady state.
#[derive(Clone)]
struct BucketCache {
    digests: [Option<Digest>; sync::BUCKETS],
}

impl Default for BucketCache {
    fn default() -> Self {
        BucketCache {
            digests: [None; sync::BUCKETS],
        }
    }
}

impl std::fmt::Debug for BucketCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let filled = self.digests.iter().filter(|d| d.is_some()).count();
        write!(f, "BucketCache({filled}/{} cached)", sync::BUCKETS)
    }
}

/// Primary + replica item store for one node.
#[derive(Clone, Debug, Default)]
pub struct Storage {
    primary: BTreeMap<Id, Bytes>,
    replica: BTreeMap<Id, Bytes>,
    /// Per-key fence floors: `key → (floor, origin)`. A fenced key only
    /// accepts ranked records of rank ≥ floor. Floors are local write
    /// barriers, not data: they are journaled for crash recovery but
    /// never Merkle-synced or transferred between nodes.
    fences: BTreeMap<Id, (u64, u64)>,
    /// Record mutations as [`StorageDelta`]s for the embedding layer.
    journaling: bool,
    deltas: Vec<StorageDelta>,
    /// Merkle summary caches for the two sync views.
    cache_primary: BucketCache,
    cache_union: BucketCache,
}

/// Extract the keys of `map` lying in the clockwise arc `(from, to]`,
/// handling wrap-around. Uses ordered `range` traversal so a stabilization
/// transfer touches only the keys in the arc, not the whole map.
fn keys_in_range(map: &BTreeMap<Id, Bytes>, from: Id, to: Id) -> Vec<Id> {
    use std::ops::Bound::{Excluded, Included, Unbounded};
    if from == to {
        // Degenerate arc `(a, a]` = the whole ring (single-node ownership),
        // matching `Id::in_half_open`.
        map.keys().copied().collect()
    } else if from < to {
        // No wrap: plain ordered sub-range (from, to].
        map.range((Excluded(from), Included(to)))
            .map(|(k, _)| *k)
            .collect()
    } else {
        // Wraps past zero: (from, MAX] ∪ [MIN, to].
        map.range((Excluded(from), Unbounded))
            .chain(map.range((Unbounded, Included(to))))
            .map(|(k, _)| *k)
            .collect()
    }
}

impl Storage {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn mutation journaling on or off. While on, every bucket change
    /// is mirrored as a [`StorageDelta`]; the embedding layer drains them
    /// with [`Storage::take_deltas`] after each protocol upcall and
    /// appends them to its durable store.
    pub fn set_journaling(&mut self, on: bool) {
        self.journaling = on;
        if !on {
            self.deltas.clear();
        }
    }

    /// Drain the deltas recorded since the last call.
    pub fn take_deltas(&mut self) -> Vec<StorageDelta> {
        std::mem::take(&mut self.deltas)
    }

    #[inline]
    fn journal(&mut self, delta: impl FnOnce() -> StorageDelta) {
        if self.journaling {
            self.deltas.push(delta());
        }
    }

    /// Primary-bucket mutation: dirties the key's bucket in both sync
    /// views (the union view reads through the primary).
    #[inline]
    fn touch_primary(&mut self, key: Id) {
        let b = sync::bucket_of(key) as usize;
        self.cache_primary.digests[b] = None;
        self.cache_union.digests[b] = None;
    }

    /// Replica-bucket mutation: dirties the union view only.
    #[inline]
    fn touch_replica(&mut self, key: Id) {
        self.cache_union.digests[sync::bucket_of(key) as usize] = None;
    }

    /// Store as primary (unconditional overwrite).
    pub fn put_primary(&mut self, key: Id, value: Bytes) {
        self.journal(|| StorageDelta::PutPrimary {
            key,
            value: value.clone(),
        });
        self.touch_primary(key);
        self.primary.insert(key, value);
    }

    /// Store as primary only if absent or equal; on mismatch returns the
    /// existing value (first-writer-wins arbitration).
    pub fn put_primary_first_writer(&mut self, key: Id, value: Bytes) -> Result<(), Bytes> {
        match self.primary.get(&key) {
            Some(existing) if *existing != value => Err(existing.clone()),
            _ => {
                self.journal(|| StorageDelta::PutPrimary {
                    key,
                    value: value.clone(),
                });
                self.touch_primary(key);
                self.primary.insert(key, value);
                Ok(())
            }
        }
    }

    /// Raise the fence floor for `key` to `floor` on behalf of `origin`.
    /// Strict: succeeds only when the floor strictly increases, or when
    /// the *same* origin re-asserts the floor it already holds (its own
    /// retry after a lost ack). A different origin at the same floor is
    /// rejected — two masters fencing the same epoch cannot both hold
    /// the fence. `Err` carries the current (winning) floor.
    pub fn raise_fence(&mut self, key: Id, floor: u64, origin: u64) -> Result<(), u64> {
        match self.fences.get(&key) {
            Some(&(cur, cur_origin)) if floor < cur || (floor == cur && origin != cur_origin) => {
                Err(cur)
            }
            _ => {
                self.journal(|| StorageDelta::SetFence { key, floor, origin });
                self.fences.insert(key, (floor, origin));
                Ok(())
            }
        }
    }

    /// The fence floor currently in force for `key` (0 when unfenced).
    pub fn fence_floor(&self, key: Id) -> u64 {
        self.fences.get(&key).map(|&(f, _)| f).unwrap_or(0)
    }

    /// Re-install a fence floor from a recovery replay (max-merge; not
    /// journaled — the entry that seeded it is already durable).
    pub fn restore_fence(&mut self, key: Id, floor: u64, origin: u64) {
        let e = self.fences.entry(key).or_insert((floor, origin));
        if floor > e.0 {
            *e = (floor, origin);
        }
    }

    /// Store a ranked record: the value's embedded rank (master epoch)
    /// arbitrates against both the key's fence floor and any record
    /// already present. Equal bytes are idempotent; a strictly higher
    /// rank overwrites a superseded record; anything else is rejected,
    /// returning the surviving record (`None` when the slot is fenced
    /// but still empty).
    pub fn put_primary_ranked(&mut self, key: Id, value: Bytes) -> Result<(), Option<Bytes>> {
        let rank = value_rank(&value);
        if let Some(existing) = self.primary.get(&key) {
            if *existing == value {
                return Ok(());
            }
            // Equal ranks keep the incumbent: first-writer-wins within
            // an epoch, exactly the legacy arbitration.
            if rank <= value_rank(existing) {
                return Err(Some(existing.clone()));
            }
        }
        if rank < self.fence_floor(key) {
            return Err(self.primary.get(&key).cloned());
        }
        self.journal(|| StorageDelta::PutPrimary {
            key,
            value: value.clone(),
        });
        self.touch_primary(key);
        self.primary.insert(key, value);
        Ok(())
    }

    /// Store a replica copy. Ranked records arbitrate (higher rank wins;
    /// equal ranks converge on the byte-wise greater record so every
    /// replica settles on the same survivor without coordination);
    /// unranked values keep the legacy unconditional overwrite.
    pub fn put_replica(&mut self, key: Id, value: Bytes) {
        if let Some(existing) = self.replica.get(&key) {
            let (new_r, cur_r) = (value_rank(&value), value_rank(existing));
            if (new_r > 0 || cur_r > 0)
                && *existing != value
                && (cur_r > new_r || (cur_r == new_r && **existing > *value))
            {
                return;
            }
        }
        self.journal(|| StorageDelta::PutReplica {
            key,
            value: value.clone(),
        });
        self.touch_replica(key);
        self.replica.insert(key, value);
    }

    /// Read, preferring primary, falling back to the replica bucket (covers
    /// the window between a predecessor's crash and promotion).
    pub fn get(&self, key: Id) -> Option<&Bytes> {
        self.primary.get(&key).or_else(|| self.replica.get(&key))
    }

    /// Read only the primary bucket.
    pub fn get_primary(&self, key: Id) -> Option<&Bytes> {
        self.primary.get(&key)
    }

    /// Does either bucket hold the key?
    pub fn contains(&self, key: Id) -> bool {
        self.primary.contains_key(&key) || self.replica.contains_key(&key)
    }

    /// All primary items (for replica pushes and graceful handoff).
    pub fn primary_items(&self) -> Vec<(Id, Bytes)> {
        self.primary.iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    /// Remove and return primary items in `(from, to]` — the handoff set
    /// when a new predecessor takes over that arc.
    pub fn extract_primary_range(&mut self, from: Id, to: Id) -> Vec<(Id, Bytes)> {
        let keys = keys_in_range(&self.primary, from, to);
        keys.into_iter()
            .map(|k| {
                let v = self.primary.remove(&k).expect("key listed but missing");
                // Keep a replica copy: we are the new owner's successor.
                self.journal(|| StorageDelta::DelPrimary { key: k });
                self.journal(|| StorageDelta::PutReplica {
                    key: k,
                    value: v.clone(),
                });
                self.touch_primary(k);
                self.replica.insert(k, v.clone());
                (k, v)
            })
            .collect()
    }

    /// Promote replica items in `(from, to]` to primary (post-failure
    /// takeover of a predecessor's arc).
    pub fn promote_replicas_in_range(&mut self, from: Id, to: Id) -> usize {
        let keys = keys_in_range(&self.replica, from, to);
        let n = keys.len();
        for k in keys {
            let v = self.replica.remove(&k).expect("key listed but missing");
            self.journal(|| StorageDelta::DelReplica { key: k });
            // A ranked replica that outranks the resident primary record
            // replaces it (the resident lost the epoch arbitration);
            // otherwise keep the incumbent, as the legacy path always did.
            let replace = match self.primary.get(&k) {
                None => true,
                Some(cur) if *cur != v => {
                    let (vr, cr) = (value_rank(&v), value_rank(cur));
                    vr > cr || (vr == cr && vr > 0 && v > *cur)
                }
                Some(_) => false,
            };
            if replace {
                self.journal(|| StorageDelta::PutPrimary {
                    key: k,
                    value: v.clone(),
                });
                self.primary.insert(k, v);
            }
            self.touch_primary(k);
        }
        n
    }

    /// Drop replica items that fall inside our own primary range (they were
    /// promoted elsewhere or are stale).
    pub fn prune_replicas_in_range(&mut self, from: Id, to: Id) -> usize {
        let keys = keys_in_range(&self.replica, from, to);
        let n = keys.len();
        for k in keys {
            self.replica.remove(&k);
            self.journal(|| StorageDelta::DelReplica { key: k });
            self.touch_replica(k);
        }
        n
    }

    /// Number of primary items.
    pub fn primary_len(&self) -> usize {
        self.primary.len()
    }

    /// Number of replica items.
    pub fn replica_len(&self) -> usize {
        self.replica.len()
    }

    /// Iterate primary entries without cloning (e.g. for GC sweeps).
    pub fn iter_primary(&self) -> impl Iterator<Item = (&Id, &Bytes)> {
        self.primary.iter()
    }

    /// Iterate replica entries without cloning.
    pub fn iter_replica(&self) -> impl Iterator<Item = (&Id, &Bytes)> {
        self.replica.iter()
    }

    /// Move a primary item into the replica bucket (re-homing: we held it
    /// as primary for a range we turned out not to own). Keeps the bytes
    /// — a replica copy still serves takeover promotion — but stops
    /// advertising ownership. Returns false when the key is not primary.
    pub fn demote_to_replica(&mut self, key: Id) -> bool {
        match self.primary.remove(&key) {
            Some(v) => {
                self.journal(|| StorageDelta::DelPrimary { key });
                self.journal(|| StorageDelta::PutReplica {
                    key,
                    value: v.clone(),
                });
                self.touch_primary(key);
                self.replica.insert(key, v);
                true
            }
            None => false,
        }
    }

    /// Remove a key from both buckets; true if anything was removed.
    pub fn remove(&mut self, key: Id) -> bool {
        let a = self.primary.remove(&key).is_some();
        let b = self.replica.remove(&key).is_some();
        if a {
            self.journal(|| StorageDelta::DelPrimary { key });
            self.touch_primary(key);
        }
        if b {
            self.journal(|| StorageDelta::DelReplica { key });
            self.touch_replica(key);
        }
        a || b
    }

    /// Remove a key from the replica bucket only (Merkle-sync pruning of
    /// an item the owner deleted); true if it was present.
    pub fn remove_replica(&mut self, key: Id) -> bool {
        if self.replica.remove(&key).is_some() {
            self.journal(|| StorageDelta::DelReplica { key });
            self.touch_replica(key);
            true
        } else {
            false
        }
    }

    // ----- Merkle sync summaries ------------------------------------------

    /// Per-key entry digests of the view's keys in leaf bucket `bucket`
    /// restricted to the arc `(from, to]`, in ascending key order — both
    /// the leaf listing shipped in `SyncNodes` and the input to
    /// [`sync::bucket_digest`].
    pub fn sync_leaf(&self, view: SyncView, bucket: u32, from: Id, to: Id) -> Vec<(Id, Digest)> {
        let lo = Id((bucket as u64) << sync::BUCKET_SHIFT);
        let hi = Id(lo.0 | sync::BUCKET_SPAN_MASK);
        match view {
            SyncView::Primary => self
                .primary
                .range(lo..=hi)
                .filter(|(k, _)| k.in_half_open(from, to))
                .map(|(k, v)| (*k, sync::entry_digest(*k, v)))
                .collect(),
            SyncView::Union => {
                let mut merged: BTreeMap<Id, &Bytes> =
                    self.replica.range(lo..=hi).map(|(k, v)| (*k, v)).collect();
                for (k, v) in self.primary.range(lo..=hi) {
                    merged.insert(*k, v);
                }
                merged
                    .into_iter()
                    .filter(|(k, _)| k.in_half_open(from, to))
                    .map(|(k, v)| (k, sync::entry_digest(k, v)))
                    .collect()
            }
        }
    }

    /// The non-empty leaf buckets of the view's keys in `(from, to]`,
    /// each with its bucket digest, ascending by bucket number — the flat
    /// summary [`sync::range_root`] and [`sync::children_of`] consume.
    /// Buckets fully covered by the arc are served from the per-view
    /// cache (filled on demand, invalidated per mutation); the at most
    /// two partial edge buckets are recomputed with the range filter.
    pub fn sync_bucket_digests(&mut self, view: SyncView, from: Id, to: Id) -> Vec<(u32, Digest)> {
        let mut buckets: BTreeSet<u32> = keys_in_range(&self.primary, from, to)
            .into_iter()
            .map(sync::bucket_of)
            .collect();
        if view == SyncView::Union {
            buckets.extend(
                keys_in_range(&self.replica, from, to)
                    .into_iter()
                    .map(sync::bucket_of),
            );
        }
        let mut out = Vec::with_capacity(buckets.len());
        for b in buckets {
            let covered = sync::bucket_covered(b, from, to);
            let cache = match view {
                SyncView::Primary => &self.cache_primary,
                SyncView::Union => &self.cache_union,
            };
            let cached = if covered {
                cache.digests[b as usize]
            } else {
                None
            };
            let digest = match cached {
                Some(d) => d,
                None => {
                    let d = sync::bucket_digest(&self.sync_leaf(view, b, from, to));
                    if covered {
                        let cache = match view {
                            SyncView::Primary => &mut self.cache_primary,
                            SyncView::Union => &mut self.cache_union,
                        };
                        cache.digests[b as usize] = Some(d);
                    }
                    d
                }
            };
            out.push((b, digest));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn demote_to_replica_moves_item_and_journals() {
        let mut s = Storage::new();
        s.put_primary(Id(5), b("v"));
        s.set_journaling(true);
        assert!(s.demote_to_replica(Id(5)));
        assert_eq!(s.primary_len(), 0);
        assert_eq!(s.get(Id(5)), Some(&b("v")));
        let deltas = s.take_deltas();
        assert!(matches!(deltas[0], StorageDelta::DelPrimary { key: Id(5) }));
        assert!(matches!(
            deltas[1],
            StorageDelta::PutReplica { key: Id(5), .. }
        ));
        // Not primary: no-op.
        assert!(!s.demote_to_replica(Id(5)));
        assert!(s.take_deltas().is_empty());
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = Storage::new();
        s.put_primary(Id(5), b("v"));
        assert_eq!(s.get(Id(5)), Some(&b("v")));
        assert_eq!(s.get(Id(6)), None);
    }

    #[test]
    fn first_writer_wins_rejects_conflicts() {
        let mut s = Storage::new();
        assert!(s.put_primary_first_writer(Id(1), b("a")).is_ok());
        // Idempotent re-put of the same value is fine.
        assert!(s.put_primary_first_writer(Id(1), b("a")).is_ok());
        // A different value is rejected and the original returned.
        let err = s.put_primary_first_writer(Id(1), b("z")).unwrap_err();
        assert_eq!(err, b("a"));
        assert_eq!(s.get(Id(1)), Some(&b("a")));
    }

    #[test]
    fn get_falls_back_to_replica() {
        let mut s = Storage::new();
        s.put_replica(Id(9), b("r"));
        assert_eq!(s.get(Id(9)), Some(&b("r")));
        assert_eq!(s.get_primary(Id(9)), None);
    }

    #[test]
    fn extract_range_moves_to_replica_bucket() {
        let mut s = Storage::new();
        s.put_primary(Id(10), b("x"));
        s.put_primary(Id(20), b("y"));
        s.put_primary(Id(30), b("z"));
        let moved = s.extract_primary_range(Id(5), Id(20));
        let keys: Vec<Id> = moved.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![Id(10), Id(20)]);
        assert_eq!(s.primary_len(), 1);
        // Extracted items remain as replicas (we are the new owner's succ).
        assert_eq!(s.get(Id(10)), Some(&b("x")));
        assert_eq!(s.replica_len(), 2);
    }

    #[test]
    fn extract_range_handles_wraparound() {
        let mut s = Storage::new();
        s.put_primary(Id(u64::MAX - 1), b("a"));
        s.put_primary(Id(3), b("b"));
        s.put_primary(Id(1000), b("c"));
        let moved = s.extract_primary_range(Id(u64::MAX - 5), Id(5));
        assert_eq!(moved.len(), 2);
        assert_eq!(s.primary_len(), 1);
        assert!(s.get_primary(Id(1000)).is_some());
    }

    #[test]
    fn keys_in_range_matches_predicate_filter() {
        // The ordered-range traversal must select exactly the keys the
        // in_half_open predicate selects, for wrap, no-wrap and degenerate
        // arcs alike.
        let mut map = BTreeMap::new();
        let keys = [0u64, 1, 7, 100, 1000, u64::MAX / 2, u64::MAX - 3, u64::MAX];
        for k in keys {
            map.insert(Id(k), b("v"));
        }
        let arcs = [
            (Id(0), Id(1000)),                // no wrap
            (Id(1000), Id(0)),                // wrap through MAX
            (Id(u64::MAX - 5), Id(5)),        // tight wrap
            (Id(7), Id(7)),                   // degenerate: whole ring
            (Id(u64::MAX), Id(u64::MAX - 3)), // wrap, bounds on stored keys
        ];
        for (from, to) in arcs {
            let got = keys_in_range(&map, from, to);
            let mut expect: Vec<Id> = map
                .keys()
                .copied()
                .filter(|k| k.in_half_open(from, to))
                .collect();
            let mut sorted = got.clone();
            sorted.sort();
            expect.sort();
            assert_eq!(sorted, expect, "arc ({from:?}, {to:?}]");
        }
    }

    #[test]
    fn wraparound_range_is_clockwise_ordered() {
        let mut map = BTreeMap::new();
        for k in [3u64, 900, u64::MAX - 1] {
            map.insert(Id(k), b("v"));
        }
        // (MAX-5, 5]: clockwise walk passes MAX-1 before 3.
        assert_eq!(
            keys_in_range(&map, Id(u64::MAX - 5), Id(5)),
            vec![Id(u64::MAX - 1), Id(3)]
        );
    }

    #[test]
    fn promote_replicas_takes_over_range() {
        let mut s = Storage::new();
        s.put_replica(Id(10), b("x"));
        s.put_replica(Id(50), b("y"));
        let n = s.promote_replicas_in_range(Id(0), Id(20));
        assert_eq!(n, 1);
        assert_eq!(s.get_primary(Id(10)), Some(&b("x")));
        assert_eq!(s.get_primary(Id(50)), None);
        assert_eq!(s.replica_len(), 1);
    }

    #[test]
    fn promote_does_not_clobber_existing_primary() {
        let mut s = Storage::new();
        s.put_primary(Id(10), b("new"));
        s.put_replica(Id(10), b("old"));
        s.promote_replicas_in_range(Id(0), Id(20));
        assert_eq!(s.get_primary(Id(10)), Some(&b("new")));
    }

    #[test]
    fn journaling_mirrors_every_mutation() {
        let mut s = Storage::new();
        // Off by default: no deltas, no cost.
        s.put_primary(Id(1), b("a"));
        assert!(s.take_deltas().is_empty());

        s.set_journaling(true);
        s.put_primary(Id(1), b("a2"));
        s.put_replica(Id(2), b("r"));
        assert!(s.put_primary_first_writer(Id(3), b("fw")).is_ok());
        assert!(s.put_primary_first_writer(Id(3), b("other")).is_err());
        s.remove(Id(1));
        let deltas = s.take_deltas();
        assert_eq!(
            deltas,
            vec![
                StorageDelta::PutPrimary {
                    key: Id(1),
                    value: b("a2")
                },
                StorageDelta::PutReplica {
                    key: Id(2),
                    value: b("r")
                },
                StorageDelta::PutPrimary {
                    key: Id(3),
                    value: b("fw")
                },
                StorageDelta::DelPrimary { key: Id(1) },
            ]
        );
        assert!(s.take_deltas().is_empty(), "drained");

        // Range ops journal per-key moves.
        s.promote_replicas_in_range(Id(0), Id(10));
        let deltas = s.take_deltas();
        assert_eq!(
            deltas,
            vec![
                StorageDelta::DelReplica { key: Id(2) },
                StorageDelta::PutPrimary {
                    key: Id(2),
                    value: b("r")
                },
            ]
        );
        s.extract_primary_range(Id(1), Id(3));
        let deltas = s.take_deltas();
        assert!(deltas.contains(&StorageDelta::DelPrimary { key: Id(2) }));
        assert!(deltas.contains(&StorageDelta::PutReplica {
            key: Id(2),
            value: b("r")
        }));
    }

    #[test]
    fn prune_replicas() {
        let mut s = Storage::new();
        s.put_replica(Id(10), b("x"));
        s.put_replica(Id(30), b("y"));
        assert_eq!(s.prune_replicas_in_range(Id(5), Id(15)), 1);
        assert_eq!(s.replica_len(), 1);
    }

    #[test]
    fn remove_replica_leaves_primary_alone() {
        let mut s = Storage::new();
        s.put_primary(Id(7), b("p"));
        s.put_replica(Id(7), b("r"));
        s.set_journaling(true);
        assert!(s.remove_replica(Id(7)));
        assert!(!s.remove_replica(Id(7)));
        assert_eq!(s.get_primary(Id(7)), Some(&b("p")));
        assert_eq!(
            s.take_deltas(),
            vec![StorageDelta::DelReplica { key: Id(7) }]
        );
    }

    // ----- Ranked records and fence floors -----

    /// Build a ranked value: magic + rank + body.
    fn ranked(rank: u64, body: &str) -> Bytes {
        let mut v = Vec::new();
        v.extend_from_slice(&RANK_MAGIC);
        v.extend_from_slice(&rank.to_le_bytes());
        v.extend_from_slice(body.as_bytes());
        Bytes::from(v)
    }

    #[test]
    fn value_rank_reads_magic_or_zero() {
        assert_eq!(value_rank(&ranked(7, "x")), 7);
        assert_eq!(value_rank(b"plain legacy bytes"), 0);
        assert_eq!(value_rank(b""), 0);
        assert_eq!(value_rank(b"LRE1"), 0, "truncated rank is unranked");
    }

    #[test]
    fn raise_fence_is_strictly_monotonic_per_origin() {
        let mut s = Storage::new();
        assert_eq!(s.fence_floor(Id(1)), 0);
        assert!(s.raise_fence(Id(1), 3, 100).is_ok());
        assert_eq!(s.fence_floor(Id(1)), 3);
        // Same origin may re-assert its own floor (ack was lost).
        assert!(s.raise_fence(Id(1), 3, 100).is_ok());
        // A different origin at the same floor is rejected.
        assert_eq!(s.raise_fence(Id(1), 3, 200), Err(3));
        // Lower floors are rejected; higher floors win regardless of origin.
        assert_eq!(s.raise_fence(Id(1), 2, 100), Err(3));
        assert!(s.raise_fence(Id(1), 4, 200).is_ok());
        assert_eq!(s.fence_floor(Id(1)), 4);
    }

    #[test]
    fn ranked_put_respects_fence_and_rank() {
        let mut s = Storage::new();
        s.raise_fence(Id(9), 2, 1).unwrap();
        // Below the floor, even on an empty slot: rejected, nothing stored.
        assert_eq!(s.put_primary_ranked(Id(9), ranked(1, "old")), Err(None));
        assert_eq!(s.get_primary(Id(9)), None);
        // At the floor: lands.
        assert!(s.put_primary_ranked(Id(9), ranked(2, "new")).is_ok());
        // Idempotent re-put.
        assert!(s.put_primary_ranked(Id(9), ranked(2, "new")).is_ok());
        // Equal rank, different bytes: first writer wins.
        assert_eq!(
            s.put_primary_ranked(Id(9), ranked(2, "other")),
            Err(Some(ranked(2, "new")))
        );
        // Higher rank overwrites a superseded record.
        assert!(s.put_primary_ranked(Id(9), ranked(3, "fresh")).is_ok());
        assert_eq!(s.get_primary(Id(9)), Some(&ranked(3, "fresh")));
        // Lower rank bounces off the resident record.
        assert_eq!(
            s.put_primary_ranked(Id(9), ranked(2, "stale")),
            Err(Some(ranked(3, "fresh")))
        );
    }

    #[test]
    fn ranked_replicas_arbitrate_unranked_overwrite() {
        let mut s = Storage::new();
        // Legacy: unranked replica writes overwrite unconditionally.
        s.put_replica(Id(4), b("a"));
        s.put_replica(Id(4), b("b"));
        assert_eq!(s.get(Id(4)), Some(&b("b")));
        // Ranked: higher rank wins in either order.
        s.put_replica(Id(5), ranked(2, "win"));
        s.put_replica(Id(5), ranked(1, "lose"));
        assert_eq!(s.get(Id(5)), Some(&ranked(2, "win")));
        s.put_replica(Id(6), ranked(1, "lose"));
        s.put_replica(Id(6), ranked(2, "win"));
        assert_eq!(s.get(Id(6)), Some(&ranked(2, "win")));
        // Equal ranks: byte-wise max survives in either order.
        let (lo, hi) = (ranked(3, "aaa"), ranked(3, "bbb"));
        s.put_replica(Id(7), lo.clone());
        s.put_replica(Id(7), hi.clone());
        assert_eq!(s.get(Id(7)), Some(&hi));
        s.put_replica(Id(8), hi.clone());
        s.put_replica(Id(8), lo.clone());
        assert_eq!(s.get(Id(8)), Some(&hi));
    }

    #[test]
    fn promote_prefers_higher_ranked_replica() {
        let mut s = Storage::new();
        s.put_primary(Id(10), ranked(1, "stale"));
        s.put_replica(Id(10), ranked(2, "winner"));
        s.promote_replicas_in_range(Id(0), Id(20));
        assert_eq!(s.get_primary(Id(10)), Some(&ranked(2, "winner")));
        // Unranked conflict keeps the incumbent (legacy behaviour).
        let mut s = Storage::new();
        s.put_primary(Id(11), b("new"));
        s.put_replica(Id(11), b("old"));
        s.promote_replicas_in_range(Id(0), Id(20));
        assert_eq!(s.get_primary(Id(11)), Some(&b("new")));
    }

    #[test]
    fn fences_journal_and_restore() {
        let mut s = Storage::new();
        s.set_journaling(true);
        s.raise_fence(Id(2), 5, 77).unwrap();
        assert_eq!(
            s.take_deltas(),
            vec![StorageDelta::SetFence {
                key: Id(2),
                floor: 5,
                origin: 77
            }]
        );
        let mut r = Storage::new();
        r.restore_fence(Id(2), 5, 77);
        r.restore_fence(Id(2), 3, 99); // max-merge: lower floor ignored
        assert_eq!(r.fence_floor(Id(2)), 5);
        assert!(r.take_deltas().is_empty(), "restore does not journal");
    }

    // ----- Merkle sync summaries -----

    /// Uncached reference: digests recomputed from scratch on a fresh
    /// store holding the same contents.
    fn fresh_digests(
        s: &Storage,
        view: SyncView,
        from: Id,
        to: Id,
    ) -> Vec<(u32, crate::sha1::Digest)> {
        let mut c = Storage::new();
        for (k, v) in s.iter_primary() {
            c.put_primary(*k, v.clone());
        }
        for (k, v) in s.iter_replica() {
            c.put_replica(*k, v.clone());
        }
        c.sync_bucket_digests(view, from, to)
    }

    #[test]
    fn sync_leaf_orders_and_filters() {
        let mut s = Storage::new();
        let in_b3 = |low: u64| Id((3u64 << 56) | low);
        s.put_primary(in_b3(10), b("a"));
        s.put_primary(in_b3(2), b("b"));
        s.put_primary(Id(5), b("other-bucket"));
        let leaf = s.sync_leaf(SyncView::Primary, 3, Id(0), Id(u64::MAX));
        assert_eq!(
            leaf.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![in_b3(2), in_b3(10)],
            "ascending key order, bucket 3 only"
        );
        // Range filter: exclude key 2 via the arc.
        let leaf = s.sync_leaf(SyncView::Primary, 3, in_b3(5), Id(u64::MAX));
        assert_eq!(
            leaf.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![in_b3(10)]
        );
    }

    #[test]
    fn union_view_prefers_primary() {
        let mut s = Storage::new();
        s.put_primary(Id(1), b("p"));
        s.put_replica(Id(1), b("r"));
        s.put_replica(Id(2), b("only-replica"));
        let leaf = s.sync_leaf(SyncView::Union, 0, Id(u64::MAX), Id(u64::MAX - 1));
        assert_eq!(leaf.len(), 2);
        assert_eq!(leaf[0], (Id(1), crate::sync::entry_digest(Id(1), b"p")));
        assert_eq!(
            leaf[1],
            (Id(2), crate::sync::entry_digest(Id(2), b"only-replica"))
        );
    }

    #[test]
    fn cached_digests_track_mutations() {
        // Every mutation path must invalidate the touched bucket: after
        // any sequence of ops, cached digests equal a from-scratch
        // recompute. Exercise each mutator between digest reads.
        let mut s = Storage::new();
        let arcs = [
            (Id(0), Id(u64::MAX)),
            (Id(u64::MAX), Id(u64::MAX)), // whole ring
            (Id(2u64 << 56), Id(200u64 << 56)),
            (Id(250u64 << 56), Id(9u64 << 56)), // wraps
        ];
        let check = |s: &mut Storage| {
            for (from, to) in arcs {
                for view in [SyncView::Primary, SyncView::Union] {
                    let got = s.sync_bucket_digests(view, from, to);
                    assert_eq!(
                        got,
                        fresh_digests(s, view, from, to),
                        "{view:?} ({from:?},{to:?}]"
                    );
                }
            }
        };
        let key = |b: u64, low: u64| Id((b << 56) | low);
        s.put_primary(key(3, 1), b("a"));
        s.put_replica(key(3, 2), b("b"));
        s.put_primary(key(200, 9), b("c"));
        check(&mut s);
        s.put_primary(key(3, 1), b("a2")); // overwrite after caching
        check(&mut s);
        assert!(s.put_primary_first_writer(key(7, 7), b("fw")).is_ok());
        check(&mut s);
        s.put_replica(key(3, 1), b("shadowed"));
        check(&mut s);
        s.extract_primary_range(key(3, 0), key(4, 0));
        check(&mut s);
        s.promote_replicas_in_range(key(2, 0), key(5, 0));
        check(&mut s);
        s.demote_to_replica(key(200, 9));
        check(&mut s);
        s.prune_replicas_in_range(key(2, 0), key(5, 0));
        check(&mut s);
        s.remove_replica(key(200, 9));
        check(&mut s);
        s.remove(key(7, 7));
        check(&mut s);
    }

    #[test]
    fn covered_buckets_hit_the_cache() {
        let mut s = Storage::new();
        let key = |b: u64, low: u64| Id((b << 56) | low);
        s.put_primary(key(10, 5), b("x"));
        let arc = (key(5, 0), key(20, 0));
        let first = s.sync_bucket_digests(SyncView::Primary, arc.0, arc.1);
        // Mutate the underlying map *without* the invalidation hook to
        // prove the second read is served from the cache. (White-box: we
        // reach into the private field on purpose.)
        s.primary.insert(key(10, 6), b("sneaky"));
        let second = s.sync_bucket_digests(SyncView::Primary, arc.0, arc.1);
        assert_eq!(first, second, "cached digest served despite raw change");
        // A hooked write invalidates and the digest moves.
        s.put_primary(key(10, 7), b("seen"));
        let third = s.sync_bucket_digests(SyncView::Primary, arc.0, arc.1);
        assert_ne!(first, third);
    }
}
