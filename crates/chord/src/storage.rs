//! Per-node key-value storage with primary/replica buckets.
//!
//! A node is *primary* for the keys in `(pred, me]`; it additionally holds
//! *replica* copies of its predecessors' items (the paper's Log-Peers-Succ
//! role). Replicas are promoted to primary when responsibility shifts after
//! a failure.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::id::Id;

/// One observed mutation of a [`Storage`] — the journaling upcall the
/// durability layer (the `store` crate) consumes. Deltas are recorded only
/// while journaling is enabled ([`Storage::set_journaling`]), so the
/// default path pays nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageDelta {
    /// An item was stored (or overwritten) in the primary bucket.
    PutPrimary {
        /// The key.
        key: Id,
        /// The stored value.
        value: Bytes,
    },
    /// An item was stored (or overwritten) in the replica bucket.
    PutReplica {
        /// The key.
        key: Id,
        /// The stored value.
        value: Bytes,
    },
    /// An item left the primary bucket.
    DelPrimary {
        /// The key.
        key: Id,
    },
    /// An item left the replica bucket.
    DelReplica {
        /// The key.
        key: Id,
    },
}

/// Primary + replica item store for one node.
#[derive(Clone, Debug, Default)]
pub struct Storage {
    primary: BTreeMap<Id, Bytes>,
    replica: BTreeMap<Id, Bytes>,
    /// Record mutations as [`StorageDelta`]s for the embedding layer.
    journaling: bool,
    deltas: Vec<StorageDelta>,
}

/// Extract the keys of `map` lying in the clockwise arc `(from, to]`,
/// handling wrap-around. Uses ordered `range` traversal so a stabilization
/// transfer touches only the keys in the arc, not the whole map.
fn keys_in_range(map: &BTreeMap<Id, Bytes>, from: Id, to: Id) -> Vec<Id> {
    use std::ops::Bound::{Excluded, Included, Unbounded};
    if from == to {
        // Degenerate arc `(a, a]` = the whole ring (single-node ownership),
        // matching `Id::in_half_open`.
        map.keys().copied().collect()
    } else if from < to {
        // No wrap: plain ordered sub-range (from, to].
        map.range((Excluded(from), Included(to)))
            .map(|(k, _)| *k)
            .collect()
    } else {
        // Wraps past zero: (from, MAX] ∪ [MIN, to].
        map.range((Excluded(from), Unbounded))
            .chain(map.range((Unbounded, Included(to))))
            .map(|(k, _)| *k)
            .collect()
    }
}

impl Storage {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn mutation journaling on or off. While on, every bucket change
    /// is mirrored as a [`StorageDelta`]; the embedding layer drains them
    /// with [`Storage::take_deltas`] after each protocol upcall and
    /// appends them to its durable store.
    pub fn set_journaling(&mut self, on: bool) {
        self.journaling = on;
        if !on {
            self.deltas.clear();
        }
    }

    /// Drain the deltas recorded since the last call.
    pub fn take_deltas(&mut self) -> Vec<StorageDelta> {
        std::mem::take(&mut self.deltas)
    }

    #[inline]
    fn journal(&mut self, delta: impl FnOnce() -> StorageDelta) {
        if self.journaling {
            self.deltas.push(delta());
        }
    }

    /// Store as primary (unconditional overwrite).
    pub fn put_primary(&mut self, key: Id, value: Bytes) {
        self.journal(|| StorageDelta::PutPrimary {
            key,
            value: value.clone(),
        });
        self.primary.insert(key, value);
    }

    /// Store as primary only if absent or equal; on mismatch returns the
    /// existing value (first-writer-wins arbitration).
    pub fn put_primary_first_writer(&mut self, key: Id, value: Bytes) -> Result<(), Bytes> {
        match self.primary.get(&key) {
            Some(existing) if *existing != value => Err(existing.clone()),
            _ => {
                self.journal(|| StorageDelta::PutPrimary {
                    key,
                    value: value.clone(),
                });
                self.primary.insert(key, value);
                Ok(())
            }
        }
    }

    /// Store a replica copy.
    pub fn put_replica(&mut self, key: Id, value: Bytes) {
        self.journal(|| StorageDelta::PutReplica {
            key,
            value: value.clone(),
        });
        self.replica.insert(key, value);
    }

    /// Read, preferring primary, falling back to the replica bucket (covers
    /// the window between a predecessor's crash and promotion).
    pub fn get(&self, key: Id) -> Option<&Bytes> {
        self.primary.get(&key).or_else(|| self.replica.get(&key))
    }

    /// Read only the primary bucket.
    pub fn get_primary(&self, key: Id) -> Option<&Bytes> {
        self.primary.get(&key)
    }

    /// Does either bucket hold the key?
    pub fn contains(&self, key: Id) -> bool {
        self.primary.contains_key(&key) || self.replica.contains_key(&key)
    }

    /// All primary items (for replica pushes and graceful handoff).
    pub fn primary_items(&self) -> Vec<(Id, Bytes)> {
        self.primary.iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    /// Remove and return primary items in `(from, to]` — the handoff set
    /// when a new predecessor takes over that arc.
    pub fn extract_primary_range(&mut self, from: Id, to: Id) -> Vec<(Id, Bytes)> {
        let keys = keys_in_range(&self.primary, from, to);
        keys.into_iter()
            .map(|k| {
                let v = self.primary.remove(&k).expect("key listed but missing");
                // Keep a replica copy: we are the new owner's successor.
                self.journal(|| StorageDelta::DelPrimary { key: k });
                self.journal(|| StorageDelta::PutReplica {
                    key: k,
                    value: v.clone(),
                });
                self.replica.insert(k, v.clone());
                (k, v)
            })
            .collect()
    }

    /// Promote replica items in `(from, to]` to primary (post-failure
    /// takeover of a predecessor's arc).
    pub fn promote_replicas_in_range(&mut self, from: Id, to: Id) -> usize {
        let keys = keys_in_range(&self.replica, from, to);
        let n = keys.len();
        for k in keys {
            let v = self.replica.remove(&k).expect("key listed but missing");
            self.journal(|| StorageDelta::DelReplica { key: k });
            if !self.primary.contains_key(&k) {
                self.journal(|| StorageDelta::PutPrimary {
                    key: k,
                    value: v.clone(),
                });
            }
            self.primary.entry(k).or_insert(v);
        }
        n
    }

    /// Drop replica items that fall inside our own primary range (they were
    /// promoted elsewhere or are stale).
    pub fn prune_replicas_in_range(&mut self, from: Id, to: Id) -> usize {
        let keys = keys_in_range(&self.replica, from, to);
        let n = keys.len();
        for k in keys {
            self.replica.remove(&k);
            self.journal(|| StorageDelta::DelReplica { key: k });
        }
        n
    }

    /// Number of primary items.
    pub fn primary_len(&self) -> usize {
        self.primary.len()
    }

    /// Number of replica items.
    pub fn replica_len(&self) -> usize {
        self.replica.len()
    }

    /// Iterate primary entries without cloning (e.g. for GC sweeps).
    pub fn iter_primary(&self) -> impl Iterator<Item = (&Id, &Bytes)> {
        self.primary.iter()
    }

    /// Iterate replica entries without cloning.
    pub fn iter_replica(&self) -> impl Iterator<Item = (&Id, &Bytes)> {
        self.replica.iter()
    }

    /// Move a primary item into the replica bucket (re-homing: we held it
    /// as primary for a range we turned out not to own). Keeps the bytes
    /// — a replica copy still serves takeover promotion — but stops
    /// advertising ownership. Returns false when the key is not primary.
    pub fn demote_to_replica(&mut self, key: Id) -> bool {
        match self.primary.remove(&key) {
            Some(v) => {
                self.journal(|| StorageDelta::DelPrimary { key });
                self.journal(|| StorageDelta::PutReplica {
                    key,
                    value: v.clone(),
                });
                self.replica.insert(key, v);
                true
            }
            None => false,
        }
    }

    /// Remove a key from both buckets; true if anything was removed.
    pub fn remove(&mut self, key: Id) -> bool {
        let a = self.primary.remove(&key).is_some();
        let b = self.replica.remove(&key).is_some();
        if a {
            self.journal(|| StorageDelta::DelPrimary { key });
        }
        if b {
            self.journal(|| StorageDelta::DelReplica { key });
        }
        a || b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn demote_to_replica_moves_item_and_journals() {
        let mut s = Storage::new();
        s.put_primary(Id(5), b("v"));
        s.set_journaling(true);
        assert!(s.demote_to_replica(Id(5)));
        assert_eq!(s.primary_len(), 0);
        assert_eq!(s.get(Id(5)), Some(&b("v")));
        let deltas = s.take_deltas();
        assert!(matches!(deltas[0], StorageDelta::DelPrimary { key: Id(5) }));
        assert!(matches!(
            deltas[1],
            StorageDelta::PutReplica { key: Id(5), .. }
        ));
        // Not primary: no-op.
        assert!(!s.demote_to_replica(Id(5)));
        assert!(s.take_deltas().is_empty());
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = Storage::new();
        s.put_primary(Id(5), b("v"));
        assert_eq!(s.get(Id(5)), Some(&b("v")));
        assert_eq!(s.get(Id(6)), None);
    }

    #[test]
    fn first_writer_wins_rejects_conflicts() {
        let mut s = Storage::new();
        assert!(s.put_primary_first_writer(Id(1), b("a")).is_ok());
        // Idempotent re-put of the same value is fine.
        assert!(s.put_primary_first_writer(Id(1), b("a")).is_ok());
        // A different value is rejected and the original returned.
        let err = s.put_primary_first_writer(Id(1), b("z")).unwrap_err();
        assert_eq!(err, b("a"));
        assert_eq!(s.get(Id(1)), Some(&b("a")));
    }

    #[test]
    fn get_falls_back_to_replica() {
        let mut s = Storage::new();
        s.put_replica(Id(9), b("r"));
        assert_eq!(s.get(Id(9)), Some(&b("r")));
        assert_eq!(s.get_primary(Id(9)), None);
    }

    #[test]
    fn extract_range_moves_to_replica_bucket() {
        let mut s = Storage::new();
        s.put_primary(Id(10), b("x"));
        s.put_primary(Id(20), b("y"));
        s.put_primary(Id(30), b("z"));
        let moved = s.extract_primary_range(Id(5), Id(20));
        let keys: Vec<Id> = moved.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![Id(10), Id(20)]);
        assert_eq!(s.primary_len(), 1);
        // Extracted items remain as replicas (we are the new owner's succ).
        assert_eq!(s.get(Id(10)), Some(&b("x")));
        assert_eq!(s.replica_len(), 2);
    }

    #[test]
    fn extract_range_handles_wraparound() {
        let mut s = Storage::new();
        s.put_primary(Id(u64::MAX - 1), b("a"));
        s.put_primary(Id(3), b("b"));
        s.put_primary(Id(1000), b("c"));
        let moved = s.extract_primary_range(Id(u64::MAX - 5), Id(5));
        assert_eq!(moved.len(), 2);
        assert_eq!(s.primary_len(), 1);
        assert!(s.get_primary(Id(1000)).is_some());
    }

    #[test]
    fn keys_in_range_matches_predicate_filter() {
        // The ordered-range traversal must select exactly the keys the
        // in_half_open predicate selects, for wrap, no-wrap and degenerate
        // arcs alike.
        let mut map = BTreeMap::new();
        let keys = [0u64, 1, 7, 100, 1000, u64::MAX / 2, u64::MAX - 3, u64::MAX];
        for k in keys {
            map.insert(Id(k), b("v"));
        }
        let arcs = [
            (Id(0), Id(1000)),                // no wrap
            (Id(1000), Id(0)),                // wrap through MAX
            (Id(u64::MAX - 5), Id(5)),        // tight wrap
            (Id(7), Id(7)),                   // degenerate: whole ring
            (Id(u64::MAX), Id(u64::MAX - 3)), // wrap, bounds on stored keys
        ];
        for (from, to) in arcs {
            let got = keys_in_range(&map, from, to);
            let mut expect: Vec<Id> = map
                .keys()
                .copied()
                .filter(|k| k.in_half_open(from, to))
                .collect();
            let mut sorted = got.clone();
            sorted.sort();
            expect.sort();
            assert_eq!(sorted, expect, "arc ({from:?}, {to:?}]");
        }
    }

    #[test]
    fn wraparound_range_is_clockwise_ordered() {
        let mut map = BTreeMap::new();
        for k in [3u64, 900, u64::MAX - 1] {
            map.insert(Id(k), b("v"));
        }
        // (MAX-5, 5]: clockwise walk passes MAX-1 before 3.
        assert_eq!(
            keys_in_range(&map, Id(u64::MAX - 5), Id(5)),
            vec![Id(u64::MAX - 1), Id(3)]
        );
    }

    #[test]
    fn promote_replicas_takes_over_range() {
        let mut s = Storage::new();
        s.put_replica(Id(10), b("x"));
        s.put_replica(Id(50), b("y"));
        let n = s.promote_replicas_in_range(Id(0), Id(20));
        assert_eq!(n, 1);
        assert_eq!(s.get_primary(Id(10)), Some(&b("x")));
        assert_eq!(s.get_primary(Id(50)), None);
        assert_eq!(s.replica_len(), 1);
    }

    #[test]
    fn promote_does_not_clobber_existing_primary() {
        let mut s = Storage::new();
        s.put_primary(Id(10), b("new"));
        s.put_replica(Id(10), b("old"));
        s.promote_replicas_in_range(Id(0), Id(20));
        assert_eq!(s.get_primary(Id(10)), Some(&b("new")));
    }

    #[test]
    fn journaling_mirrors_every_mutation() {
        let mut s = Storage::new();
        // Off by default: no deltas, no cost.
        s.put_primary(Id(1), b("a"));
        assert!(s.take_deltas().is_empty());

        s.set_journaling(true);
        s.put_primary(Id(1), b("a2"));
        s.put_replica(Id(2), b("r"));
        assert!(s.put_primary_first_writer(Id(3), b("fw")).is_ok());
        assert!(s.put_primary_first_writer(Id(3), b("other")).is_err());
        s.remove(Id(1));
        let deltas = s.take_deltas();
        assert_eq!(
            deltas,
            vec![
                StorageDelta::PutPrimary {
                    key: Id(1),
                    value: b("a2")
                },
                StorageDelta::PutReplica {
                    key: Id(2),
                    value: b("r")
                },
                StorageDelta::PutPrimary {
                    key: Id(3),
                    value: b("fw")
                },
                StorageDelta::DelPrimary { key: Id(1) },
            ]
        );
        assert!(s.take_deltas().is_empty(), "drained");

        // Range ops journal per-key moves.
        s.promote_replicas_in_range(Id(0), Id(10));
        let deltas = s.take_deltas();
        assert_eq!(
            deltas,
            vec![
                StorageDelta::DelReplica { key: Id(2) },
                StorageDelta::PutPrimary {
                    key: Id(2),
                    value: b("r")
                },
            ]
        );
        s.extract_primary_range(Id(1), Id(3));
        let deltas = s.take_deltas();
        assert!(deltas.contains(&StorageDelta::DelPrimary { key: Id(2) }));
        assert!(deltas.contains(&StorageDelta::PutReplica {
            key: Id(2),
            value: b("r")
        }));
    }

    #[test]
    fn prune_replicas() {
        let mut s = Storage::new();
        s.put_replica(Id(10), b("x"));
        s.put_replica(Id(30), b("y"));
        assert_eq!(s.prune_replicas_in_range(Id(5), Id(15)), 1);
        assert_eq!(s.replica_len(), 1);
    }
}
