//! Interned document names (shared by the timestamping and log layers).
//!
//! A document name crosses every layer of a request round-trip: the user
//! peer keys its replica table with it, the `Validate` message carries it,
//! the master stores it per key, every log record embeds it, and each event
//! records it. As plain `String`s that was ~15 heap copies per round-trip.
//! [`DocName`] wraps an `Arc<str>`: clones are a reference-count bump, and
//! equality/ordering/hashing delegate to the string content, so it drops
//! into `BTreeMap`/`HashMap` keys unchanged (including `&str` lookups via
//! `Borrow`).

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An interned, cheap-to-clone document name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocName(Arc<str>);

impl DocName {
    /// Intern a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        DocName(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for DocName {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        &self.0
    }
}

/// Enables `&str` lookups in maps keyed by `DocName` (consistent with the
/// derived `Eq`/`Ord`/`Hash`, which all delegate to the string content).
impl Borrow<str> for DocName {
    #[inline]
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for DocName {
    fn from(s: &str) -> Self {
        DocName::new(s)
    }
}

impl From<String> for DocName {
    fn from(s: String) -> Self {
        DocName(Arc::from(s))
    }
}

impl From<&DocName> for DocName {
    fn from(s: &DocName) -> Self {
        s.clone()
    }
}

impl PartialEq<str> for DocName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for DocName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for DocName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for DocName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, HashMap};

    #[test]
    fn clones_share_the_allocation() {
        let a = DocName::new("wiki/Main");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(DocName::new("x"), DocName::from("x".to_string()));
        assert_eq!(DocName::new("x"), "x");
        assert_ne!(DocName::new("x"), "y");
    }

    #[test]
    fn str_lookup_in_maps() {
        let mut bt: BTreeMap<DocName, u32> = BTreeMap::new();
        bt.insert(DocName::new("a"), 1);
        assert_eq!(bt.get("a"), Some(&1));
        assert!(bt.contains_key("a"));
        let mut hm: HashMap<DocName, u32> = HashMap::new();
        hm.insert(DocName::new("b"), 2);
        assert_eq!(hm.get("b"), Some(&2));
    }

    #[test]
    fn ordering_matches_str() {
        let mut v = vec![DocName::new("zeta"), DocName::new("alpha")];
        v.sort();
        assert_eq!(v[0].as_str(), "alpha");
    }

    #[test]
    fn display_and_debug() {
        let d = DocName::new("wiki/Main");
        assert_eq!(format!("{d}"), "wiki/Main");
        assert_eq!(format!("{d:?}"), "\"wiki/Main\"");
    }
}
