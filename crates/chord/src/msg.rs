//! Chord wire messages and the node/operation handles they carry.

use bytes::Bytes;

use crate::id::Id;
use crate::sha1::Digest;
use simnet::NodeId;

/// A node's full address: transport address plus ring position.
///
/// (In the paper's prototype this pair is a Java RMI remote reference plus
/// the Open Chord id.)
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef {
    /// Transport address in the simulator.
    pub addr: NodeId,
    /// Position on the identifier ring.
    pub id: Id,
}

impl NodeRef {
    /// Construct from the two halves.
    pub fn new(addr: NodeId, id: Id) -> Self {
        NodeRef { addr, id }
    }
}

impl std::fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.addr, self.id)
    }
}

/// Handle for an asynchronous DHT operation, local to the issuing node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u64);

impl std::fmt::Debug for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Write-conflict policy for [`ChordMsg::Put`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PutMode {
    /// Unconditional overwrite (used for mutable records, e.g. last-ts
    /// backups).
    Overwrite,
    /// First writer wins: if a *different* value is already stored under the
    /// key, the put is rejected and the existing value returned. The P2P-Log
    /// uses this so the log itself arbitrates duelling masters (a hardening
    /// extension documented in DESIGN.md §6).
    FirstWriter,
    /// Epoch-ranked arbitration: the value's embedded rank (see
    /// `storage::value_rank`) must clear the key's fence floor; a higher
    /// rank overwrites a superseded record, equal ranks keep the first
    /// writer. Fenced-mode publishes use this so a stale master's record
    /// can never land at a slot the new epoch has fenced.
    Ranked,
}

/// The Chord protocol messages.
///
/// Lookup uses recursive forwarding with a direct reply to the origin, as in
/// the Chord paper; storage ops are two-phase (lookup, then a direct
/// `Put`/`Get` to the owner).
#[derive(Clone, Debug)]
pub enum ChordMsg {
    /// Route a lookup for `target` toward its successor.
    FindSuccessor {
        /// Origin's operation handle (echoed in the reply).
        op: OpId,
        /// The id whose successor is sought.
        target: Id,
        /// Node to send the answer to.
        origin: NodeRef,
        /// Hops so far (loop guard + metrics).
        hops: u32,
    },
    /// Lookup answer, sent directly to the origin.
    FoundSuccessor {
        /// Echoed operation handle.
        op: OpId,
        /// The node currently responsible for the target id.
        owner: NodeRef,
        /// Total routing hops.
        hops: u32,
    },
    /// Stabilization: ask a successor for its predecessor + successor list.
    GetPredecessor {
        /// Operation handle.
        op: OpId,
    },
    /// Stabilization answer.
    PredecessorIs {
        /// Echoed operation handle.
        op: OpId,
        /// The responder's current predecessor.
        pred: Option<NodeRef>,
        /// The responder's successor list (for list repair).
        succ_list: Vec<NodeRef>,
    },
    /// "I might be your predecessor."
    Notify {
        /// The candidate predecessor.
        candidate: NodeRef,
    },
    /// Failure-detector probe.
    Ping {
        /// Operation handle.
        op: OpId,
    },
    /// Probe answer.
    Pong {
        /// Echoed operation handle.
        op: OpId,
    },
    /// Store a value at the node responsible for `key`.
    Put {
        /// Operation handle.
        op: OpId,
        /// Storage key (already hashed onto the ring).
        key: Id,
        /// Value bytes.
        value: Bytes,
        /// Conflict policy.
        mode: PutMode,
        /// Node to ack.
        origin: NodeRef,
    },
    /// Acknowledge a `Put`.
    PutAck {
        /// Echoed operation handle.
        op: OpId,
        /// False iff rejected by [`PutMode::FirstWriter`] conflict.
        ok: bool,
        /// On conflict, the value already present.
        existing: Option<Bytes>,
    },
    /// Fetch the value stored under `key`.
    Get {
        /// Operation handle.
        op: OpId,
        /// Storage key.
        key: Id,
        /// Node to answer.
        origin: NodeRef,
    },
    /// Answer a `Get`.
    GetReply {
        /// Echoed operation handle.
        op: OpId,
        /// The stored value, if any (checks primary then replica bucket).
        value: Option<Bytes>,
        /// True when the responder is (or believes it is) the key's owner —
        /// a `None` with `authoritative` set is a real miss, otherwise the
        /// origin should re-resolve ownership and retry.
        authoritative: bool,
    },
    /// Owner pushing backup copies of its primary items to a successor.
    Replicate {
        /// `(key, value)` pairs to hold as replicas.
        items: Vec<(Id, Bytes)>,
    },
    /// Responsibility handoff: these keys now belong to the receiver.
    TransferKeys {
        /// `(key, value)` pairs the receiver becomes primary for.
        items: Vec<(Id, Bytes)>,
    },
    /// Graceful leave, to the successor: primary items + the leaver's
    /// predecessor so the successor can relink.
    LeaveToSucc {
        /// The leaver's predecessor (successor's probable new predecessor).
        pred_of_leaver: Option<NodeRef>,
        /// All primary items the successor must take over.
        items: Vec<(Id, Bytes)>,
    },
    /// Graceful leave, to the predecessor: points it at the leaver's
    /// successor.
    LeaveToPred {
        /// The leaver's successor (predecessor's probable new successor).
        succ_of_leaver: NodeRef,
    },
    /// Anti-entropy phase 1 (owner → replica): the Merkle root of the
    /// owner's primary range. The replica compares against its own replica
    /// summary over the same range and either acks (in sync) or starts a
    /// descent with [`ChordMsg::SyncDiff`].
    SyncRoot {
        /// Owner's `store_version` when the root was computed; echoed
        /// through the whole exchange so stale rounds are discarded.
        ver: u64,
        /// Range start, exclusive (the owner's predecessor id).
        from: Id,
        /// Range end, inclusive (the owner's id).
        to: Id,
        /// Merkle root over the owner's primary items in `(from, to]`.
        root: Digest,
    },
    /// Anti-entropy descent (replica → owner): the tree nodes whose
    /// digests the replica wants expanded. Depth 0 prefix 0 is the root's
    /// children; a leaf request returns per-key entry digests.
    SyncDiff {
        /// Echoed round version.
        ver: u64,
        /// `(depth, prefix)` tree coordinates to expand.
        wants: Vec<(u8, u32)>,
        /// Keys the replica proved missing or stale — the owner answers
        /// with a `Replicate` carrying exactly these records.
        need: Vec<Id>,
    },
    /// Anti-entropy expansion (owner → replica): children digests for the
    /// requested tree nodes, or per-key entry digests for leaves.
    SyncNodes {
        /// Echoed round version.
        ver: u64,
        /// Expanded interior nodes: coordinates plus non-empty child
        /// digests (child index, digest).
        nodes: Vec<(u8, u32, Vec<(u8, Digest)>)>,
        /// Expanded leaf buckets: bucket number plus per-key entry
        /// digests, in key order. An empty list is meaningful — it tells
        /// the replica to drop everything it holds in that bucket.
        leaves: Vec<(u32, Vec<(Id, Digest)>)>,
    },
    /// Anti-entropy completion (replica → owner): the replica's summary
    /// now matches `ver`'s root; the owner advances its version cursor.
    SyncAck {
        /// The round version being acknowledged.
        ver: u64,
    },
    /// Raise the fence floor on `key` at its owner: after the ack, no
    /// record ranked below `floor` can land there. Sent by a fencing
    /// master to every log location of the slot it is about to serve.
    Fence {
        /// Operation handle.
        op: OpId,
        /// Storage key (a log location of the fenced slot).
        key: Id,
        /// Minimum rank (master epoch) a record must carry to land.
        floor: u64,
        /// The fencing master's identity bits (ring id), so a master's
        /// own retry is distinguishable from a rival at the same floor.
        origin: NodeRef,
    },
    /// Acknowledge a [`ChordMsg::Fence`].
    FenceAck {
        /// Echoed operation handle.
        op: OpId,
        /// True iff the floor is now in force at this owner.
        ok: bool,
        /// The floor currently in force (the rival's, when `!ok`).
        current: u64,
        /// True when a primary record already occupies the fenced key —
        /// the fenced slot was already published and must be re-probed.
        occupied: bool,
    },
}
