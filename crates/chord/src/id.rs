//! Ring identifiers and modular interval arithmetic on the 2^64 Chord ring.
//!
//! Every placement decision in Chord reduces to "is `x` in the arc between
//! `a` and `b`, walking clockwise?" — these predicates are subtle under
//! wrap-around, so they live here with exhaustive tests and are used
//! everywhere else verbatim.

use std::fmt;

use crate::sha1::{sha1_u64, Sha1};

/// Number of bits in the identifier space (and finger-table size).
pub const M: usize = 64;

/// A position on the 2^64 identifier ring.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(pub u64);

impl Id {
    /// Hash an arbitrary byte string onto the ring (SHA-1, top 64 bits).
    pub fn hash(data: &[u8]) -> Id {
        Id(sha1_u64(data))
    }

    /// Hash a name with a one-byte domain-separation salt. The timestamp hash
    /// `ht` and the replication hashes `h1..hn` are all derived this way.
    /// Streams `salt ':' data` through the hasher — no temporary buffer.
    pub fn hash_salted(salt: u8, data: &[u8]) -> Id {
        let mut s = Id::salted_hasher(salt);
        s.update(data);
        Id(s.finalize_u64())
    }

    /// A hasher pre-seeded with the `salt ':'` domain-separation prefix.
    /// Callers absorb the name (and any suffix) and finalize; `p2plog`
    /// caches these as per-document midstates.
    pub fn salted_hasher(salt: u8) -> Sha1 {
        let mut s = Sha1::new();
        s.update(&[salt, b':']);
        s
    }

    /// `self + 2^exp (mod 2^64)` — finger-table start positions.
    #[inline]
    pub fn plus_pow2(self, exp: usize) -> Id {
        debug_assert!(exp < M);
        Id(self.0.wrapping_add(1u64 << exp))
    }

    /// Clockwise distance from `self` to `other`.
    #[inline]
    pub fn distance_to(self, other: Id) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Is `self` in the **open** arc `(a, b)` walking clockwise?
    ///
    /// Convention for degenerate bounds `a == b`: the arc is the whole ring
    /// minus the endpoint (a single-node ring owns everything).
    #[inline]
    pub fn in_open(self, a: Id, b: Id) -> bool {
        if a == b {
            self != a
        } else {
            a.distance_to(self) > 0 && a.distance_to(self) < a.distance_to(b)
        }
    }

    /// Is `self` in the **half-open** arc `(a, b]` walking clockwise?
    ///
    /// Convention for `a == b`: the whole ring (every id qualifies). This is
    /// the "key ownership" predicate: node `b` with predecessor `a` owns key
    /// `k` iff `k.in_half_open(a, b)`.
    #[inline]
    pub fn in_half_open(self, a: Id, b: Id) -> bool {
        if a == b {
            true
        } else {
            let d = a.distance_to(self);
            d > 0 && d <= a.distance_to(b)
        }
    }

    /// Raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Short prefix is enough to distinguish nodes in traces.
        write!(f, "#{:016x}", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}", self.0 >> 48)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Id = Id(100);
    const B: Id = Id(200);

    #[test]
    fn open_interval_no_wrap() {
        assert!(Id(150).in_open(A, B));
        assert!(!Id(100).in_open(A, B));
        assert!(!Id(200).in_open(A, B));
        assert!(!Id(50).in_open(A, B));
        assert!(!Id(250).in_open(A, B));
    }

    #[test]
    fn half_open_interval_no_wrap() {
        assert!(Id(150).in_half_open(A, B));
        assert!(Id(200).in_half_open(A, B));
        assert!(!Id(100).in_half_open(A, B));
        assert!(!Id(201).in_half_open(A, B));
    }

    #[test]
    fn intervals_wrap_around_zero() {
        let a = Id(u64::MAX - 10);
        let b = Id(10);
        assert!(Id(u64::MAX).in_open(a, b));
        assert!(Id(0).in_open(a, b));
        assert!(Id(5).in_open(a, b));
        assert!(!Id(10).in_open(a, b));
        assert!(Id(10).in_half_open(a, b));
        assert!(!Id(11).in_half_open(a, b));
        assert!(!Id(u64::MAX - 10).in_half_open(a, b));
    }

    #[test]
    fn degenerate_interval_conventions() {
        // (a, a] covers the whole ring — a single node owns every key.
        assert!(Id(5).in_half_open(A, A));
        assert!(Id(100).in_half_open(A, A));
        // (a, a) covers everything but a itself.
        assert!(Id(5).in_open(A, A));
        assert!(!Id(100).in_open(A, A));
    }

    #[test]
    fn distance_wraps() {
        assert_eq!(Id(10).distance_to(Id(20)), 10);
        assert_eq!(Id(20).distance_to(Id(10)), u64::MAX - 9);
        assert_eq!(Id(5).distance_to(Id(5)), 0);
    }

    #[test]
    fn plus_pow2_wraps() {
        assert_eq!(Id(0).plus_pow2(3), Id(8));
        assert_eq!(Id(u64::MAX).plus_pow2(0), Id(0));
        assert_eq!(Id(1).plus_pow2(63), Id((1u64 << 63) + 1));
    }

    #[test]
    fn salted_hashes_are_independent() {
        let a = Id::hash_salted(0, b"doc");
        let b = Id::hash_salted(1, b"doc");
        let c = Id::hash_salted(2, b"doc");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, Id::hash_salted(0, b"doc"));
    }

    #[test]
    fn membership_is_exclusive_of_lower_bound() {
        // Ownership predicate: key exactly at predecessor belongs to pred.
        let pred = Id(1000);
        let me = Id(2000);
        assert!(!pred.in_half_open(pred, me));
        assert!(me.in_half_open(pred, me));
    }
}
