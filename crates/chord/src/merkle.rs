//! Generic domain-separated SHA-1 Merkle-tree hashing, shared by the log
//! store's tamper-evidence layer (`store::merkle`) and the anti-entropy
//! replication digests ([`crate::sync`]).
//!
//! The construction follows the Merkle/KDF log-notarization design of
//! Barontini (arXiv:2110.02103): leaf and interior domains are separated
//! by a prefix byte (the classic second-preimage fix), an odd node is
//! promoted unpaired to the next level (Bitcoin-style duplication would
//! let two different inputs share a root), and the empty tree has a fixed
//! sentinel root.

use crate::sha1::{sha1, Digest, Sha1};

/// Domain-separation prefixes: a leaf can never be confused with an
/// interior node.
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// Hash a raw leaf digest into its tree-leaf form.
pub fn leaf(digest: &Digest) -> Digest {
    let mut h = Sha1::new();
    h.update(&[LEAF_PREFIX]);
    h.update(digest);
    h.finalize()
}

/// Hash two child digests into their parent.
pub fn combine(a: &Digest, b: &Digest) -> Digest {
    let mut h = Sha1::new();
    h.update(&[NODE_PREFIX]);
    h.update(a);
    h.update(b);
    h.finalize()
}

/// Merkle root over `leaves` (already leaf-hashed). An empty tree has the
/// fixed root `sha1("p2p-ltr/empty-merkle")`; an odd node is promoted
/// unpaired to the next level.
pub fn root(leaves: &[Digest]) -> Digest {
    if leaves.is_empty() {
        return sha1(b"p2p-ltr/empty-merkle");
    }
    let mut level: Vec<Digest> = leaves.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [a, b] => next.push(combine(a, b)),
                [a] => next.push(*a),
                _ => unreachable!("chunks(2)"),
            }
        }
        level = next;
    }
    level[0]
}

/// Convenience: leaf-hash raw entry digests, then compute the root.
pub fn root_of_entry_hashes(entry_hashes: &[Digest]) -> Digest {
    let leaves: Vec<Digest> = entry_hashes.iter().map(leaf).collect();
    root(&leaves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(b: u8) -> Digest {
        [b; 20]
    }

    #[test]
    fn empty_root_is_fixed() {
        assert_eq!(root(&[]), root(&[]));
        assert_ne!(root(&[]), root(&[leaf(&d(0))]));
    }

    #[test]
    fn single_leaf_root_is_the_leaf() {
        let l = leaf(&d(7));
        assert_eq!(root(&[l]), l);
    }

    #[test]
    fn order_matters() {
        let a = leaf(&d(1));
        let b = leaf(&d(2));
        assert_ne!(root(&[a, b]), root(&[b, a]));
    }

    #[test]
    fn any_leaf_change_moves_the_root() {
        let leaves: Vec<Digest> = (0u8..7).map(|i| leaf(&d(i))).collect();
        let base = root(&leaves);
        for i in 0..leaves.len() {
            let mut changed = leaves.clone();
            changed[i] = leaf(&d(0xEE));
            assert_ne!(root(&changed), base, "leaf {i}");
        }
        // Dropping the tail moves it too (length extension is visible).
        assert_ne!(root(&leaves[..6]), base);
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A two-leaf tree's root must differ from the leaf-hash of the
        // concatenation — the prefixes keep the domains apart.
        let a = d(3);
        let b = d(4);
        let two = root(&[leaf(&a), leaf(&b)]);
        let mut cat = Vec::new();
        cat.extend_from_slice(&a);
        cat.extend_from_slice(&b);
        assert_ne!(two, sha1(&cat));
    }
}
