//! Integration tests: Chord rings over the discrete-event simulator.
//!
//! These drive whole rings through joins, lookups, storage, crashes and
//! graceful departures, checking the protocol against a sorted-ring oracle.

use bytes::Bytes;
use chord::harness::{build_ring, oracle_owner, ChordDriver, Cmd, DriverMsg};
use chord::{ChordConfig, ChordEvent, Id, NodeRef, PutMode};
use simnet::{Duration, NetConfig, NodeId, Sim};

fn lan_sim(seed: u64) -> Sim<DriverMsg> {
    Sim::new(seed, NetConfig::lan())
}

fn settle(sim: &mut Sim<DriverMsg>, secs: u64) {
    sim.run_for(Duration::from_secs(secs));
}

/// All alive drivers as (addr, ring ref), sorted by ring id.
fn alive_ring(sim: &Sim<DriverMsg>) -> Vec<NodeRef> {
    let mut v: Vec<NodeRef> = sim
        .alive_nodes()
        .into_iter()
        .filter_map(|a| sim.node_as::<ChordDriver>(a).map(|d| d.node.me()))
        .collect();
    v.sort_by_key(|r| r.id);
    v
}

/// Assert every alive node's successor/predecessor pointers match the
/// sorted ring.
fn assert_ring_consistent(sim: &Sim<DriverMsg>) {
    let ring = alive_ring(sim);
    let n = ring.len();
    assert!(n >= 1);
    for (i, r) in ring.iter().enumerate() {
        let d = sim.node_as::<ChordDriver>(r.addr).unwrap();
        let expect_succ = ring[(i + 1) % n];
        let expect_pred = ring[(i + n - 1) % n];
        if n == 1 {
            assert_eq!(d.node.successor().id, r.id, "singleton successor");
        } else {
            assert_eq!(
                d.node.successor().id,
                expect_succ.id,
                "successor of {:?} (node {i} of {n})",
                r
            );
            let pred = d.node.predecessor().expect("predecessor unknown");
            assert_eq!(pred.id, expect_pred.id, "predecessor of {:?}", r);
        }
    }
}

#[test]
fn ring_of_16_converges() {
    let mut sim = lan_sim(1);
    let cfg = ChordConfig::default();
    let refs = build_ring(&mut sim, 16, &cfg, Duration::from_millis(200));
    assert_eq!(refs.len(), 16);
    settle(&mut sim, 30);
    assert_ring_consistent(&sim);
    // Everyone reports joined.
    for r in &refs {
        let d = sim.node_as::<ChordDriver>(r.addr).unwrap();
        assert!(d.node.is_joined(), "{:?} not joined", r);
        assert!(d.events.iter().any(|e| matches!(e, ChordEvent::Joined)));
    }
}

#[test]
fn two_node_bootstrap() {
    let mut sim = lan_sim(2);
    let cfg = ChordConfig::default();
    build_ring(&mut sim, 2, &cfg, Duration::from_millis(100));
    settle(&mut sim, 10);
    assert_ring_consistent(&sim);
}

#[test]
fn lookups_match_sorted_ring_oracle() {
    let mut sim = lan_sim(3);
    let cfg = ChordConfig::default();
    let refs = build_ring(&mut sim, 24, &cfg, Duration::from_millis(150));
    settle(&mut sim, 30);
    assert_ring_consistent(&sim);

    // Issue 60 lookups from varied origins.
    let keys: Vec<Id> = (0..60)
        .map(|i| Id::hash(format!("key-{i}").as_bytes()))
        .collect();
    for (i, &key) in keys.iter().enumerate() {
        let origin = refs[i % refs.len()].addr;
        sim.send_external(origin, DriverMsg::Cmd(Cmd::Lookup(key)));
    }
    settle(&mut sim, 10);

    let ring = alive_ring(&sim);
    let mut checked = 0;
    for r in &ring {
        let d = sim.node_as::<ChordDriver>(r.addr).unwrap();
        for c in &d.completions {
            if let ChordEvent::LookupDone { owner, .. } = &c.event {
                // Find which key this was: we can't recover it from the op,
                // so instead check the owner is *some* oracle owner — i.e.
                // the owner owns the key range it claims. Stronger check
                // below via per-key lookups.
                let _ = owner;
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 60, "all lookups completed");

    // Stronger per-key check: issue one lookup per key from a single node
    // and verify against the oracle.
    let probe = refs[0].addr;
    for &key in &keys {
        sim.send_external(probe, DriverMsg::Cmd(Cmd::Lookup(key)));
    }
    let before = sim.node_as::<ChordDriver>(probe).unwrap().completions.len();
    let _ = before;
    settle(&mut sim, 10);
    let d = sim.node_as::<ChordDriver>(probe).unwrap();
    let ring = alive_ring(&sim);
    let tail: Vec<_> = d.completions.iter().rev().take(keys.len()).collect();
    assert_eq!(tail.len(), keys.len());
    // Completions come back in some order; verify each claimed owner is the
    // oracle owner of *some* key and collect per-op targets by re-deriving:
    // lookups were issued in key order and ops are monotonic, so sort by op.
    let mut with_ops: Vec<_> = tail
        .iter()
        .map(|c| {
            let owner = match &c.event {
                ChordEvent::LookupDone { owner, .. } => *owner,
                other => panic!("lookup failed: {other:?}"),
            };
            (c.op, owner)
        })
        .collect();
    with_ops.sort_by_key(|(op, _)| *op);
    for ((_, owner), &key) in with_ops.iter().zip(keys.iter()) {
        let expect = oracle_owner(&ring, key);
        assert_eq!(
            owner.id, expect.id,
            "owner mismatch for key {key:?}: got {owner:?} want {expect:?}"
        );
    }
}

#[test]
fn put_then_get_from_other_node() {
    let mut sim = lan_sim(4);
    let cfg = ChordConfig::default();
    let refs = build_ring(&mut sim, 8, &cfg, Duration::from_millis(150));
    settle(&mut sim, 20);

    let key = Id::hash(b"document-alpha");
    let val = Bytes::from_static(b"patch contents");
    sim.send_external(
        refs[1].addr,
        DriverMsg::Cmd(Cmd::Put(key, val.clone(), PutMode::Overwrite)),
    );
    settle(&mut sim, 5);
    sim.send_external(refs[5].addr, DriverMsg::Cmd(Cmd::Get(key)));
    settle(&mut sim, 5);

    let d = sim.node_as::<ChordDriver>(refs[5].addr).unwrap();
    let got = d
        .completions
        .iter()
        .rev()
        .find_map(|c| match &c.event {
            ChordEvent::GetDone { value, ok, .. } => Some((value.clone(), *ok)),
            _ => None,
        })
        .expect("no get completion");
    assert!(got.1);
    assert_eq!(got.0, Some(val));
}

#[test]
fn get_of_absent_key_is_authoritative_miss() {
    let mut sim = lan_sim(5);
    let cfg = ChordConfig::default();
    let refs = build_ring(&mut sim, 6, &cfg, Duration::from_millis(150));
    settle(&mut sim, 20);
    sim.send_external(
        refs[2].addr,
        DriverMsg::Cmd(Cmd::Get(Id::hash(b"never-written"))),
    );
    settle(&mut sim, 5);
    let d = sim.node_as::<ChordDriver>(refs[2].addr).unwrap();
    let (value, ok) = d
        .completions
        .iter()
        .rev()
        .find_map(|c| match &c.event {
            ChordEvent::GetDone { value, ok, .. } => Some((value.clone(), *ok)),
            _ => None,
        })
        .expect("no completion");
    assert!(ok, "authoritative miss should not be an error");
    assert_eq!(value, None);
}

#[test]
fn first_writer_wins_reports_conflict() {
    let mut sim = lan_sim(6);
    let cfg = ChordConfig::default();
    let refs = build_ring(&mut sim, 6, &cfg, Duration::from_millis(100));
    settle(&mut sim, 20);

    let key = Id::hash(b"contested");
    sim.send_external(
        refs[0].addr,
        DriverMsg::Cmd(Cmd::Put(
            key,
            Bytes::from_static(b"A"),
            PutMode::FirstWriter,
        )),
    );
    settle(&mut sim, 5);
    sim.send_external(
        refs[3].addr,
        DriverMsg::Cmd(Cmd::Put(
            key,
            Bytes::from_static(b"B"),
            PutMode::FirstWriter,
        )),
    );
    settle(&mut sim, 5);

    let loser = sim.node_as::<ChordDriver>(refs[3].addr).unwrap();
    let conflict = loser
        .completions
        .iter()
        .rev()
        .find_map(|c| match &c.event {
            ChordEvent::PutDone { ok, conflict, .. } => Some((*ok, conflict.clone())),
            _ => None,
        })
        .expect("no put completion");
    assert!(!conflict.0, "second writer must lose");
    assert_eq!(conflict.1, Some(Bytes::from_static(b"A")));
}

#[test]
fn data_survives_owner_crash_via_replicas() {
    let mut sim = lan_sim(7);
    let mut cfg = ChordConfig::default();
    cfg.storage_replicas = 2;
    let refs = build_ring(&mut sim, 10, &cfg, Duration::from_millis(150));
    settle(&mut sim, 25);

    // Store 20 items.
    let keys: Vec<Id> = (0..20)
        .map(|i| Id::hash(format!("survivor-{i}").as_bytes()))
        .collect();
    for (i, &k) in keys.iter().enumerate() {
        sim.send_external(
            refs[i % refs.len()].addr,
            DriverMsg::Cmd(Cmd::Put(
                k,
                Bytes::copy_from_slice(format!("value-{i}").as_bytes()),
                PutMode::Overwrite,
            )),
        );
    }
    settle(&mut sim, 10);

    // Crash the owners of the first five keys (distinct nodes only).
    let ring = alive_ring(&sim);
    let mut crashed: Vec<NodeId> = Vec::new();
    for &k in keys.iter().take(5) {
        let owner = oracle_owner(&ring, k);
        if !crashed.contains(&owner.addr) {
            crashed.push(owner.addr);
            sim.crash(owner.addr);
        }
        if crashed.len() >= 2 {
            break; // keep a healthy majority
        }
    }
    assert!(!crashed.is_empty());
    settle(&mut sim, 30); // stabilization + suspect expiry + repair

    // Every key is still retrievable from a surviving node.
    let probe = alive_ring(&sim)[0].addr;
    for &k in &keys {
        sim.send_external(probe, DriverMsg::Cmd(Cmd::Get(k)));
    }
    settle(&mut sim, 20);
    let d = sim.node_as::<ChordDriver>(probe).unwrap();
    let gets: Vec<_> = d
        .completions
        .iter()
        .filter_map(|c| match &c.event {
            ChordEvent::GetDone { value, ok, .. } => Some((value.clone(), *ok)),
            _ => None,
        })
        .collect();
    assert_eq!(gets.len(), keys.len());
    let missing = gets.iter().filter(|(v, _)| v.is_none()).count();
    assert_eq!(
        missing,
        0,
        "{missing} of {} keys lost after crash",
        keys.len()
    );
}

#[test]
fn graceful_leave_hands_over_keys_and_relinks_ring() {
    let mut sim = lan_sim(8);
    let cfg = ChordConfig::default();
    let refs = build_ring(&mut sim, 8, &cfg, Duration::from_millis(150));
    settle(&mut sim, 20);

    let keys: Vec<Id> = (0..12)
        .map(|i| Id::hash(format!("leave-{i}").as_bytes()))
        .collect();
    for &k in &keys {
        sim.send_external(
            refs[0].addr,
            DriverMsg::Cmd(Cmd::Put(k, Bytes::from_static(b"v"), PutMode::Overwrite)),
        );
    }
    settle(&mut sim, 10);

    // Gracefully remove two nodes (not the probe node).
    sim.send_external(refs[3].addr, DriverMsg::Cmd(Cmd::Leave));
    settle(&mut sim, 5);
    sim.send_external(refs[6].addr, DriverMsg::Cmd(Cmd::Leave));
    settle(&mut sim, 20);

    assert_ring_consistent(&sim);
    for &k in &keys {
        sim.send_external(refs[0].addr, DriverMsg::Cmd(Cmd::Get(k)));
    }
    settle(&mut sim, 10);
    let d = sim.node_as::<ChordDriver>(refs[0].addr).unwrap();
    let gets: Vec<_> = d
        .completions
        .iter()
        .filter_map(|c| match &c.event {
            ChordEvent::GetDone { value, .. } => Some(value.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(gets.len(), keys.len());
    assert!(
        gets.iter().all(|v| v.is_some()),
        "keys lost on graceful leave"
    );
}

#[test]
fn late_joiner_takes_over_its_range() {
    let mut sim = lan_sim(9);
    let cfg = ChordConfig::default();
    let refs = build_ring(&mut sim, 8, &cfg, Duration::from_millis(150));
    settle(&mut sim, 20);

    let keys: Vec<Id> = (0..30)
        .map(|i| Id::hash(format!("join-{i}").as_bytes()))
        .collect();
    for &k in &keys {
        sim.send_external(
            refs[0].addr,
            DriverMsg::Cmd(Cmd::Put(k, Bytes::from_static(b"v"), PutMode::Overwrite)),
        );
    }
    settle(&mut sim, 10);

    // Add a brand-new node.
    let new_id = Id::hash(b"late-joiner");
    let addr = NodeId(sim.node_count() as u32);
    let me = NodeRef::new(addr, new_id);
    let assigned = sim.add_node(ChordDriver::new(me, cfg.clone(), Some(refs[0])));
    assert_eq!(assigned, addr);
    settle(&mut sim, 30);

    assert_ring_consistent(&sim);
    // The joiner is now the oracle owner for part of the space; data must
    // have moved to it for any of our keys it owns.
    let ring = alive_ring(&sim);
    let joiner = sim.node_as::<ChordDriver>(addr).unwrap();
    let owned: Vec<Id> = keys
        .iter()
        .copied()
        .filter(|&k| oracle_owner(&ring, k).id == new_id)
        .collect();
    for k in &owned {
        assert!(
            joiner.node.storage().get_primary(*k).is_some(),
            "joiner missing primary for {k:?}"
        );
    }
    // And everything is still retrievable.
    for &k in &keys {
        sim.send_external(refs[1].addr, DriverMsg::Cmd(Cmd::Get(k)));
    }
    settle(&mut sim, 10);
    let d = sim.node_as::<ChordDriver>(refs[1].addr).unwrap();
    let ok = d
        .completions
        .iter()
        .filter(|c| matches!(&c.event, ChordEvent::GetDone { value: Some(_), .. }))
        .count();
    assert_eq!(ok, keys.len());
}

#[test]
fn lookup_hops_scale_logarithmically() {
    let mut sim = lan_sim(10);
    let cfg = ChordConfig::default();
    let refs = build_ring(&mut sim, 64, &cfg, Duration::from_millis(100));
    settle(&mut sim, 60); // let fingers converge

    for i in 0..200 {
        let key = Id::hash(format!("hopkey-{i}").as_bytes());
        sim.send_external(refs[i % refs.len()].addr, DriverMsg::Cmd(Cmd::Lookup(key)));
    }
    settle(&mut sim, 10);
    let hops = sim.metrics().summary("chord.lookup_hops");
    assert_eq!(hops.count, 200, "all lookups completed");
    // log2(64) = 6; allow generous slack for imperfect fingers.
    assert!(hops.mean <= 8.0, "mean hops {:.2} too high", hops.mean);
    assert_eq!(sim.metrics().counter("chord.lookups_failed"), 0);
}

#[test]
fn determinism_full_ring_run() {
    let run = |seed: u64| -> (u64, u64, u64) {
        let mut sim = lan_sim(seed);
        let cfg = ChordConfig::default();
        let refs = build_ring(&mut sim, 12, &cfg, Duration::from_millis(150));
        settle(&mut sim, 15);
        for i in 0..20 {
            let key = Id::hash(format!("det-{i}").as_bytes());
            sim.send_external(
                refs[i % refs.len()].addr,
                DriverMsg::Cmd(Cmd::Put(key, Bytes::from_static(b"x"), PutMode::Overwrite)),
            );
        }
        settle(&mut sim, 10);
        (
            sim.metrics().counter("sim.msgs_delivered"),
            sim.metrics().counter("chord.puts_ok"),
            sim.metrics().counter("sim.timers_fired"),
        )
    };
    assert_eq!(run(42), run(42));
}
