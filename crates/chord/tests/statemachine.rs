//! Direct unit tests of the Chord state machine — no simulator, feeding
//! messages and timers by hand and inspecting the returned actions. These
//! reach protocol branches that full-ring runs rarely exercise.

use bytes::Bytes;
use chord::{
    Action, ChordConfig, ChordEvent, ChordMsg, ChordNode, ChordTimer, Id, NodeRef, PutMode,
};
use simnet::{Duration, NodeId, Time};

fn nref(addr: u32, id: u64) -> NodeRef {
    NodeRef::new(NodeId(addr), Id(id))
}

fn t0() -> Time {
    Time::ZERO
}

fn sends(actions: &[Action]) -> Vec<(NodeId, &ChordMsg)> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Send(to, m) => Some((*to, m)),
            _ => None,
        })
        .collect()
}

fn events(actions: &[Action]) -> Vec<&ChordEvent> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::Event(e) => Some(e),
            _ => None,
        })
        .collect()
}

/// Build a joined node with a hand-wired ring neighbourhood.
fn wired_node(me: NodeRef, pred: NodeRef, succ: NodeRef) -> ChordNode {
    let mut n = ChordNode::new(me, ChordConfig::default());
    let _ = n.start(t0(), None); // singleton join
                                 // Wire the neighbourhood via protocol messages.
    let _ = n.handle(t0(), pred.addr, ChordMsg::Notify { candidate: pred });
    let _ = n.handle(
        t0(),
        succ.addr,
        ChordMsg::LeaveToPred {
            succ_of_leaver: succ,
        },
    );
    n
}

#[test]
fn singleton_owns_everything() {
    let me = nref(0, 1000);
    let mut n = ChordNode::new(me, ChordConfig::default());
    let acts = n.start(t0(), None);
    assert!(events(&acts)
        .iter()
        .any(|e| matches!(e, ChordEvent::Joined)));
    assert!(n.is_responsible(Id(0)));
    assert!(n.is_responsible(Id(u64::MAX)));
    assert_eq!(n.successor().id, me.id);
}

#[test]
fn notify_adopts_closer_predecessor_and_hands_off_keys() {
    let me = nref(0, 1000);
    let far_pred = nref(1, 100);
    let mut n = ChordNode::new(me, ChordConfig::default());
    let _ = n.start(t0(), None);
    // Store a key the closer predecessor will own.
    n.storage_mut()
        .put_primary(Id(500), Bytes::from_static(b"v"));

    let acts = n.handle(
        t0(),
        far_pred.addr,
        ChordMsg::Notify {
            candidate: far_pred,
        },
    );
    assert!(events(&acts)
        .iter()
        .any(|e| matches!(e, ChordEvent::PredecessorChanged { .. })));
    assert_eq!(n.predecessor().unwrap().id, far_pred.id);

    // A closer candidate (in (100, 1000)) supersedes; keys in (100, 600]
    // move to it.
    let close_pred = nref(2, 600);
    let acts = n.handle(
        t0(),
        close_pred.addr,
        ChordMsg::Notify {
            candidate: close_pred,
        },
    );
    assert_eq!(n.predecessor().unwrap().id, close_pred.id);
    let transferred = sends(&acts)
        .into_iter()
        .find_map(|(to, m)| match m {
            ChordMsg::TransferKeys { items } if to == close_pred.addr => Some(items.clone()),
            _ => None,
        })
        .expect("key handoff to new predecessor");
    assert_eq!(transferred.len(), 1);
    assert_eq!(transferred[0].0, Id(500));
    // We keep a replica copy.
    assert!(n.storage().get(Id(500)).is_some());
    assert!(n.storage().get_primary(Id(500)).is_none());
}

#[test]
fn notify_ignores_farther_candidate() {
    let me = nref(0, 1000);
    let mut n = ChordNode::new(me, ChordConfig::default());
    let _ = n.start(t0(), None);
    let close = nref(1, 900);
    let far = nref(2, 100);
    let _ = n.handle(t0(), close.addr, ChordMsg::Notify { candidate: close });
    let acts = n.handle(t0(), far.addr, ChordMsg::Notify { candidate: far });
    assert_eq!(
        n.predecessor().unwrap().id,
        close.id,
        "kept the closer pred"
    );
    assert!(events(&acts).is_empty());
}

#[test]
fn is_responsible_respects_predecessor_arc() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let n = wired_node(me, pred, succ);
    assert!(n.is_responsible(Id(401)));
    assert!(n.is_responsible(Id(1000)));
    assert!(!n.is_responsible(Id(400)));
    assert!(!n.is_responsible(Id(1500)));
    assert!(!n.is_responsible(Id(0)));
}

#[test]
fn find_successor_answers_locally_when_in_arc() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    let origin = nref(9, 5555);
    // Target in (me, succ]: answer owner = succ directly to origin.
    let acts = n.handle(
        t0(),
        origin.addr,
        ChordMsg::FindSuccessor {
            op: chord::OpId(77),
            target: Id(1500),
            origin,
            hops: 3,
        },
    );
    let found = sends(&acts)
        .into_iter()
        .find_map(|(to, m)| match m {
            ChordMsg::FoundSuccessor { op, owner, hops } if to == origin.addr => {
                Some((*op, *owner, *hops))
            }
            _ => None,
        })
        .expect("reply to origin");
    assert_eq!(found.0, chord::OpId(77));
    assert_eq!(found.1.id, succ.id);
    assert_eq!(found.2, 3);
}

#[test]
fn hop_guard_drops_runaway_lookup() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    let origin = nref(9, 5555);
    let acts = n.handle(
        t0(),
        origin.addr,
        ChordMsg::FindSuccessor {
            op: chord::OpId(1),
            target: Id(1500),
            origin,
            hops: 10_000,
        },
    );
    assert!(sends(&acts).is_empty(), "runaway lookup must be dropped");
}

#[test]
fn put_rejected_when_not_responsible() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    let origin = nref(9, 5555);
    let acts = n.handle(
        t0(),
        origin.addr,
        ChordMsg::Put {
            op: chord::OpId(5),
            key: Id(3000), // not in (400, 1000]
            value: Bytes::from_static(b"x"),
            mode: PutMode::Overwrite,
            origin,
        },
    );
    let ack = sends(&acts)
        .into_iter()
        .find_map(|(_, m)| match m {
            ChordMsg::PutAck { ok, existing, .. } => Some((*ok, existing.clone())),
            _ => None,
        })
        .expect("ack");
    assert!(!ack.0);
    assert!(ack.1.is_none(), "wrong-owner refusal is retryable");
}

#[test]
fn put_stores_and_eagerly_replicates() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    let origin = nref(9, 5555);
    let acts = n.handle(
        t0(),
        origin.addr,
        ChordMsg::Put {
            op: chord::OpId(5),
            key: Id(800),
            value: Bytes::from_static(b"x"),
            mode: PutMode::Overwrite,
            origin,
        },
    );
    assert!(n.storage().get_primary(Id(800)).is_some());
    // Ack + eager replica push to the successor.
    let to_succ = sends(&acts)
        .into_iter()
        .any(|(to, m)| to == succ.addr && matches!(m, ChordMsg::Replicate { .. }));
    assert!(to_succ, "no eager replication to successor");
}

#[test]
fn get_serves_replica_but_flags_non_authoritative() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    n.storage_mut()
        .put_replica(Id(3000), Bytes::from_static(b"r"));
    let origin = nref(9, 5555);
    let acts = n.handle(
        t0(),
        origin.addr,
        ChordMsg::Get {
            op: chord::OpId(6),
            key: Id(3000),
            origin,
        },
    );
    let reply = sends(&acts)
        .into_iter()
        .find_map(|(_, m)| match m {
            ChordMsg::GetReply {
                value,
                authoritative,
                ..
            } => Some((value.clone(), *authoritative)),
            _ => None,
        })
        .expect("reply");
    assert_eq!(reply.0, Some(Bytes::from_static(b"r")));
    assert!(!reply.1, "replica answer is not authoritative");
}

#[test]
fn graceful_leave_emits_both_goodbyes() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    n.storage_mut()
        .put_primary(Id(800), Bytes::from_static(b"v"));
    let acts = n.leave(t0());
    let to_succ = sends(&acts).into_iter().any(|(to, m)| {
        to == succ.addr && matches!(m, ChordMsg::LeaveToSucc { items, .. } if items.len() == 1)
    });
    let to_pred = sends(&acts).into_iter().any(|(to, m)| {
        to == pred.addr
            && matches!(m, ChordMsg::LeaveToPred { succ_of_leaver } if succ_of_leaver.id == succ.id)
    });
    assert!(to_succ, "primary items must go to the successor");
    assert!(to_pred, "predecessor must learn the new successor");
    assert!(!n.is_joined());
}

#[test]
fn stabilize_timer_rearms_and_probes_successor() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    let acts = n.on_timer(Time::from_millis(500), ChordTimer::Stabilize);
    let rearmed = acts
        .iter()
        .any(|a| matches!(a, Action::SetTimer(_, ChordTimer::Stabilize)));
    assert!(rearmed, "stabilize must re-arm itself");
    let probed = sends(&acts)
        .into_iter()
        .any(|(to, m)| to == succ.addr && matches!(m, ChordMsg::GetPredecessor { .. }));
    assert!(probed);
}

#[test]
fn pred_failure_needs_consecutive_ping_timeouts() {
    // One lost ping must NOT drop a live predecessor (under message loss
    // that splits the ring's ownership view and forks stored records);
    // `fail_threshold` consecutive losses must.
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    let threshold = ChordConfig::default().fail_threshold;
    assert!(threshold >= 2, "threshold must tolerate transient loss");
    let mut t = Time::from_millis(500);
    for round in 1..=threshold {
        // Fire the check-predecessor timer: a ping goes out with an op
        // timeout; no pong ever arrives.
        let acts = n.on_timer(t, ChordTimer::CheckPredecessor);
        let op = acts
            .iter()
            .find_map(|a| match a {
                Action::SetTimer(_, ChordTimer::OpTimeout(op)) => Some(*op),
                _ => None,
            })
            .expect("ping must have a timeout");
        t = t + Duration::from_millis(500);
        let acts = n.on_timer(t, ChordTimer::OpTimeout(op));
        let dropped = events(&acts)
            .iter()
            .any(|e| matches!(e, ChordEvent::PredecessorChanged { new: None, .. }));
        if round < threshold {
            assert!(!dropped, "single loss dropped a live predecessor");
            assert!(n.predecessor().is_some());
        } else {
            assert!(dropped, "threshold losses must declare failure");
            assert!(n.predecessor().is_none());
        }
    }
}

#[test]
fn pong_resets_the_ping_failure_count() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    let threshold = ChordConfig::default().fail_threshold;
    let mut t = Time::from_millis(500);
    // threshold - 1 losses, then one answered ping, then threshold - 1
    // more losses: the predecessor must survive throughout.
    for phase in 0..2 {
        for _ in 0..threshold - 1 {
            let acts = n.on_timer(t, ChordTimer::CheckPredecessor);
            let op = acts
                .iter()
                .find_map(|a| match a {
                    Action::SetTimer(_, ChordTimer::OpTimeout(op)) => Some(*op),
                    _ => None,
                })
                .expect("ping must have a timeout");
            t = t + Duration::from_millis(500);
            n.on_timer(t, ChordTimer::OpTimeout(op));
        }
        assert!(n.predecessor().is_some(), "phase {phase}: dropped early");
        if phase == 0 {
            let acts = n.on_timer(t, ChordTimer::CheckPredecessor);
            let op = acts
                .iter()
                .find_map(|a| match a {
                    Action::SetTimer(_, ChordTimer::OpTimeout(op)) => Some(*op),
                    _ => None,
                })
                .expect("ping must have a timeout");
            t = t + Duration::from_millis(100);
            n.handle(t, pred.addr, ChordMsg::Pong { op });
        }
    }
    assert!(n.predecessor().is_some());
}

#[test]
fn pong_clears_ping_op() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    let acts = n.on_timer(Time::from_millis(500), ChordTimer::CheckPredecessor);
    let op = acts
        .iter()
        .find_map(|a| match a {
            Action::SetTimer(_, ChordTimer::OpTimeout(op)) => Some(*op),
            _ => None,
        })
        .unwrap();
    // Pong arrives in time.
    let _ = n.handle(Time::from_millis(600), pred.addr, ChordMsg::Pong { op });
    // The (now stale) timeout is a no-op: predecessor survives.
    let _ = n.on_timer(Time::from_millis(1000), ChordTimer::OpTimeout(op));
    assert_eq!(n.predecessor().unwrap().id, pred.id);
}

#[test]
fn transfer_keys_promotes_to_primary_and_notifies_upper_layer() {
    let me = nref(0, 1000);
    let mut n = ChordNode::new(me, ChordConfig::default());
    let _ = n.start(t0(), None);
    let acts = n.handle(
        t0(),
        NodeId(7),
        ChordMsg::TransferKeys {
            items: vec![
                (Id(10), Bytes::from_static(b"a")),
                (Id(20), Bytes::from_static(b"b")),
            ],
        },
    );
    assert!(events(&acts)
        .iter()
        .any(|e| matches!(e, ChordEvent::KeysReceived { count: 2 })));
    assert!(n.storage().get_primary(Id(10)).is_some());
    assert!(n.storage().get_primary(Id(20)).is_some());
}

#[test]
fn replicate_adopts_owned_keys_as_primary() {
    let me = nref(0, 1000);
    let pred = nref(1, 400);
    let succ = nref(2, 2000);
    let mut n = wired_node(me, pred, succ);
    let acts = n.handle(
        t0(),
        succ.addr,
        ChordMsg::Replicate {
            items: vec![
                (Id(800), Bytes::from_static(b"ours")),    // in (400, 1000]
                (Id(3000), Bytes::from_static(b"theirs")), // not ours
            ],
        },
    );
    let _ = acts;
    assert!(
        n.storage().get_primary(Id(800)).is_some(),
        "owned key adopted"
    );
    assert!(n.storage().get_primary(Id(3000)).is_none());
    assert!(n.storage().get(Id(3000)).is_some(), "kept as replica");
}
