//! Codec correctness properties:
//!
//! 1. **Round-trip**: `decode(encode(m)) == m` for every protocol message
//!    type, over randomized message structures;
//! 2. **Exact sizing**: `encoded_len(m) == encode(m).len()` always (the
//!    simulator charges latency from `encoded_len`, so a drift would skew
//!    every bandwidth model);
//! 3. **Totality**: the decoder returns `Err` — never panics, never
//!    over-allocates — on truncated and corrupted frames (a fuzz-style
//!    corpus of cuts, bit flips and random byte smashes).
//!
//! Messages are generated structurally from a seeded [`Rng64`] so the
//! corpus covers every variant and the awkward sizes (empty vecs, huge
//! ids, unicode names), and `proptest!` sweeps the seeds.

use bytes::Bytes;
use chord::{ChordMsg, DocName, Id, NodeRef, OpId, PutMode};
use kts::{HandoffEntry, KtsMsg, ReqId, ValidateFailure};
use p2plog::LogRecord;
use proptest::prelude::*;
use simnet::{NodeId, Rng64};
use wire::{decode_frame, encode_frame, frame_len, Decode, Encode, FrameAssembler};

// ---- structural generators ------------------------------------------------

fn arb_id(rng: &mut Rng64) -> Id {
    // Mix extremes with uniform draws.
    match rng.gen_below(8) {
        0 => Id(0),
        1 => Id(u64::MAX),
        _ => Id(rng.next_u64()),
    }
}

fn arb_u64(rng: &mut Rng64) -> u64 {
    match rng.gen_below(4) {
        0 => rng.gen_below(128),            // 1-byte varints
        1 => rng.gen_below(1 << 20),        // mid-size
        2 => u64::MAX - rng.gen_below(128), // force 10-byte varints
        _ => rng.next_u64(),
    }
}

fn arb_node_ref(rng: &mut Rng64) -> NodeRef {
    NodeRef::new(NodeId(rng.gen_below(1 << 20) as u32), arb_id(rng))
}

fn arb_bytes(rng: &mut Rng64) -> Bytes {
    let len = rng.gen_below(200) as usize;
    Bytes::from(
        (0..len)
            .map(|_| rng.gen_below(256) as u8)
            .collect::<Vec<u8>>(),
    )
}

fn arb_doc_name(rng: &mut Rng64) -> DocName {
    let names = [
        "wiki/Main",
        "",
        "a",
        "página/Ωλ⇄🎈",
        "deeply/nested/path/with/many/segments",
        "doc#1",
    ];
    DocName::new(*rng.pick(&names))
}

fn arb_items(rng: &mut Rng64) -> Vec<(Id, Bytes)> {
    let n = rng.gen_below(5) as usize;
    (0..n).map(|_| (arb_id(rng), arb_bytes(rng))).collect()
}

fn arb_chord_msg(rng: &mut Rng64) -> ChordMsg {
    match rng.gen_below(17) {
        0 => ChordMsg::FindSuccessor {
            op: OpId(arb_u64(rng)),
            target: arb_id(rng),
            origin: arb_node_ref(rng),
            hops: rng.gen_below(200) as u32,
        },
        1 => ChordMsg::FoundSuccessor {
            op: OpId(arb_u64(rng)),
            owner: arb_node_ref(rng),
            hops: rng.gen_below(200) as u32,
        },
        2 => ChordMsg::GetPredecessor {
            op: OpId(arb_u64(rng)),
        },
        3 => {
            let n = rng.gen_below(6) as usize;
            ChordMsg::PredecessorIs {
                op: OpId(arb_u64(rng)),
                pred: rng.chance(0.5).then(|| arb_node_ref(rng)),
                succ_list: (0..n).map(|_| arb_node_ref(rng)).collect(),
            }
        }
        4 => ChordMsg::Notify {
            candidate: arb_node_ref(rng),
        },
        5 => ChordMsg::Ping {
            op: OpId(arb_u64(rng)),
        },
        6 => ChordMsg::Pong {
            op: OpId(arb_u64(rng)),
        },
        7 => ChordMsg::Put {
            op: OpId(arb_u64(rng)),
            key: arb_id(rng),
            value: arb_bytes(rng),
            mode: *rng.pick(&[PutMode::Overwrite, PutMode::FirstWriter, PutMode::Ranked]),
            origin: arb_node_ref(rng),
        },
        8 => ChordMsg::PutAck {
            op: OpId(arb_u64(rng)),
            ok: rng.chance(0.5),
            existing: rng.chance(0.5).then(|| arb_bytes(rng)),
        },
        9 => ChordMsg::Get {
            op: OpId(arb_u64(rng)),
            key: arb_id(rng),
            origin: arb_node_ref(rng),
        },
        10 => ChordMsg::GetReply {
            op: OpId(arb_u64(rng)),
            value: rng.chance(0.5).then(|| arb_bytes(rng)),
            authoritative: rng.chance(0.5),
        },
        11 => ChordMsg::Replicate {
            items: arb_items(rng),
        },
        12 => ChordMsg::TransferKeys {
            items: arb_items(rng),
        },
        13 => ChordMsg::LeaveToSucc {
            pred_of_leaver: rng.chance(0.5).then(|| arb_node_ref(rng)),
            items: arb_items(rng),
        },
        14 => ChordMsg::LeaveToPred {
            succ_of_leaver: arb_node_ref(rng),
        },
        15 => ChordMsg::Fence {
            op: OpId(arb_u64(rng)),
            key: arb_id(rng),
            floor: arb_u64(rng),
            origin: arb_node_ref(rng),
        },
        _ => ChordMsg::FenceAck {
            op: OpId(arb_u64(rng)),
            ok: rng.chance(0.5),
            current: arb_u64(rng),
            occupied: rng.chance(0.5),
        },
    }
}

fn arb_kts_msg(rng: &mut Rng64) -> KtsMsg {
    match rng.gen_below(9) {
        0 => KtsMsg::Validate {
            op: ReqId(arb_u64(rng)),
            key: arb_id(rng),
            key_name: arb_doc_name(rng),
            proposed_ts: arb_u64(rng),
            patch: arb_bytes(rng),
            user: arb_node_ref(rng),
        },
        1 => KtsMsg::Granted {
            op: ReqId(arb_u64(rng)),
            ts: arb_u64(rng),
            // Optional trailing field: exercise absent (0) and present.
            epoch: if rng.chance(0.5) { 0 } else { arb_u64(rng) },
        },
        2 => KtsMsg::Retry {
            op: ReqId(arb_u64(rng)),
            last_ts: arb_u64(rng),
        },
        3 => KtsMsg::Redirect {
            op: ReqId(arb_u64(rng)),
        },
        4 => KtsMsg::Failed {
            op: ReqId(arb_u64(rng)),
            reason: *rng.pick(&[
                ValidateFailure::LogUnreachable,
                ValidateFailure::Overloaded,
                ValidateFailure::AheadOfLog,
            ]),
        },
        5 => KtsMsg::LastTs {
            op: ReqId(arb_u64(rng)),
            key: arb_id(rng),
            user: arb_node_ref(rng),
            known_ts: if rng.chance(0.5) { 0 } else { arb_u64(rng) },
        },
        6 => KtsMsg::LastTsReply {
            op: ReqId(arb_u64(rng)),
            key: arb_id(rng),
            last_ts: arb_u64(rng),
        },
        7 => KtsMsg::ReplicateEntry {
            key: arb_id(rng),
            key_name: arb_doc_name(rng),
            last_ts: arb_u64(rng),
            epoch: arb_u64(rng),
        },
        _ => {
            let n = rng.gen_below(4) as usize;
            KtsMsg::TableHandoff {
                entries: (0..n)
                    .map(|_| HandoffEntry {
                        key: arb_id(rng),
                        key_name: arb_doc_name(rng),
                        last_ts: arb_u64(rng),
                        epoch: arb_u64(rng),
                    })
                    .collect(),
            }
        }
    }
}

fn arb_log_record(rng: &mut Rng64) -> LogRecord {
    let epoch = if rng.chance(0.5) { 0 } else { arb_u64(rng) };
    LogRecord::new(
        arb_doc_name(rng).as_str(),
        arb_u64(rng),
        arb_u64(rng),
        arb_bytes(rng),
    )
    .with_epoch(epoch)
}

// Debug output is a faithful structural rendering for these types, so it
// serves as the equality witness where PartialEq is not derived.
fn assert_roundtrip<M: Encode + Decode + std::fmt::Debug>(m: &M) {
    let buf = m.to_wire();
    assert_eq!(buf.len(), m.encoded_len(), "encoded_len drift for {m:?}");
    let back = M::from_wire(&buf).expect("own encoding decodes");
    assert_eq!(format!("{back:?}"), format!("{m:?}"));
    // Framed form too, with a sender address in the header.
    let from = NodeId(7);
    let framed = encode_frame(from, m);
    assert_eq!(framed.len(), frame_len(m));
    let (f, back): (NodeId, M) = decode_frame(&framed).expect("frame decodes");
    assert_eq!(f, from);
    assert_eq!(format!("{back:?}"), format!("{m:?}"));
}

/// Every truncation and a barrage of corruptions must yield `Ok` or `Err`
/// — any panic fails the test. (Corruptions *may* decode to a different
/// valid message — e.g. a flipped bit inside a payload byte — totality is
/// the property here, not detection; detection belongs to the checksummed
/// `LogRecord` storage encoding.)
fn assert_total<M: Encode + Decode>(m: &M, rng: &mut Rng64) {
    let frame = encode_frame(NodeId(3), m);
    for cut in 0..frame.len() {
        assert!(
            decode_frame::<M>(&frame[..cut]).is_err(),
            "truncated frame (cut {cut}) must not decode"
        );
    }
    // Single bit flips at every position of small frames, sampled for big.
    let positions: Vec<usize> = if frame.len() <= 128 {
        (0..frame.len()).collect()
    } else {
        (0..128).map(|_| rng.index(frame.len())).collect()
    };
    for pos in positions {
        for bit in [0x01u8, 0x80u8] {
            let mut bad = frame.clone();
            bad[pos] ^= bit;
            let _ = decode_frame::<M>(&bad); // must return, not panic
        }
    }
    // Random byte smashes.
    for _ in 0..32 {
        let mut bad = frame.clone();
        let n = 1 + rng.index(4);
        for _ in 0..n {
            let pos = rng.index(bad.len());
            bad[pos] = rng.gen_below(256) as u8;
        }
        let _ = decode_frame::<M>(&bad);
    }
    // Garbage from scratch.
    let len = rng.gen_below(64) as usize;
    let garbage: Vec<u8> = (0..len).map(|_| rng.gen_below(256) as u8).collect();
    let _ = decode_frame::<M>(&garbage);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn chord_msgs_roundtrip_and_decode_totally(seed in 0u64..1_000_000) {
        let mut rng = Rng64::new(seed ^ 0xC0DEC);
        for _ in 0..16 {
            let m = arb_chord_msg(&mut rng);
            assert_roundtrip(&m);
            assert_total(&m, &mut rng);
        }
    }

    #[test]
    fn kts_msgs_roundtrip_and_decode_totally(seed in 0u64..1_000_000) {
        let mut rng = Rng64::new(seed ^ 0x2B15);
        for _ in 0..16 {
            let m = arb_kts_msg(&mut rng);
            assert_roundtrip(&m);
            assert_total(&m, &mut rng);
        }
    }

    #[test]
    fn log_records_roundtrip_and_decode_totally(seed in 0u64..1_000_000) {
        let mut rng = Rng64::new(seed ^ 0x10C);
        for _ in 0..16 {
            let r = arb_log_record(&mut rng);
            assert_roundtrip(&r);
            assert_total(&r, &mut rng);
        }
    }

    #[test]
    fn assembler_is_chunking_invariant(seed in 0u64..1_000_000) {
        let mut rng = Rng64::new(seed ^ 0xA55);
        let frames: Vec<Vec<u8>> = (0..8)
            .map(|_| encode_frame(NodeId(1), &arb_chord_msg(&mut rng)))
            .collect();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let chunk = 1 + rng.index(40.min(stream.len() - pos));
            asm.push(&stream[pos..pos + chunk]);
            pos += chunk;
            while let Some(f) = asm.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
    }
}

/// A pathological prefix every decoder must survive: maximal length
/// prefixes claiming gigabytes. Run once (not seed-swept).
#[test]
fn hostile_length_prefixes_never_allocate() {
    // Frame header declaring u32::MAX bytes.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&[1, 0, 0, 0, 0]);
    assert!(decode_frame::<ChordMsg>(&hostile).is_err());
    // Body-level: a Replicate whose item count claims u64::MAX.
    let mut body = vec![
        30, 0, 0, 0, // frame len = 30
        1, // version
        0, 0, 0, 0,  // from
        11, // Replicate tag
    ];
    body.extend_from_slice(&[0xff; 10]); // varint count ~ u64::MAX
    body.extend_from_slice(&[0; 11]);
    body[0] = (body.len() - 4) as u8;
    assert!(decode_frame::<ChordMsg>(&body).is_err());
}
