//! Loss / partial-write torture for the batch transport stack.
//!
//! A chaos transport moves frames between endpoints as a **raw byte
//! stream** that it deliberately mangles within the contract:
//!
//! * reads hand bytes to the receiver in arbitrary-size chunks (down to
//!   one byte), so every frame crosses chunk boundaries at every offset —
//!   [`FrameAssembler`] must re-frame all of it;
//! * sends randomly report [`TransportError::Backpressure`] (the batch
//!   `WouldBlock`) or accept only a prefix of the batch, so callers must
//!   exercise the partial-accept / retry protocol.
//!
//! Two layers are proven end-to-end, with `proptest!` sweeping the chaos
//! parameters (seed, backpressure rate, chunk size, partial accepts):
//!
//! 1. a direct sender → receiver stream: every frame arrives intact, in
//!    order, decoding to the original message;
//! 2. a [`WireNet`] ping-pong: the runner's pending/retry queue plus the
//!    per-class error counters deliver the protocol despite the chaos.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use simnet::{Ctx, NodeId, Rng64};
use wire::{
    decode_frame_bytes, encode_frame, Decode, Encode, FrameAssembler, Readiness, Transport,
    TransportError, WireNet,
};

/// Tunable misbehaviour, all within the `Transport` contract.
#[derive(Clone, Copy, Debug)]
struct Chaos {
    /// Percent of `send_batch` calls that report `Backpressure`.
    backpressure_pct: u64,
    /// Upper bound on bytes moved per read rotation (1 = byte-by-byte).
    max_chunk: usize,
    /// Accept random prefixes of multi-frame batches.
    partial_accepts: bool,
}

type Streams = Arc<Mutex<HashMap<NodeId, Arc<Mutex<VecDeque<u8>>>>>>;

/// Hub of chaos endpoints: a shared byte stream per node.
#[derive(Clone)]
struct ChaosHub {
    streams: Streams,
    chaos: Chaos,
}

impl ChaosHub {
    fn new(chaos: Chaos) -> Self {
        ChaosHub {
            streams: Streams::default(),
            chaos,
        }
    }

    fn endpoint(&self, me: NodeId, seed: u64) -> ChaosTransport {
        let inbound = Arc::new(Mutex::new(VecDeque::new()));
        self.streams.lock().unwrap().insert(me, inbound.clone());
        ChaosTransport {
            streams: self.streams.clone(),
            inbound,
            asm: FrameAssembler::new(),
            ready: VecDeque::new(),
            rng: Rng64::new(seed ^ (me.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            chaos: self.chaos,
        }
    }

    /// Client-path injection: append a complete frame, no chaos.
    fn send(&self, to: NodeId, frame: &[u8]) -> Result<(), TransportError> {
        let streams = self.streams.lock().unwrap();
        let dest = streams.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        dest.lock().unwrap().extend(frame.iter().copied());
        Ok(())
    }
}

struct ChaosTransport {
    streams: Streams,
    inbound: Arc<Mutex<VecDeque<u8>>>,
    asm: FrameAssembler,
    ready: VecDeque<Bytes>,
    rng: Rng64,
    chaos: Chaos,
}

impl ChaosTransport {
    /// Pull inbound bytes through the assembler in random-size chunks.
    fn rotate(&mut self) {
        loop {
            let chunk: Vec<u8> = {
                let mut stream = self.inbound.lock().unwrap();
                if stream.is_empty() {
                    break;
                }
                let take = 1 + self.rng.gen_below(self.chaos.max_chunk as u64) as usize;
                let take = take.min(stream.len());
                stream.drain(..take).collect()
            };
            self.asm.push(&chunk);
            while let Some(f) = self
                .asm
                .next_frame_bytes()
                .expect("streams are never corrupt")
            {
                self.ready.push_back(f);
            }
        }
    }
}

impl Transport for ChaosTransport {
    fn send_batch(&mut self, to: NodeId, frames: &[Bytes]) -> Result<usize, TransportError> {
        assert!(!frames.is_empty(), "callers never send empty batches");
        if self.rng.gen_below(100) < self.chaos.backpressure_pct {
            return Err(TransportError::Backpressure);
        }
        let accept = if self.chaos.partial_accepts && frames.len() > 1 {
            1 + self.rng.gen_below(frames.len() as u64) as usize
        } else {
            frames.len()
        };
        let streams = self.streams.lock().unwrap();
        let dest = streams.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        let mut dest = dest.lock().unwrap();
        for frame in &frames[..accept] {
            dest.extend(frame.as_ref().iter().copied());
        }
        Ok(accept)
    }

    fn recv_batch(&mut self, out: &mut Vec<Bytes>, max: usize) -> usize {
        let n = self.ready.len().min(max);
        out.extend(self.ready.drain(..n));
        n
    }

    fn poll(&mut self, timeout: Duration) -> Readiness {
        self.rotate();
        if self.ready.is_empty() && !timeout.is_zero() {
            std::thread::sleep(timeout.min(Duration::from_micros(200)));
            self.rotate();
        }
        Readiness {
            readable: !self.ready.is_empty(),
            writable: true,
        }
    }
}

// ---- layer 1: raw stream integrity ----------------------------------------

/// Push `count` varied-size frames through a chaos pair with the caller
/// running the documented retry protocol; every frame must arrive
/// intact and in order.
fn stream_survives(seed: u64, chaos: Chaos, count: u64) {
    let hub = ChaosHub::new(chaos);
    let a = NodeId(0);
    let b = NodeId(1);
    let mut tx = hub.endpoint(a, seed);
    let mut rx = hub.endpoint(b, seed.wrapping_add(1));

    let msgs: Vec<Vec<u8>> = (0..count)
        .map(|i| (0..(i * 37) % 256).map(|j| (i + j) as u8).collect())
        .collect();
    let frames: Vec<Bytes> = msgs
        .iter()
        .map(|m| Bytes::from(encode_frame(a, &Bytes::from(m.clone()))))
        .collect();

    let mut sent = 0;
    let mut got: Vec<(NodeId, Bytes)> = Vec::new();
    let mut buf = Vec::new();
    while got.len() < msgs.len() {
        if sent < frames.len() {
            match tx.send_batch(b, &frames[sent..]) {
                Ok(n) => sent += n,
                Err(TransportError::Backpressure) => {} // retry next round
                Err(e) => panic!("unexpected transport error: {e}"),
            }
        }
        rx.poll(Duration::ZERO);
        buf.clear();
        rx.recv_batch(&mut buf, 16);
        for frame in buf.drain(..) {
            got.push(decode_frame_bytes::<Bytes>(&frame).expect("frame intact"));
        }
    }
    for (i, ((from, payload), want)) in got.iter().zip(&msgs).enumerate() {
        assert_eq!(*from, a, "frame {i} sender");
        assert_eq!(payload.as_ref(), want.as_slice(), "frame {i} payload");
    }
}

// ---- layer 2: WireNet over chaos endpoints --------------------------------

#[derive(Debug)]
enum Msg {
    Ping(u32),
    Pong(u32),
}

impl Encode for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Ping(n) => {
                out.push(0);
                n.encode(out);
            }
            Msg::Pong(n) => {
                out.push(1);
                n.encode(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Msg::Ping(n) | Msg::Pong(n) => n.encoded_len(),
        }
    }
}

impl Decode for Msg {
    fn decode(r: &mut wire::Reader<'_>) -> Result<Self, wire::WireError> {
        match r.read_u8()? {
            0 => Ok(Msg::Ping(u32::decode(r)?)),
            1 => Ok(Msg::Pong(u32::decode(r)?)),
            tag => Err(wire::WireError::BadTag { what: "Msg", tag }),
        }
    }
}

struct Echo {
    pongs: u32,
    ticks: u32,
    peer: Option<NodeId>,
}

impl simnet::Process<Msg> for Echo {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.set_timer(simnet::Duration::from_millis(2), 1);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Ping(n) => ctx.send(from, Msg::Pong(n)),
            Msg::Pong(_) => self.pongs += 1,
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if tag == 1 {
            self.ticks += 1;
            if let Some(peer) = self.peer {
                ctx.send(peer, Msg::Ping(self.ticks));
            }
            if self.ticks < 5 {
                ctx.set_timer(simnet::Duration::from_millis(2), 1);
            }
        }
    }
}

/// The full runner over chaos endpoints: despite injected backpressure
/// and byte-level re-chunking, the pending/retry queue delivers the
/// whole ping-pong exchange.
fn wirenet_survives(seed: u64, chaos: Chaos) {
    let hub = ChaosHub::new(chaos);
    let make = hub.clone();
    let inj = hub.clone();
    let mut net: WireNet<Msg> = WireNet::new(
        seed,
        Box::new(move |me| Box::new(make.endpoint(me, seed)) as Box<dyn Transport>),
        Box::new(move |to, frame| inj.send(to, frame)),
    );
    let b = net.add_node(Echo {
        pongs: 0,
        ticks: 0,
        peer: None,
    });
    let a = net.add_node(Echo {
        pongs: 0,
        ticks: 0,
        peer: Some(b),
    });
    let ok = net.run_until(Duration::from_secs(20), |n| {
        n.node_as::<Echo>(a).is_some_and(|e| e.pongs == 5)
    });
    assert!(ok, "all 5 pongs delivered through the chaos transport");
    // Injected backpressure must have been counted under its own class,
    // never under an unrelated one.
    for id in [a, b] {
        assert_eq!(net.metrics(id).counter("wire.send_err.unknown_peer"), 0);
        assert_eq!(net.metrics(id).counter("wire.send_err.io"), 0);
        assert_eq!(net.metrics(id).counter("wire.decode_errors"), 0);
    }
    if chaos.backpressure_pct >= 40 {
        let stalls = net.metrics(a).counter("wire.send_err.backpressure")
            + net.metrics(b).counter("wire.send_err.backpressure");
        assert!(
            stalls > 0,
            "heavy injected backpressure shows up in metrics"
        );
    }
}

// ---- sweeps ---------------------------------------------------------------

#[test]
fn byte_by_byte_stream_with_heavy_backpressure() {
    stream_survives(
        7,
        Chaos {
            backpressure_pct: 50,
            max_chunk: 1,
            partial_accepts: true,
        },
        40,
    );
}

#[test]
fn wirenet_ping_pong_through_worst_case_chaos() {
    wirenet_survives(
        11,
        Chaos {
            backpressure_pct: 50,
            max_chunk: 1,
            partial_accepts: true,
        },
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn stream_integrity_under_arbitrary_chaos(
        seed in any::<u64>(),
        backpressure_pct in 0u64..60,
        max_chunk in 1usize..9,
        partial_accepts in any::<bool>(),
    ) {
        stream_survives(
            seed,
            Chaos { backpressure_pct, max_chunk, partial_accepts },
            60,
        );
    }

    #[test]
    fn wirenet_delivery_under_arbitrary_chaos(
        seed in any::<u64>(),
        backpressure_pct in 0u64..60,
        max_chunk in 1usize..9,
        partial_accepts in any::<bool>(),
    ) {
        wirenet_survives(seed, Chaos { backpressure_pct, max_chunk, partial_accepts });
    }
}
