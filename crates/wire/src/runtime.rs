//! The readiness-driven network runtime: a non-blocking, zero-extra-thread
//! event-loop transport over `std::net`.
//!
//! [`TcpHub`](crate::TcpHub) proved the protocol runs over real sockets,
//! but its thread-per-connection design (one blocking write syscall per
//! frame, one reader thread per peer) cannot serve heavy traffic. This
//! module is the serving path:
//!
//! * **Connection multiplexing** — one endpoint owns a non-blocking
//!   listener plus all of its inbound and outbound connections; a single
//!   *rotation* of the event loop (see [`Transport::poll`]) accepts new
//!   connections, reads every readable socket under a per-connection
//!   byte budget, and flushes every outbound ring. No threads are
//!   spawned; the caller's pump *is* the event loop.
//! * **Write batching / pipelining** — frames queued by
//!   [`Transport::send_batch`] append to a per-peer byte ring and go to
//!   the kernel in large writes (up to
//!   [`RuntimeConfig::max_batch_bytes`] per syscall), so a burst of
//!   small protocol frames costs one syscall, not one each.
//! * **Bounded queues with backpressure** — the inbound frame queue is
//!   capped at [`RuntimeConfig::inbound_depth`] frames (when full the
//!   loop stops reading and TCP flow control pushes back on senders);
//!   each outbound ring is capped at [`RuntimeConfig::outbound_bytes`]
//!   (when full `send_batch` accepts a partial batch or reports
//!   [`TransportError::Backpressure`]).
//! * **Zero-copy decode** — inbound frames surface as [`Bytes`]; a
//!   decode via [`decode_frame_bytes`](crate::decode_frame_bytes) slices
//!   payload fields out of the frame buffer without copying.
//! * **Self-healing links** — a failed outbound connection is evicted
//!   and re-dialled under the same capped exponential backoff as the
//!   threaded hub.
//!
//! Rotation-based readiness: `std` exposes no `epoll`/`select`, so a
//! blocking [`poll`](Transport::poll) alternates non-blocking rotations
//! with short parks ([`RuntimeConfig::flush_interval`]). Under load the
//! loop never parks; idle it costs a few wakeups per millisecond —
//! `exp_net` measures the trade directly against the threaded baseline.
//!
//! detlint::allow-file(DET-CLOCK, the runtime is the real-time I/O layer — wall-clock batching, parking and reconnect backoff never feed back into simulator logic)

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use simnet::NodeId;

use crate::frame::BytesAssembler;
use crate::transport::{Backoff, Readiness, Transport, TransportError};

/// Tuning knobs for the runtime (and queue/backoff behaviour of the
/// other hubs), built fluently:
///
/// ```
/// use wire::RuntimeConfig;
/// use std::time::Duration;
///
/// let cfg = RuntimeConfig::new()
///     .inbound_depth(8192)
///     .max_batch_bytes(32 * 1024)
///     .flush_interval(Duration::from_micros(100));
/// assert_eq!(cfg.inbound_depth, 8192);
/// ```
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Inbound queue cap, in complete frames, per endpoint. When the
    /// queue is full the event loop stops reading sockets and TCP flow
    /// control backpressures the senders. Default **4096**.
    pub inbound_depth: usize,
    /// Outbound ring cap, in buffered bytes, per peer. A send that would
    /// exceed it reports backpressure instead of buffering unboundedly.
    /// Default **256 KiB**.
    pub outbound_bytes: usize,
    /// Flush threshold: a peer's ring is written to the kernel whenever
    /// at least this many bytes are pending (and always once per
    /// rotation). Default **64 KiB**.
    pub max_batch_bytes: usize,
    /// How long an idle blocking [`Transport::poll`] parks between
    /// rotations — the latency floor for a queued frame waiting on its
    /// batch, and the idle wakeup cadence. Default **200 µs**.
    pub flush_interval: Duration,
    /// Per-connection read budget, in bytes, per rotation. Caps how much
    /// one chatty peer can consume before the loop services the next
    /// socket. Default **64 KiB**.
    pub read_budget: usize,
    /// First reconnect-backoff delay after a link failure; doubles per
    /// consecutive failure. Default **10 ms**.
    pub reconnect_backoff_base: Duration,
    /// Reconnect-backoff ceiling. Default **2 s**.
    pub reconnect_backoff_max: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            inbound_depth: 4096,
            outbound_bytes: 256 * 1024,
            max_batch_bytes: 64 * 1024,
            flush_interval: Duration::from_micros(200),
            read_budget: 64 * 1024,
            reconnect_backoff_base: Duration::from_millis(10),
            reconnect_backoff_max: Duration::from_secs(2),
        }
    }
}

impl RuntimeConfig {
    /// The documented defaults (see each field).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set [`RuntimeConfig::inbound_depth`].
    pub fn inbound_depth(mut self, frames: usize) -> Self {
        self.inbound_depth = frames.max(1);
        self
    }

    /// Set [`RuntimeConfig::outbound_bytes`].
    pub fn outbound_bytes(mut self, bytes: usize) -> Self {
        self.outbound_bytes = bytes.max(crate::frame::FRAME_HEADER_LEN);
        self
    }

    /// Set [`RuntimeConfig::max_batch_bytes`].
    pub fn max_batch_bytes(mut self, bytes: usize) -> Self {
        self.max_batch_bytes = bytes.max(1);
        self
    }

    /// Set [`RuntimeConfig::flush_interval`].
    pub fn flush_interval(mut self, d: Duration) -> Self {
        self.flush_interval = d;
        self
    }

    /// Set [`RuntimeConfig::read_budget`].
    pub fn read_budget(mut self, bytes: usize) -> Self {
        self.read_budget = bytes.max(1);
        self
    }

    /// Set [`RuntimeConfig::reconnect_backoff_base`].
    pub fn reconnect_backoff_base(mut self, d: Duration) -> Self {
        self.reconnect_backoff_base = d;
        self
    }

    /// Set [`RuntimeConfig::reconnect_backoff_max`].
    pub fn reconnect_backoff_max(mut self, d: Duration) -> Self {
        self.reconnect_backoff_max = d;
        self
    }
}

type RtRegistry = Arc<Mutex<HashMap<NodeId, SocketAddr>>>;

/// Hub for the event-loop runtime: the shared `NodeId -> SocketAddr`
/// name service, plus the [`RuntimeConfig`] every endpoint inherits.
#[derive(Clone, Default)]
pub struct RtHub {
    registry: RtRegistry,
    cfg: RuntimeConfig,
}

impl RtHub {
    /// Fresh hub with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh hub with explicit configuration.
    pub fn with_config(cfg: RuntimeConfig) -> Self {
        RtHub {
            registry: RtRegistry::default(),
            cfg,
        }
    }

    /// Bind a non-blocking listener for `me` on `127.0.0.1:0`, register
    /// its address, and return the endpoint. No threads are spawned: the
    /// endpoint's I/O advances only inside [`Transport::poll`] /
    /// [`Transport::send_batch`].
    pub fn endpoint(&self, me: NodeId) -> std::io::Result<RtTransport> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        self.registry.lock().expect("rt registry").insert(me, addr);
        Ok(RtTransport {
            registry: self.registry.clone(),
            cfg: self.cfg.clone(),
            listener,
            readers: Vec::new(),
            writers: HashMap::new(),
            backoffs: HashMap::new(),
            inbound: VecDeque::new(),
            read_buf: vec![0u8; self.cfg.read_budget.clamp(4096, 64 * 1024)],
        })
    }

    /// One-shot client send (external injection): opens a connection,
    /// writes the frame, closes. The receiving event loop accepts it on
    /// its next rotation.
    pub fn send(&self, to: NodeId, frame: &[u8]) -> Result<(), TransportError> {
        let addr = {
            let reg = self.registry.lock().expect("rt registry");
            *reg.get(&to).ok_or(TransportError::UnknownPeer(to))?
        };
        let mut stream = TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        stream
            .write_all(frame)
            .map_err(|e| TransportError::Io(e.to_string()))
    }
}

/// One inbound connection: a non-blocking stream feeding a zero-copy
/// [`BytesAssembler`].
struct ReadConn {
    stream: TcpStream,
    asm: BytesAssembler,
    dead: bool,
}

/// One live outbound link: a non-blocking stream plus its byte ring of
/// not-yet-flushed frame bytes (`buf[start..]` is pending). Dead links
/// are tracked separately in `RtTransport::backoffs`.
struct WriteConn {
    stream: TcpStream,
    buf: Vec<u8>,
    start: usize,
}

impl WriteConn {
    fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Write as much of the ring as the kernel will take right now.
    /// `Ok(true)` = ring fully drained.
    fn flush(&mut self) -> std::io::Result<bool> {
        while self.start < self.buf.len() {
            match self.stream.write(&self.buf[self.start..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => self.start += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.start >= self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            // Compact so the ring stays bounded by pending bytes.
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(self.pending() == 0)
    }
}

/// Event-loop endpoint of the runtime. See the [module docs](crate::runtime)
/// for the threading and backpressure model.
pub struct RtTransport {
    registry: RtRegistry,
    cfg: RuntimeConfig,
    listener: TcpListener,
    readers: Vec<ReadConn>,
    writers: HashMap<NodeId, WriteConn>,
    /// Reconnect throttles for peers whose link failed.
    backoffs: HashMap<NodeId, Backoff>,
    /// Complete inbound frames, bounded at `cfg.inbound_depth`.
    inbound: VecDeque<Bytes>,
    /// Read scratch, reused every rotation.
    read_buf: Vec<u8>,
}

impl RtTransport {
    /// Dial `to` (non-blocking after connect) or fail into backoff.
    fn ensure_writer(&mut self, to: NodeId, now: Instant) -> Result<(), TransportError> {
        if self.writers.contains_key(&to) {
            return Ok(());
        }
        if self.backoffs.get(&to).is_some_and(|b| b.blocked(now)) {
            return Err(TransportError::Disconnected(to));
        }
        let addr = {
            let reg = self.registry.lock().expect("rt registry");
            *reg.get(&to).ok_or(TransportError::UnknownPeer(to))?
        };
        match TcpStream::connect(addr).and_then(|s| {
            s.set_nodelay(true)?;
            s.set_nonblocking(true)?;
            Ok(s)
        }) {
            Ok(stream) => {
                self.backoffs.remove(&to);
                self.writers.insert(
                    to,
                    WriteConn {
                        stream,
                        buf: Vec::new(),
                        start: 0,
                    },
                );
                Ok(())
            }
            Err(_) => {
                self.backoffs
                    .entry(to)
                    .or_default()
                    .record_failure(now, &self.cfg);
                Err(TransportError::Disconnected(to))
            }
        }
    }

    /// Evict a failed link and arm its reconnect backoff (buffered bytes
    /// are lost with the connection, as on any TCP reset). Re-dial
    /// happens lazily on the next send after the window.
    fn evict_writer(&mut self, to: NodeId, now: Instant) {
        self.writers.remove(&to);
        self.backoffs
            .entry(to)
            .or_default()
            .record_failure(now, &self.cfg);
    }

    /// One non-blocking rotation: accept, flush, read. Returns true when
    /// any I/O progressed.
    fn rotate(&mut self) -> bool {
        let mut progressed = false;
        // Accept every pending inbound connection.
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.readers.push(ReadConn {
                        stream,
                        asm: BytesAssembler::new(),
                        dead: false,
                    });
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        // Flush every outbound ring.
        let now = Instant::now();
        let mut failed: Vec<NodeId> = Vec::new();
        for (&to, w) in self.writers.iter_mut() {
            if w.pending() == 0 {
                continue;
            }
            let before = w.start;
            match w.flush() {
                Ok(_) => progressed |= w.start != before,
                Err(_) => failed.push(to),
            }
        }
        for to in failed {
            self.evict_writer(to, now);
        }
        // Read rotation, budgeted per connection, halted by a full
        // inbound queue (TCP then backpressures the senders).
        for i in 0..self.readers.len() {
            if self.inbound.len() >= self.cfg.inbound_depth {
                break;
            }
            let conn = &mut self.readers[i];
            let mut budget = self.cfg.read_budget;
            while budget > 0 && self.inbound.len() < self.cfg.inbound_depth {
                let want = budget.min(self.read_buf.len());
                match conn.stream.read(&mut self.read_buf[..want]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        budget -= n;
                        // One owned chunk per read; complete frames then
                        // come back as zero-copy slices of it.
                        conn.asm.push(Bytes::from(self.read_buf[..n].to_vec()));
                        loop {
                            match conn.asm.next_frame() {
                                Ok(Some(frame)) => self.inbound.push_back(frame),
                                Ok(None) => break,
                                Err(_) => {
                                    // Poisoned stream (hostile length
                                    // prefix): drop the connection.
                                    conn.dead = true;
                                    break;
                                }
                            }
                        }
                        if conn.dead {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
        self.readers.retain(|c| !c.dead);
        progressed
    }
}

impl Transport for RtTransport {
    fn send_batch(&mut self, to: NodeId, frames: &[Bytes]) -> Result<usize, TransportError> {
        let now = Instant::now();
        self.ensure_writer(to, now)?;
        let mut accepted = 0;
        for frame in frames {
            let w = match self.writers.get_mut(&to) {
                Some(w) => w,
                None => {
                    return if accepted == 0 {
                        Err(TransportError::Disconnected(to))
                    } else {
                        Ok(accepted)
                    };
                }
            };
            if w.pending() + frame.len() > self.cfg.outbound_bytes {
                // Ring full: try to hand bytes to the kernel, then
                // re-check once.
                match w.flush() {
                    Ok(_) => {}
                    Err(_) => {
                        self.evict_writer(to, now);
                        return if accepted == 0 {
                            Err(TransportError::Disconnected(to))
                        } else {
                            Ok(accepted)
                        };
                    }
                }
                if w.pending() + frame.len() > self.cfg.outbound_bytes {
                    return if accepted == 0 {
                        Err(TransportError::Backpressure)
                    } else {
                        Ok(accepted)
                    };
                }
            }
            w.buf.extend_from_slice(frame);
            accepted += 1;
            if w.pending() >= self.cfg.max_batch_bytes {
                if w.flush().is_err() {
                    self.evict_writer(to, now);
                    return Ok(accepted); // accepted >= 1 here
                }
            }
        }
        Ok(accepted)
    }

    fn recv_batch(&mut self, out: &mut Vec<Bytes>, max: usize) -> usize {
        let n = max.min(self.inbound.len());
        for _ in 0..n {
            match self.inbound.pop_front() {
                Some(f) => out.push(f),
                None => break,
            }
        }
        n
    }

    fn poll(&mut self, timeout: Duration) -> Readiness {
        let start = Instant::now();
        loop {
            self.rotate();
            if !self.inbound.is_empty() {
                break;
            }
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                break;
            }
            // No selectable readiness in std: park briefly, then rotate
            // again. Under load rotate() always progresses and we never
            // reach this sleep.
            let park = self
                .cfg
                .flush_interval
                .max(Duration::from_micros(50))
                .min(timeout - elapsed);
            std::thread::sleep(park);
        }
        let now = Instant::now();
        Readiness {
            readable: !self.inbound.is_empty(),
            writable: self
                .writers
                .values()
                .all(|w| w.pending() < self.cfg.outbound_bytes)
                && (self.backoffs.is_empty() || self.backoffs.values().any(|b| !b.blocked(now))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame};

    fn bframe(from: NodeId, v: &u64) -> Bytes {
        Bytes::from(encode_frame(from, v))
    }

    /// Pump both endpoints until `want` frames arrived at `b` or timeout.
    fn pump_until(
        a: &mut RtTransport,
        b: &mut RtTransport,
        got: &mut Vec<Bytes>,
        want: usize,
        ms: u64,
    ) {
        let deadline = Instant::now() + Duration::from_millis(ms);
        while got.len() < want && Instant::now() < deadline {
            a.poll(Duration::ZERO);
            b.poll(Duration::from_micros(100));
            b.recv_batch(got, usize::MAX.min(want - got.len()));
        }
    }

    #[test]
    fn runtime_delivers_batches_in_order() {
        let hub = RtHub::new();
        let mut a = hub.endpoint(NodeId(0)).unwrap();
        let mut b = hub.endpoint(NodeId(1)).unwrap();
        let frames: Vec<Bytes> = (0..500u64).map(|i| bframe(NodeId(0), &i)).collect();
        let mut sent = 0;
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while sent < frames.len() && Instant::now() < deadline {
            match a.send_batch(NodeId(1), &frames[sent..]) {
                Ok(n) => sent += n,
                Err(e) if e.retryable() => {
                    a.poll(Duration::ZERO);
                    b.poll(Duration::ZERO);
                    b.recv_batch(&mut got, usize::MAX);
                }
                Err(e) => panic!("send failed: {e}"),
            }
        }
        assert_eq!(sent, frames.len());
        pump_until(&mut a, &mut b, &mut got, frames.len(), 10_000);
        assert_eq!(got.len(), frames.len());
        for (i, f) in got.iter().enumerate() {
            let (from, v): (NodeId, u64) = decode_frame(f).unwrap();
            assert_eq!((from, v), (NodeId(0), i as u64));
        }
    }

    #[test]
    fn runtime_bidirectional_and_injection() {
        let hub = RtHub::new();
        let mut a = hub.endpoint(NodeId(0)).unwrap();
        let mut b = hub.endpoint(NodeId(1)).unwrap();
        assert_eq!(a.send_batch(NodeId(1), &[bframe(NodeId(0), &1u64)]), Ok(1));
        assert_eq!(b.send_batch(NodeId(0), &[bframe(NodeId(1), &2u64)]), Ok(1));
        let (mut at_a, mut at_b) = (Vec::new(), Vec::new());
        let deadline = Instant::now() + Duration::from_secs(5);
        while (at_a.is_empty() || at_b.is_empty()) && Instant::now() < deadline {
            a.poll(Duration::from_micros(100));
            b.poll(Duration::from_micros(100));
            a.recv_batch(&mut at_a, 8);
            b.recv_batch(&mut at_b, 8);
        }
        let (_, v): (NodeId, u64) = decode_frame(&at_b[0]).unwrap();
        assert_eq!(v, 1);
        let (_, v): (NodeId, u64) = decode_frame(&at_a[0]).unwrap();
        assert_eq!(v, 2);
        // Client-style injection.
        hub.send(NodeId(1), &encode_frame(NodeId(1), &9u64))
            .unwrap();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.is_empty() && Instant::now() < deadline {
            b.poll(Duration::from_micros(100));
            b.recv_batch(&mut got, 1);
        }
        let (_, v): (NodeId, u64) = decode_frame(&got[0]).unwrap();
        assert_eq!(v, 9);
    }

    #[test]
    fn runtime_outbound_ring_backpressures() {
        // Tiny ring: the kernel socket buffer plus our ring fill up when
        // the receiver never polls.
        let cfg = RuntimeConfig::new()
            .outbound_bytes(2048)
            .max_batch_bytes(512);
        let hub = RtHub::with_config(cfg);
        let mut a = hub.endpoint(NodeId(0)).unwrap();
        let _b = hub.endpoint(NodeId(1)).unwrap();
        let big = Bytes::from(encode_frame(NodeId(0), &Bytes::from(vec![0u8; 1500])));
        let mut hit_backpressure = false;
        for _ in 0..10_000 {
            match a.send_batch(NodeId(1), &[big.clone()]) {
                Ok(_) => {}
                Err(TransportError::Backpressure) => {
                    hit_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(hit_backpressure, "bounded ring must eventually push back");
    }

    #[test]
    fn runtime_dead_peer_backoff_fails_fast() {
        let cfg = RuntimeConfig::new()
            .reconnect_backoff_base(Duration::from_millis(50))
            .reconnect_backoff_max(Duration::from_millis(50));
        let hub = RtHub::with_config(cfg);
        let mut a = hub.endpoint(NodeId(0)).unwrap();
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        hub.registry.lock().unwrap().insert(NodeId(1), addr);
        let frame = bframe(NodeId(0), &1u64);
        assert_eq!(
            a.send_batch(NodeId(1), &[frame.clone()]),
            Err(TransportError::Disconnected(NodeId(1)))
        );
        let t0 = Instant::now();
        for _ in 0..50 {
            assert_eq!(
                a.send_batch(NodeId(1), &[frame.clone()]),
                Err(TransportError::Disconnected(NodeId(1)))
            );
        }
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "backoff window fails fast: {:?}",
            t0.elapsed()
        );
    }
}
