//! # wire — binary codec + pluggable transports for P2P-LTR
//!
//! Until this crate existed, protocol messages crossed node boundaries as
//! in-memory Rust enums inside the simulator: no wire format, no
//! byte-accurate sizing, no path to real traffic. This crate is that
//! missing layer:
//!
//! * a **deterministic, versioned binary codec** — [`Encode`]/[`Decode`]
//!   over canonical varints, fixed-width ring ids, length-prefixed names
//!   and `Bytes`-backed payload slices — implemented for every protocol
//!   message: `ChordMsg`, `KtsMsg`, the P2P-Log record, and (in the
//!   `p2p_ltr` crate) the `Payload` envelope that multiplexes them;
//! * **length-prefixed frames** ([`frame`]) carrying a version byte and
//!   the sender address, with a [`FrameAssembler`] that re-frames
//!   arbitrary stream chunkings;
//! * a batch- and readiness-oriented [`Transport`] trait with three
//!   endpoints — in-process bounded queues ([`MemHub`]), the threaded
//!   loopback-TCP baseline ([`TcpHub`]), and the non-blocking
//!   **event-loop runtime** ([`RtHub`], [`runtime`]) with connection
//!   multiplexing, write batching and bounded backpressured queues —
//!   plus the [`WireNet`] runner that drives unmodified
//!   [`simnet::Process`] state machines over any of them, in real time;
//! * total decoding: malformed input of any kind (truncation, corruption,
//!   hostile length prefixes, unknown tags/versions) yields a
//!   [`WireError`], never a panic and never an oversized allocation.
//!
//! The third transport is the simulator itself: install a wire meter
//! (`simnet::Sim::set_wire_meter`) built on [`frame::frame_len`] and the
//! simulator charges per-message latency from the *actual encoded size*
//! of each message whenever `NetConfig::bandwidth` is set.

#![deny(missing_docs)]

pub mod codec;
pub mod frame;
pub mod proto;
pub mod runner;
pub mod runtime;
pub mod transport;
pub mod varint;

pub use codec::{Decode, Encode, Reader, WireError};
pub use frame::{
    decode_frame, decode_frame_bytes, encode_frame, frame_len, BytesAssembler, FrameAssembler,
    FRAME_HEADER_LEN, MAX_FRAME_LEN, WIRE_VERSION,
};
pub use proto::{chord_class, kts_class};
pub use runner::WireNet;
pub use runtime::{RtHub, RtTransport, RuntimeConfig};
pub use transport::{
    MemHub, MemTransport, Readiness, TcpHub, TcpTransport, Transport, TransportError,
};
