//! LEB128 variable-length integers — the workhorse of the codec.
//!
//! Unsigned base-128, little-endian groups, high bit = continuation. Small
//! values (timestamps, counts, handles, lengths) take 1–2 bytes; a full
//! `u64` takes at most 10. Encoding is canonical: the decoder rejects
//! over-long sequences (a non-final encoding of the same value), so every
//! value has exactly one byte representation — a requirement for
//! deterministic, comparable frames.

use crate::codec::WireError;

/// Maximum encoded length of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Append the varint encoding of `v` to `out`.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of `v` as a varint, without encoding it.
#[inline]
pub fn varint_len(v: u64) -> usize {
    // 1 + floor(bits/7); bits = 64 - leading_zeros, with 0 taking 1 byte.
    ((64 - (v | 1).leading_zeros() as usize) + 6) / 7
}

/// Decode one varint from the front of `buf`, returning `(value, bytes
/// consumed)`. Total: truncated input and non-canonical or overflowing
/// sequences are `Err`, never a panic.
pub fn read_varint(buf: &[u8]) -> Result<(u64, usize), WireError> {
    let mut v: u64 = 0;
    for (i, &byte) in buf.iter().enumerate().take(MAX_VARINT_LEN) {
        let group = (byte & 0x7f) as u64;
        if i == 9 && byte > 0x01 {
            // The 10th byte may only contribute the final bit of a u64.
            return Err(WireError::VarintOverflow);
        }
        v |= group << (7 * i);
        if byte & 0x80 == 0 {
            if byte == 0 && i > 0 {
                // Trailing zero group: an over-long (non-canonical) form.
                return Err(WireError::VarintOverflow);
            }
            return Ok((v, i + 1));
        }
    }
    if buf.len() < MAX_VARINT_LEN {
        Err(WireError::Truncated)
    } else {
        Err(WireError::VarintOverflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> usize {
        let mut out = Vec::new();
        write_varint(&mut out, v);
        assert_eq!(out.len(), varint_len(v), "len mismatch for {v}");
        let (back, used) = read_varint(&out).unwrap();
        assert_eq!(back, v);
        assert_eq!(used, out.len());
        out.len()
    }

    #[test]
    fn roundtrips_and_lengths() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(1), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(16_383), 2);
        assert_eq!(roundtrip(16_384), 3);
        assert_eq!(roundtrip(u32::MAX as u64), 5);
        assert_eq!(roundtrip(u64::MAX), 10);
        for shift in 0..64 {
            roundtrip(1u64 << shift);
            roundtrip((1u64 << shift) - 1);
        }
    }

    #[test]
    fn truncated_is_err() {
        let mut out = Vec::new();
        write_varint(&mut out, u64::MAX);
        for cut in 0..out.len() {
            assert_eq!(read_varint(&out[..cut]), Err(WireError::Truncated));
        }
        assert_eq!(read_varint(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn overlong_and_overflow_rejected() {
        // 0 encoded in two bytes (continuation + zero group).
        assert_eq!(read_varint(&[0x80, 0x00]), Err(WireError::VarintOverflow));
        // 1 encoded in two bytes.
        assert_eq!(read_varint(&[0x81, 0x00]), Err(WireError::VarintOverflow));
        // 11 continuation bytes: too long for a u64.
        let long = [0xffu8; 11];
        assert_eq!(read_varint(&long), Err(WireError::VarintOverflow));
        // 10 bytes whose final group overflows the 64th bit.
        let mut of = [0xffu8; 10];
        of[9] = 0x02;
        assert_eq!(read_varint(&of), Err(WireError::VarintOverflow));
        // u64::MAX itself is fine.
        let mut ok = [0xffu8; 10];
        ok[9] = 0x01;
        assert_eq!(read_varint(&ok), Ok((u64::MAX, 10)));
    }

    #[test]
    fn decode_consumes_prefix_only() {
        let mut out = Vec::new();
        write_varint(&mut out, 300);
        out.extend_from_slice(&[0xde, 0xad]);
        let (v, used) = read_varint(&out).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, 2);
    }
}
