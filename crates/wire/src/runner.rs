//! [`WireNet`] — run the *same* protocol state machines that run on the
//! simulator over a real transport and real time.
//!
//! Each node is a [`simnet::Process`] exactly as in the simulator; the
//! runner owns per-node RNG/metrics/timer state, constructs a detached
//! [`Ctx`] for every upcall, and executes the buffered [`Effects`]
//! against the transport (messages become encoded frames) and a
//! real-time timer wheel (sim [`Duration`](simnet::Duration)s map 1:1 to
//! wall-clock).
//!
//! The runner is single-threaded and cooperative — node state stays
//! inspectable between pumps — while the transport underneath may be
//! fully threaded (see [`TcpHub`](crate::TcpHub)).
//!
//! detlint::allow-file(DET-CLOCK, this module IS the real-time harness — wall time is its contract and never feeds back into simulator runs)

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;

use simnet::{CounterId, Ctx, Effects, Metrics, NodeId, ProcessAny, Rng64, Time, TimerId};

use crate::codec::{Decode, Encode};
use crate::frame::{decode_frame, encode_frame};
use crate::transport::Transport;

/// One armed timer: fires at `at`, insertion-ordered within an instant.
type TimerEntry = Reverse<(Time, u64, u64, TimerId)>; // (at, seq, tag, id)

struct WireSlot<M> {
    me: NodeId,
    proc: Box<dyn ProcessAny<M>>,
    transport: Box<dyn Transport>,
    rng: Rng64,
    metrics: Metrics,
    /// Transport failure counters, pre-registered at slot creation.
    send_errors: CounterId,
    decode_errors: CounterId,
    timer_seq: u64,
    seq: u64,
    timers: BinaryHeap<TimerEntry>,
    cancelled: HashSet<TimerId>,
    halted: bool,
}

/// A set of protocol nodes running over a real transport in real time.
pub struct WireNet<M> {
    slots: Vec<WireSlot<M>>,
    /// Builds the endpoint of a newly added node.
    endpoint_for: Box<dyn FnMut(NodeId) -> Box<dyn Transport>>,
    /// Client-side injector (external commands).
    inject: Box<dyn Fn(NodeId, &[u8]) -> Result<(), crate::TransportError>>,
    start: Instant,
    seed: u64,
}

impl<M: Encode + Decode + 'static> WireNet<M> {
    /// Build over arbitrary endpoints: `endpoint_for` creates one per
    /// added node, `inject` delivers external frames (the client path).
    pub fn new(
        seed: u64,
        endpoint_for: Box<dyn FnMut(NodeId) -> Box<dyn Transport>>,
        inject: Box<dyn Fn(NodeId, &[u8]) -> Result<(), crate::TransportError>>,
    ) -> Self {
        WireNet {
            slots: Vec::new(),
            endpoint_for,
            inject,
            start: Instant::now(),
            seed,
        }
    }

    /// Build over in-process queues (the transport analogue of the
    /// simulator's delivery path).
    pub fn in_process(seed: u64) -> Self {
        let hub = crate::MemHub::new();
        let make = hub.clone();
        Self::new(
            seed,
            Box::new(move |me| Box::new(make.endpoint(me)) as Box<dyn Transport>),
            Box::new(move |to, frame| hub.send(to, frame)),
        )
    }

    /// Build over threaded loopback TCP.
    pub fn loopback_tcp(seed: u64) -> std::io::Result<Self> {
        let hub = crate::TcpHub::new();
        let make = hub.clone();
        Ok(Self::new(
            seed,
            Box::new(move |me| {
                Box::new(make.endpoint(me).expect("bind loopback listener")) as Box<dyn Transport>
            }),
            Box::new(move |to, frame| hub.send(to, frame)),
        ))
    }

    /// Wall-clock time since construction, as the virtual clock the
    /// processes see.
    pub fn now(&self) -> Time {
        Time::from_micros(self.start.elapsed().as_micros().min(u64::MAX as u128) as u64)
    }

    /// Add a node; its `on_start` runs immediately. Addresses are assigned
    /// densely in add order, mirroring `Sim::add_node`.
    pub fn add_node<P: simnet::Process<M> + std::any::Any>(&mut self, proc: P) -> NodeId {
        let me = NodeId(self.slots.len() as u32);
        let transport = (self.endpoint_for)(me);
        let mut metrics = Metrics::new();
        let send_errors = metrics.register_counter("wire.send_errors");
        let decode_errors = metrics.register_counter("wire.decode_errors");
        self.slots.push(WireSlot {
            me,
            proc: Box::new(proc),
            transport,
            rng: Rng64::new(self.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(me.0 as u64 + 1))),
            metrics,
            send_errors,
            decode_errors,
            timer_seq: 0,
            seq: 0,
            timers: BinaryHeap::new(),
            cancelled: HashSet::new(),
            halted: false,
        });
        let now = self.now();
        let slot = self.slots.last_mut().expect("just pushed");
        let mut ctx = Ctx::detached(
            now,
            me,
            &mut slot.rng,
            &mut slot.metrics,
            &mut slot.timer_seq,
        );
        slot.proc.on_start(&mut ctx);
        let eff = ctx.take_effects();
        Self::apply_effects(slot, now, eff);
        me
    }

    /// Inject an external message to `to` (the client path; mirrors
    /// `Sim::send_external`, including the `from == to` convention).
    pub fn send_external(&self, to: NodeId, msg: M) -> Result<(), crate::TransportError> {
        (self.inject)(to, &encode_frame(to, &msg))
    }

    /// Downcast a node's process state for inspection.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.slots
            .get(id.0 as usize)
            .and_then(|s| s.proc.as_any().downcast_ref::<T>())
    }

    /// A node's private metrics registry.
    pub fn metrics(&self, id: NodeId) -> &Metrics {
        &self.slots[id.0 as usize].metrics
    }

    /// True once the node called `halt_self` (or was [`WireNet::kill`]ed).
    pub fn is_halted(&self, id: NodeId) -> bool {
        self.slots[id.0 as usize].halted
    }

    /// Kill a node's process: inbound frames are drained and dropped and
    /// its timers stop firing, while the transport endpoint (socket,
    /// queue) stays bound — the process-crash half of a recovery drill.
    pub fn kill(&mut self, id: NodeId) {
        self.slots[id.0 as usize].halted = true;
    }

    /// Replace a killed node's process with `proc` (typically rebuilt from
    /// the dead incarnation's on-disk store) and run its `on_start`. The
    /// dead process's pending timers are discarded; the transport endpoint
    /// — and therefore the node's address — is reused, so peers keep
    /// talking to the same socket. Panics if the node was not killed.
    pub fn restart_node<P: simnet::Process<M> + std::any::Any>(&mut self, id: NodeId, proc: P) {
        let now = self.now();
        let slot = &mut self.slots[id.0 as usize];
        assert!(slot.halted, "only killed nodes can be restarted");
        slot.proc = Box::new(proc);
        slot.halted = false;
        slot.timers.clear();
        slot.cancelled.clear();
        let mut ctx = Ctx::detached(
            now,
            slot.me,
            &mut slot.rng,
            &mut slot.metrics,
            &mut slot.timer_seq,
        );
        slot.proc.on_start(&mut ctx);
        let eff = ctx.take_effects();
        Self::apply_effects(slot, now, eff);
    }

    fn apply_effects(slot: &mut WireSlot<M>, now: Time, eff: Effects<M>) {
        for (to, msg) in eff.msgs {
            // A frame the transport cannot deliver right now is a dropped
            // packet — exactly the simulator's loss model. Count it.
            if slot
                .transport
                .send(to, &encode_frame(slot.me, &msg))
                .is_err()
            {
                slot.metrics.incr_id(slot.send_errors);
            }
        }
        for (id, delay, tag) in eff.timers {
            slot.seq += 1;
            slot.timers.push(Reverse((now + delay, slot.seq, tag, id)));
        }
        for id in eff.cancels {
            slot.cancelled.insert(id);
        }
        if eff.halt {
            slot.halted = true;
        }
    }

    /// Pump every node once: drain inbound frames, fire due timers.
    /// Returns the number of upcalls dispatched (0 = idle).
    pub fn pump(&mut self) -> usize {
        let now = self.now();
        let mut dispatched = 0;
        for slot in &mut self.slots {
            // Inbound frames.
            while let Some(frame) = slot.transport.try_recv() {
                if slot.halted {
                    continue; // Departed nodes silently drop, as in the sim.
                }
                let Ok((from, msg)) = decode_frame::<M>(&frame) else {
                    // A malformed frame must never take the node down.
                    slot.metrics.incr_id(slot.decode_errors);
                    continue;
                };
                let mut ctx = Ctx::detached(
                    now,
                    slot.me,
                    &mut slot.rng,
                    &mut slot.metrics,
                    &mut slot.timer_seq,
                );
                slot.proc.on_message(&mut ctx, from, msg);
                let eff = ctx.take_effects();
                Self::apply_effects(slot, now, eff);
                dispatched += 1;
            }
            // Due timers.
            while let Some(&Reverse((at, _, _, _))) = slot.timers.peek() {
                if at > now || slot.halted {
                    break;
                }
                let Reverse((_, _, tag, id)) = slot.timers.pop().expect("peeked");
                if slot.cancelled.remove(&id) {
                    continue;
                }
                let mut ctx = Ctx::detached(
                    now,
                    slot.me,
                    &mut slot.rng,
                    &mut slot.metrics,
                    &mut slot.timer_seq,
                );
                slot.proc.on_timer(&mut ctx, tag);
                let eff = ctx.take_effects();
                Self::apply_effects(slot, now, eff);
                dispatched += 1;
            }
        }
        dispatched
    }

    /// Pump for `d` wall-clock time, sleeping briefly when idle.
    pub fn run_for(&mut self, d: std::time::Duration) {
        let deadline = Instant::now() + d;
        while Instant::now() < deadline {
            if self.pump() == 0 {
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        }
    }

    /// Pump until `pred(self)` holds, checking between pumps; `false` on
    /// timeout.
    pub fn run_until(
        &mut self,
        timeout: std::time::Duration,
        mut pred: impl FnMut(&WireNet<M>) -> bool,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if pred(self) {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            if self.pump() == 0 {
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Duration;

    /// The sim.rs test process, re-used verbatim over real transports.
    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Encode for Msg {
        fn encode(&self, out: &mut Vec<u8>) {
            match self {
                Msg::Ping(n) => {
                    out.push(0);
                    n.encode(out);
                }
                Msg::Pong(n) => {
                    out.push(1);
                    n.encode(out);
                }
            }
        }
        fn encoded_len(&self) -> usize {
            1 + match self {
                Msg::Ping(n) | Msg::Pong(n) => n.encoded_len(),
            }
        }
    }

    impl Decode for Msg {
        fn decode(r: &mut crate::Reader<'_>) -> Result<Self, crate::WireError> {
            match r.read_u8()? {
                0 => Ok(Msg::Ping(u32::decode(r)?)),
                1 => Ok(Msg::Pong(u32::decode(r)?)),
                tag => Err(crate::WireError::BadTag { what: "Msg", tag }),
            }
        }
    }

    struct Echo {
        pongs: u32,
        ticks: u32,
        peer: Option<NodeId>,
    }

    impl simnet::Process<Msg> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(Duration::from_millis(10), 1);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(n) => ctx.send(from, Msg::Pong(n)),
                Msg::Pong(_) => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
            if tag == 1 {
                self.ticks += 1;
                if let Some(peer) = self.peer {
                    ctx.send(peer, Msg::Ping(self.ticks));
                }
                if self.ticks < 5 {
                    ctx.set_timer(Duration::from_millis(10), 1);
                }
            }
        }
    }

    fn ping_pong_over(mut net: WireNet<Msg>) {
        let b = net.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let a = net.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        let ok = net.run_until(std::time::Duration::from_secs(10), |n| {
            n.node_as::<Echo>(a).is_some_and(|e| e.pongs == 5)
        });
        assert!(ok, "a received all 5 pongs over the transport");
        assert_eq!(net.node_as::<Echo>(a).unwrap().ticks, 5);
    }

    #[test]
    fn ping_pong_in_process() {
        ping_pong_over(WireNet::in_process(1));
    }

    #[test]
    fn ping_pong_loopback_tcp() {
        ping_pong_over(WireNet::loopback_tcp(1).unwrap());
    }

    #[test]
    fn external_injection_and_malformed_frames() {
        let mut net = WireNet::<Msg>::in_process(2);
        let b = net.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        net.send_external(b, Msg::Pong(1)).unwrap();
        assert!(net.run_until(std::time::Duration::from_secs(5), |n| {
            n.node_as::<Echo>(b).is_some_and(|e| e.pongs == 1)
        }));
        // A garbage frame is counted and survived, not a crash.
        (net.inject)(b, &crate::frame::encode_frame(b, &u64::MAX)).unwrap();
        net.run_for(std::time::Duration::from_millis(50));
        assert_eq!(net.metrics(b).counter("wire.decode_errors"), 1);
    }
}
