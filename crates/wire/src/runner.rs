//! [`WireNet`] — run the *same* protocol state machines that run on the
//! simulator over a real transport and real time.
//!
//! Each node is a [`simnet::Process`] exactly as in the simulator; the
//! runner owns per-node RNG/metrics/timer state, constructs a detached
//! [`Ctx`] for every upcall, and executes the buffered [`Effects`]
//! against the transport (messages become encoded frames) and a
//! real-time timer wheel (sim [`Duration`](simnet::Duration)s map 1:1 to
//! wall-clock).
//!
//! The runner is single-threaded and cooperative — node state stays
//! inspectable between pumps — while the transport underneath may be
//! fully threaded (see [`TcpHub`](crate::TcpHub)).
//!
//! detlint::allow-file(DET-CLOCK, this module IS the real-time harness — wall time is its contract and never feeds back into simulator runs)

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet, VecDeque};
use std::time::Instant;

use bytes::Bytes;
use simnet::{CounterId, Ctx, Effects, Metrics, NodeId, ProcessAny, Rng64, Time, TimerId};

use crate::codec::{Decode, Encode};
use crate::frame::{decode_frame_bytes, encode_frame};
use crate::transport::{Transport, TransportError};

/// One armed timer: fires at `at`, insertion-ordered within an instant.
type TimerEntry = Reverse<(Time, u64, u64, TimerId)>; // (at, seq, tag, id)

/// Frames a slot may hold back for retry after backpressure before it
/// starts dropping (the loss model of a full NIC queue).
const PENDING_CAP: usize = 16 * 1024;

/// Max frames pulled per `recv_batch` call while pumping.
const RECV_CHUNK: usize = 256;

/// Per-class transport send-failure counters, pre-registered at slot
/// creation: one `wire.send_err.<class>` counter per
/// [`TransportError`] class (see [`TransportError::class`]).
struct SendErrCounters {
    unknown_peer: CounterId,
    backpressure: CounterId,
    disconnected: CounterId,
    io: CounterId,
}

impl SendErrCounters {
    fn register(metrics: &mut Metrics) -> Self {
        SendErrCounters {
            unknown_peer: metrics.register_counter("wire.send_err.unknown_peer"),
            backpressure: metrics.register_counter("wire.send_err.backpressure"),
            disconnected: metrics.register_counter("wire.send_err.disconnected"),
            io: metrics.register_counter("wire.send_err.io"),
        }
    }

    fn id_for(&self, e: &TransportError) -> CounterId {
        match e {
            TransportError::UnknownPeer(_) => self.unknown_peer,
            TransportError::Backpressure => self.backpressure,
            TransportError::Disconnected(_) => self.disconnected,
            TransportError::Io(_) => self.io,
        }
    }
}

struct WireSlot<M> {
    me: NodeId,
    proc: Box<dyn ProcessAny<M>>,
    transport: Box<dyn Transport>,
    rng: Rng64,
    metrics: Metrics,
    /// Transport failure counters, pre-registered at slot creation.
    send_errors: SendErrCounters,
    decode_errors: CounterId,
    /// Encoded frames awaiting (re)delivery, in per-destination order.
    /// Backpressured destinations park their frames here until the next
    /// pump; non-retryable failures drop them (the sim's loss model).
    pending: VecDeque<(NodeId, Bytes)>,
    /// Reusable receive scratch for `recv_batch`.
    recv_buf: Vec<Bytes>,
    timer_seq: u64,
    seq: u64,
    timers: BinaryHeap<TimerEntry>,
    cancelled: HashSet<TimerId>,
    halted: bool,
}

/// A set of protocol nodes running over a real transport in real time.
pub struct WireNet<M> {
    slots: Vec<WireSlot<M>>,
    /// Builds the endpoint of a newly added node.
    endpoint_for: Box<dyn FnMut(NodeId) -> Box<dyn Transport>>,
    /// Client-side injector (external commands).
    inject: Box<dyn Fn(NodeId, &[u8]) -> Result<(), crate::TransportError>>,
    start: Instant,
    seed: u64,
}

impl<M: Encode + Decode + 'static> WireNet<M> {
    /// Build over arbitrary endpoints: `endpoint_for` creates one per
    /// added node, `inject` delivers external frames (the client path).
    pub fn new(
        seed: u64,
        endpoint_for: Box<dyn FnMut(NodeId) -> Box<dyn Transport>>,
        inject: Box<dyn Fn(NodeId, &[u8]) -> Result<(), crate::TransportError>>,
    ) -> Self {
        WireNet {
            slots: Vec::new(),
            endpoint_for,
            inject,
            start: Instant::now(),
            seed,
        }
    }

    /// Build over in-process queues (the transport analogue of the
    /// simulator's delivery path).
    pub fn in_process(seed: u64) -> Self {
        let hub = crate::MemHub::new();
        let make = hub.clone();
        Self::new(
            seed,
            Box::new(move |me| Box::new(make.endpoint(me)) as Box<dyn Transport>),
            Box::new(move |to, frame| hub.send(to, frame)),
        )
    }

    /// Build over threaded loopback TCP.
    pub fn loopback_tcp(seed: u64) -> std::io::Result<Self> {
        let hub = crate::TcpHub::new();
        let make = hub.clone();
        Ok(Self::new(
            seed,
            Box::new(move |me| {
                Box::new(make.endpoint(me).expect("bind loopback listener")) as Box<dyn Transport>
            }),
            Box::new(move |to, frame| hub.send(to, frame)),
        ))
    }

    /// Build over the non-blocking event-loop runtime
    /// ([`RtHub`](crate::RtHub)): one socket pair per talking peer pair,
    /// write batching, bounded queues — `cfg` tunes all of it.
    pub fn runtime_tcp(seed: u64, cfg: crate::RuntimeConfig) -> std::io::Result<Self> {
        let hub = crate::RtHub::with_config(cfg);
        let make = hub.clone();
        Ok(Self::new(
            seed,
            Box::new(move |me| {
                Box::new(make.endpoint(me).expect("bind loopback listener")) as Box<dyn Transport>
            }),
            Box::new(move |to, frame| hub.send(to, frame)),
        ))
    }

    /// Wall-clock time since construction, as the virtual clock the
    /// processes see.
    pub fn now(&self) -> Time {
        Time::from_micros(self.start.elapsed().as_micros().min(u64::MAX as u128) as u64)
    }

    /// Add a node; its `on_start` runs immediately. Addresses are assigned
    /// densely in add order, mirroring `Sim::add_node`.
    pub fn add_node<P: simnet::Process<M> + std::any::Any>(&mut self, proc: P) -> NodeId {
        let me = NodeId(self.slots.len() as u32);
        let transport = (self.endpoint_for)(me);
        let mut metrics = Metrics::new();
        let send_errors = SendErrCounters::register(&mut metrics);
        let decode_errors = metrics.register_counter("wire.decode_errors");
        self.slots.push(WireSlot {
            me,
            proc: Box::new(proc),
            transport,
            rng: Rng64::new(self.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(me.0 as u64 + 1))),
            metrics,
            send_errors,
            decode_errors,
            pending: VecDeque::new(),
            recv_buf: Vec::new(),
            timer_seq: 0,
            seq: 0,
            timers: BinaryHeap::new(),
            cancelled: HashSet::new(),
            halted: false,
        });
        let now = self.now();
        let slot = self.slots.last_mut().expect("just pushed");
        let mut ctx = Ctx::detached(
            now,
            me,
            &mut slot.rng,
            &mut slot.metrics,
            &mut slot.timer_seq,
        );
        slot.proc.on_start(&mut ctx);
        let eff = ctx.take_effects();
        Self::apply_effects(slot, now, eff);
        Self::flush_pending(slot);
        me
    }

    /// Inject an external message to `to` (the client path; mirrors
    /// `Sim::send_external`, including the `from == to` convention).
    pub fn send_external(&self, to: NodeId, msg: M) -> Result<(), crate::TransportError> {
        (self.inject)(to, &encode_frame(to, &msg))
    }

    /// Downcast a node's process state for inspection.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.slots
            .get(id.0 as usize)
            .and_then(|s| s.proc.as_any().downcast_ref::<T>())
    }

    /// A node's private metrics registry.
    pub fn metrics(&self, id: NodeId) -> &Metrics {
        &self.slots[id.0 as usize].metrics
    }

    /// True once the node called `halt_self` (or was [`WireNet::kill`]ed).
    pub fn is_halted(&self, id: NodeId) -> bool {
        self.slots[id.0 as usize].halted
    }

    /// Kill a node's process: inbound frames are drained and dropped and
    /// its timers stop firing, while the transport endpoint (socket,
    /// queue) stays bound — the process-crash half of a recovery drill.
    pub fn kill(&mut self, id: NodeId) {
        self.slots[id.0 as usize].halted = true;
    }

    /// Replace a killed node's process with `proc` (typically rebuilt from
    /// the dead incarnation's on-disk store) and run its `on_start`. The
    /// dead process's pending timers are discarded; the transport endpoint
    /// — and therefore the node's address — is reused, so peers keep
    /// talking to the same socket. Panics if the node was not killed.
    pub fn restart_node<P: simnet::Process<M> + std::any::Any>(&mut self, id: NodeId, proc: P) {
        let now = self.now();
        let slot = &mut self.slots[id.0 as usize];
        assert!(slot.halted, "only killed nodes can be restarted");
        slot.proc = Box::new(proc);
        slot.halted = false;
        slot.timers.clear();
        slot.cancelled.clear();
        let mut ctx = Ctx::detached(
            now,
            slot.me,
            &mut slot.rng,
            &mut slot.metrics,
            &mut slot.timer_seq,
        );
        slot.proc.on_start(&mut ctx);
        let eff = ctx.take_effects();
        Self::apply_effects(slot, now, eff);
        Self::flush_pending(slot);
    }

    fn apply_effects(slot: &mut WireSlot<M>, now: Time, eff: Effects<M>) {
        for (to, msg) in eff.msgs {
            if slot.pending.len() >= PENDING_CAP {
                // The retry queue is the NIC queue: full means this frame
                // is a dropped packet — exactly the simulator's loss
                // model. Count it and move on.
                slot.metrics.incr_id(slot.send_errors.backpressure);
                continue;
            }
            slot.pending
                .push_back((to, Bytes::from(encode_frame(slot.me, &msg))));
        }
        for (id, delay, tag) in eff.timers {
            slot.seq += 1;
            slot.timers.push(Reverse((now + delay, slot.seq, tag, id)));
        }
        for id in eff.cancels {
            slot.cancelled.insert(id);
        }
        if eff.halt {
            slot.halted = true;
        }
    }

    /// Hand pending frames to the transport in per-destination batches.
    /// Backpressured remainders stay parked for the next pump;
    /// non-retryable failures drop their frames (dropped packets, the
    /// sim's loss model), each failure counted under its error class.
    fn flush_pending(slot: &mut WireSlot<M>) {
        if slot.pending.is_empty() {
            return;
        }
        let mut batches: BTreeMap<NodeId, Vec<Bytes>> = BTreeMap::new();
        for (to, frame) in slot.pending.drain(..) {
            batches.entry(to).or_default().push(frame);
        }
        for (to, mut frames) in batches {
            let mut sent = 0;
            while sent < frames.len() {
                match slot.transport.send_batch(to, &frames[sent..]) {
                    Ok(n) => {
                        sent += n;
                        if sent < frames.len() {
                            // Partial accept: the outbound ring filled.
                            slot.metrics.incr_id(slot.send_errors.backpressure);
                            break;
                        }
                    }
                    Err(e) => {
                        slot.metrics.incr_id(slot.send_errors.id_for(&e));
                        if !e.retryable() {
                            frames.truncate(sent); // Drop the remainder.
                        }
                        break;
                    }
                }
            }
            for frame in frames.drain(sent..) {
                slot.pending.push_back((to, frame));
            }
        }
    }

    /// Pump every node once: run one transport I/O rotation, retry parked
    /// frames, drain inbound frames, fire due timers, then flush what the
    /// handlers produced as batches.
    /// Returns the number of upcalls dispatched (0 = idle).
    pub fn pump(&mut self) -> usize {
        let now = self.now();
        let mut dispatched = 0;
        for slot in &mut self.slots {
            // One non-blocking I/O rotation (accept/flush/read for the
            // event-loop runtime, a no-op for the threaded transports),
            // then retry anything parked by earlier backpressure.
            slot.transport.poll(std::time::Duration::ZERO);
            Self::flush_pending(slot);
            // Inbound frames, drained in batches.
            loop {
                let mut buf = std::mem::take(&mut slot.recv_buf);
                buf.clear();
                let n = slot.transport.recv_batch(&mut buf, RECV_CHUNK);
                for frame in buf.drain(..) {
                    if slot.halted {
                        continue; // Departed nodes silently drop, as in the sim.
                    }
                    let Ok((from, msg)) = decode_frame_bytes::<M>(&frame) else {
                        // A malformed frame must never take the node down.
                        slot.metrics.incr_id(slot.decode_errors);
                        continue;
                    };
                    let mut ctx = Ctx::detached(
                        now,
                        slot.me,
                        &mut slot.rng,
                        &mut slot.metrics,
                        &mut slot.timer_seq,
                    );
                    slot.proc.on_message(&mut ctx, from, msg);
                    let eff = ctx.take_effects();
                    Self::apply_effects(slot, now, eff);
                    dispatched += 1;
                }
                slot.recv_buf = buf;
                if n < RECV_CHUNK {
                    break;
                }
            }
            // Due timers.
            while let Some(&Reverse((at, _, _, _))) = slot.timers.peek() {
                if at > now || slot.halted {
                    break;
                }
                let Reverse((_, _, tag, id)) = slot.timers.pop().expect("peeked");
                if slot.cancelled.remove(&id) {
                    continue;
                }
                let mut ctx = Ctx::detached(
                    now,
                    slot.me,
                    &mut slot.rng,
                    &mut slot.metrics,
                    &mut slot.timer_seq,
                );
                slot.proc.on_timer(&mut ctx, tag);
                let eff = ctx.take_effects();
                Self::apply_effects(slot, now, eff);
                dispatched += 1;
            }
            // Everything the handlers queued this pump goes out as one
            // batched flush per destination.
            Self::flush_pending(slot);
        }
        dispatched
    }

    /// Park until an endpoint reports inbound readiness or `budget`
    /// elapses. The wait is delegated to the transports' `poll` — the
    /// event-loop runtime turns it into I/O rotations, the queue
    /// transports into a bounded block on their channel — instead of the
    /// runner spin-sleeping blind.
    fn idle_wait(&mut self, budget: std::time::Duration) {
        if self.slots.is_empty() {
            std::thread::sleep(budget);
            return;
        }
        let slice = (budget / self.slots.len() as u32).max(std::time::Duration::from_micros(100));
        for slot in &mut self.slots {
            if slot.transport.poll(slice).readable {
                return;
            }
        }
    }

    /// Pump for `d` wall-clock time, parking on transport readiness when
    /// idle.
    pub fn run_for(&mut self, d: std::time::Duration) {
        let deadline = Instant::now() + d;
        while Instant::now() < deadline {
            if self.pump() == 0 {
                self.idle_wait(std::time::Duration::from_micros(500));
            }
        }
    }

    /// Pump until `pred(self)` holds, checking between pumps; `false` on
    /// timeout.
    pub fn run_until(
        &mut self,
        timeout: std::time::Duration,
        mut pred: impl FnMut(&WireNet<M>) -> bool,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if pred(self) {
                return true;
            }
            if Instant::now() > deadline {
                return false;
            }
            if self.pump() == 0 {
                self.idle_wait(std::time::Duration::from_micros(500));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Duration;

    /// The sim.rs test process, re-used verbatim over real transports.
    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Encode for Msg {
        fn encode(&self, out: &mut Vec<u8>) {
            match self {
                Msg::Ping(n) => {
                    out.push(0);
                    n.encode(out);
                }
                Msg::Pong(n) => {
                    out.push(1);
                    n.encode(out);
                }
            }
        }
        fn encoded_len(&self) -> usize {
            1 + match self {
                Msg::Ping(n) | Msg::Pong(n) => n.encoded_len(),
            }
        }
    }

    impl Decode for Msg {
        fn decode(r: &mut crate::Reader<'_>) -> Result<Self, crate::WireError> {
            match r.read_u8()? {
                0 => Ok(Msg::Ping(u32::decode(r)?)),
                1 => Ok(Msg::Pong(u32::decode(r)?)),
                tag => Err(crate::WireError::BadTag { what: "Msg", tag }),
            }
        }
    }

    struct Echo {
        pongs: u32,
        ticks: u32,
        peer: Option<NodeId>,
    }

    impl simnet::Process<Msg> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(Duration::from_millis(10), 1);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(n) => ctx.send(from, Msg::Pong(n)),
                Msg::Pong(_) => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
            if tag == 1 {
                self.ticks += 1;
                if let Some(peer) = self.peer {
                    ctx.send(peer, Msg::Ping(self.ticks));
                }
                if self.ticks < 5 {
                    ctx.set_timer(Duration::from_millis(10), 1);
                }
            }
        }
    }

    fn ping_pong_over(mut net: WireNet<Msg>) {
        let b = net.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let a = net.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        let ok = net.run_until(std::time::Duration::from_secs(10), |n| {
            n.node_as::<Echo>(a).is_some_and(|e| e.pongs == 5)
        });
        assert!(ok, "a received all 5 pongs over the transport");
        assert_eq!(net.node_as::<Echo>(a).unwrap().ticks, 5);
    }

    #[test]
    fn ping_pong_in_process() {
        ping_pong_over(WireNet::in_process(1));
    }

    #[test]
    fn ping_pong_loopback_tcp() {
        ping_pong_over(WireNet::loopback_tcp(1).unwrap());
    }

    #[test]
    fn ping_pong_runtime_tcp() {
        ping_pong_over(WireNet::runtime_tcp(1, crate::RuntimeConfig::new()).unwrap());
    }

    #[test]
    fn send_errors_are_counted_per_class() {
        let mut net = WireNet::<Msg>::in_process(3);
        // Echo pings a peer that was never added: every tick is an
        // UnknownPeer drop, counted under its own class.
        let a = net.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(NodeId(99)),
        });
        assert!(net.run_until(std::time::Duration::from_secs(10), |n| {
            n.metrics(a).counter("wire.send_err.unknown_peer") == 5
        }));
        assert_eq!(net.metrics(a).counter("wire.send_err.backpressure"), 0);
        assert_eq!(net.metrics(a).counter("wire.send_err.disconnected"), 0);
        assert_eq!(net.metrics(a).counter("wire.send_err.io"), 0);
    }

    #[test]
    fn external_injection_and_malformed_frames() {
        let mut net = WireNet::<Msg>::in_process(2);
        let b = net.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        net.send_external(b, Msg::Pong(1)).unwrap();
        assert!(net.run_until(std::time::Duration::from_secs(5), |n| {
            n.node_as::<Echo>(b).is_some_and(|e| e.pongs == 1)
        }));
        // A garbage frame is counted and survived, not a crash.
        (net.inject)(b, &crate::frame::encode_frame(b, &u64::MAX)).unwrap();
        net.run_for(std::time::Duration::from_millis(50));
        assert_eq!(net.metrics(b).counter("wire.decode_errors"), 1);
    }
}
