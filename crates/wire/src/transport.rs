//! Pluggable frame transports.
//!
//! [`Transport`] is the abstraction extracted from the simulator's
//! delivery path: a node endpoint that sends encoded frames to peers by
//! [`NodeId`] and drains frames that have arrived for it. Two
//! implementations:
//!
//! * [`MemHub`] / [`MemTransport`] — in-process queues, the transport
//!   analogue of the simulator's delivery path. Frames really are encoded
//!   and re-decoded; only the medium is a `VecDeque` instead of a socket.
//! * [`TcpHub`] / [`TcpTransport`] — a real **threaded loopback TCP**
//!   transport: every endpoint owns a listener on `127.0.0.1`, an acceptor
//!   thread, and one reader thread per inbound connection; outbound
//!   connections are cached per peer. The same protocol state machines
//!   that run on the simulator run unchanged over these sockets (see the
//!   `tcp_ring` example).
//!
//! (The third "transport" is the simulator itself, which moves typed
//! messages directly but — with a wire meter installed — charges latency
//! from the same encoded frame sizes; see `simnet::Sim::set_wire_meter`.)

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};

use simnet::NodeId;

use crate::frame::MAX_FRAME_LEN;

/// A transport-level failure (distinct from [`WireError`]: the bytes never
/// moved, rather than moved and failed to parse).
///
/// [`WireError`]: crate::WireError
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The destination `NodeId` is not registered with this hub.
    UnknownPeer(NodeId),
    /// An OS-level I/O failure (message carries the rendered error).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownPeer(n) => write!(f, "unknown peer {n}"),
            TransportError::Io(e) => write!(f, "transport io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// One node's endpoint of a frame transport.
pub trait Transport {
    /// Queue `frame` (a complete encoded frame, header included) for
    /// delivery to `to`.
    fn send(&mut self, to: NodeId, frame: &[u8]) -> Result<(), TransportError>;

    /// Drain the next complete inbound frame, if one has arrived.
    fn try_recv(&mut self) -> Option<Vec<u8>>;
}

// ---- in-process -----------------------------------------------------------

type MemRegistry = Arc<Mutex<HashMap<NodeId, Sender<Vec<u8>>>>>;

/// Hub for the in-process transport; clone-able handle shared by all
/// endpoints (and by external "client" injectors).
#[derive(Clone, Default)]
pub struct MemHub {
    registry: MemRegistry,
}

impl MemHub {
    /// Fresh hub with no endpoints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create (and register) the endpoint for `me`.
    pub fn endpoint(&self, me: NodeId) -> MemTransport {
        let (tx, rx) = channel();
        self.registry.lock().expect("mem registry").insert(me, tx);
        MemTransport {
            registry: self.registry.clone(),
            rx,
        }
    }

    /// Send a frame into the hub without owning an endpoint (external
    /// client injection, mirroring `Sim::send_external`).
    pub fn send(&self, to: NodeId, frame: &[u8]) -> Result<(), TransportError> {
        let reg = self.registry.lock().expect("mem registry");
        let tx = reg.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        tx.send(frame.to_vec())
            .map_err(|e| TransportError::Io(e.to_string()))
    }
}

/// In-process endpoint: frames move through queues, not sockets.
pub struct MemTransport {
    registry: MemRegistry,
    rx: Receiver<Vec<u8>>,
}

impl Transport for MemTransport {
    fn send(&mut self, to: NodeId, frame: &[u8]) -> Result<(), TransportError> {
        let reg = self.registry.lock().expect("mem registry");
        let tx = reg.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        tx.send(frame.to_vec())
            .map_err(|e| TransportError::Io(e.to_string()))
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        match self.rx.try_recv() {
            Ok(f) => Some(f),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }
}

// ---- loopback TCP ---------------------------------------------------------

type TcpRegistry = Arc<Mutex<HashMap<NodeId, SocketAddr>>>;

/// Hub for the loopback-TCP transport: the `NodeId -> SocketAddr` name
/// service all endpoints share (the real-deployment analogue would be a
/// static peer table or a discovery service).
#[derive(Clone, Default)]
pub struct TcpHub {
    registry: TcpRegistry,
}

impl TcpHub {
    /// Fresh hub with no endpoints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a listener for `me` on `127.0.0.1:0`, register its address,
    /// and spawn the acceptor thread.
    pub fn endpoint(&self, me: NodeId) -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        self.registry.lock().expect("tcp registry").insert(me, addr);
        let (tx, rx) = channel::<Vec<u8>>();
        std::thread::Builder::new()
            .name(format!("wire-accept-{me}"))
            .spawn(move || acceptor_loop(listener, tx))?;
        Ok(TcpTransport {
            registry: self.registry.clone(),
            rx,
            streams: HashMap::new(),
        })
    }

    /// One-shot client send (external injection): opens a connection,
    /// writes the frame, closes.
    pub fn send(&self, to: NodeId, frame: &[u8]) -> Result<(), TransportError> {
        let addr = {
            let reg = self.registry.lock().expect("tcp registry");
            *reg.get(&to).ok_or(TransportError::UnknownPeer(to))?
        };
        let mut stream = TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        stream
            .write_all(frame)
            .map_err(|e| TransportError::Io(e.to_string()))
    }
}

/// Accept inbound connections forever, spawning one reader per stream.
/// The thread ends when the process does (or the listener errors); reader
/// threads end at peer EOF.
fn acceptor_loop(listener: TcpListener, tx: Sender<Vec<u8>>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { return };
        let tx = tx.clone();
        let _ = std::thread::Builder::new()
            .name("wire-read".into())
            .spawn(move || reader_loop(stream, tx));
    }
}

/// Read length-prefixed frames off one stream until EOF/error, pushing
/// each complete frame (header included) to the endpoint's queue.
fn reader_loop(mut stream: TcpStream, tx: Sender<Vec<u8>>) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return; // EOF or reset: connection done.
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return; // Poisoned stream: drop the connection.
        }
        let mut frame = vec![0u8; 4 + len];
        frame[..4].copy_from_slice(&len_buf);
        if stream.read_exact(&mut frame[4..]).is_err() {
            return;
        }
        if tx.send(frame).is_err() {
            return; // Endpoint dropped.
        }
    }
}

/// Loopback-TCP endpoint. Outbound streams are cached per peer; a send
/// failure drops the cached stream and retries once over a fresh
/// connection.
pub struct TcpTransport {
    registry: TcpRegistry,
    rx: Receiver<Vec<u8>>,
    streams: HashMap<NodeId, TcpStream>,
}

impl TcpTransport {
    fn connect(&self, to: NodeId) -> Result<TcpStream, TransportError> {
        let addr = {
            let reg = self.registry.lock().expect("tcp registry");
            *reg.get(&to).ok_or(TransportError::UnknownPeer(to))?
        };
        let stream = TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(stream)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, to: NodeId, frame: &[u8]) -> Result<(), TransportError> {
        if !self.streams.contains_key(&to) {
            let s = self.connect(to)?;
            self.streams.insert(to, s);
        }
        let stream = self.streams.get_mut(&to).expect("just inserted");
        if stream.write_all(frame).is_ok() {
            return Ok(());
        }
        // Stale connection (peer restarted / kernel reset): reconnect once.
        self.streams.remove(&to);
        let mut fresh = self.connect(to)?;
        let r = fresh
            .write_all(frame)
            .map_err(|e| TransportError::Io(e.to_string()));
        self.streams.insert(to, fresh);
        r
    }

    fn try_recv(&mut self) -> Option<Vec<u8>> {
        match self.rx.try_recv() {
            Ok(f) => Some(f),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame};

    fn wait_frame<T: Transport>(t: &mut T, ms: u64) -> Option<Vec<u8>> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(ms);
        loop {
            if let Some(f) = t.try_recv() {
                return Some(f);
            }
            if std::time::Instant::now() > deadline {
                return None;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    #[test]
    fn mem_transport_delivers_frames() {
        let hub = MemHub::new();
        let mut a = hub.endpoint(NodeId(0));
        let mut b = hub.endpoint(NodeId(1));
        a.send(NodeId(1), &encode_frame(NodeId(0), &7u64)).unwrap();
        let frame = b.try_recv().unwrap();
        let (from, v): (NodeId, u64) = decode_frame(&frame).unwrap();
        assert_eq!((from, v), (NodeId(0), 7));
        assert!(a.try_recv().is_none());
        assert_eq!(
            a.send(NodeId(9), b"x"),
            Err(TransportError::UnknownPeer(NodeId(9)))
        );
    }

    #[test]
    fn tcp_transport_delivers_frames_over_loopback() {
        let hub = TcpHub::new();
        let mut a = hub.endpoint(NodeId(0)).unwrap();
        let mut b = hub.endpoint(NodeId(1)).unwrap();
        // a -> b, then b -> a over the reverse path.
        a.send(NodeId(1), &encode_frame(NodeId(0), &41u64)).unwrap();
        let (from, v): (NodeId, u64) = decode_frame(&wait_frame(&mut b, 2000).unwrap()).unwrap();
        assert_eq!((from, v), (NodeId(0), 41));
        b.send(NodeId(0), &encode_frame(NodeId(1), &42u64)).unwrap();
        let (from, v): (NodeId, u64) = decode_frame(&wait_frame(&mut a, 2000).unwrap()).unwrap();
        assert_eq!((from, v), (NodeId(1), 42));
        // Client-style injection.
        hub.send(NodeId(1), &encode_frame(NodeId(1), &9u64))
            .unwrap();
        let (_, v): (NodeId, u64) = decode_frame(&wait_frame(&mut b, 2000).unwrap()).unwrap();
        assert_eq!(v, 9);
    }

    #[test]
    fn tcp_many_frames_keep_order_per_connection() {
        let hub = TcpHub::new();
        let mut a = hub.endpoint(NodeId(0)).unwrap();
        let mut b = hub.endpoint(NodeId(1)).unwrap();
        for i in 0..200u64 {
            a.send(NodeId(1), &encode_frame(NodeId(0), &i)).unwrap();
        }
        for i in 0..200u64 {
            let (_, v): (NodeId, u64) =
                decode_frame(&wait_frame(&mut b, 2000).expect("frame arrives")).unwrap();
            assert_eq!(v, i);
        }
    }
}
