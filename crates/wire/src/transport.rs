//! Pluggable frame transports.
//!
//! [`Transport`] is the abstraction extracted from the simulator's
//! delivery path: a node endpoint that sends encoded frames to peers by
//! [`NodeId`] and drains frames that have arrived for it. The API is
//! **batch- and readiness-oriented**: frames move as [`Bytes`] batches
//! (no per-frame `Vec` allocation on the receive path), a full outbound
//! queue surfaces as an explicit [`TransportError::Backpressure`] /
//! partial-acceptance result instead of blocking, and [`Transport::poll`]
//! is the single hook a runner pumps to drive I/O and wait for work —
//! no spin-polling. Implementations:
//!
//! * [`MemHub`] / [`MemTransport`] — in-process **bounded** queues, the
//!   transport analogue of the simulator's delivery path. Frames really
//!   are encoded and re-decoded; only the medium is a channel instead of
//!   a socket, and a full peer queue reports backpressure exactly like a
//!   full socket buffer.
//! * [`TcpHub`] / [`TcpTransport`] — the **threaded loopback TCP**
//!   baseline: every endpoint owns a listener on `127.0.0.1`, an
//!   acceptor thread, and one reader thread per inbound connection;
//!   outbound connections are cached per peer, evicted on error, and
//!   re-dialled under a capped exponential backoff. One blocking write
//!   syscall per frame — kept as the reference point the event-loop
//!   runtime ([`RtHub`](crate::RtHub)) is measured against (`exp_net`).
//! * [`RtHub`](crate::RtHub) / [`RtTransport`](crate::RtTransport) — the
//!   non-blocking, zero-extra-thread event-loop runtime
//!   ([`runtime`](crate::runtime)): connection multiplexing, write
//!   batching, bounded rings. The serving path.
//!
//! (The fourth "transport" is the simulator itself, which moves typed
//! messages directly but — with a wire meter installed — charges latency
//! from the same encoded frame sizes; see `simnet::Sim::set_wire_meter`.)
//!
//! detlint::allow-file(DET-CLOCK, transports are the real-time I/O layer — wall-clock reconnect backoff and poll timeouts never feed back into simulator logic)

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use simnet::NodeId;

use crate::frame::MAX_FRAME_LEN;
use crate::runtime::RuntimeConfig;

/// A transport-level failure (distinct from [`WireError`]: the bytes never
/// moved, rather than moved and failed to parse). The taxonomy is
/// retryability-aware — see [`TransportError::retryable`].
///
/// [`WireError`]: crate::WireError
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The destination `NodeId` is not registered with this hub.
    /// Not retryable until the peer registers.
    UnknownPeer(NodeId),
    /// The outbound queue (or socket buffer) is full and **zero** frames
    /// of the batch were accepted — the batch equivalent of
    /// `WouldBlock`. Retry after the next [`Transport::poll`].
    Backpressure,
    /// The connection to the peer is down (refused, reset, or inside the
    /// reconnect-backoff window). Retryable: the transport re-dials with
    /// capped backoff.
    Disconnected(NodeId),
    /// Any other OS-level I/O failure (message carries the rendered
    /// error).
    Io(String),
}

impl TransportError {
    /// True when retrying the same send later may succeed without any
    /// operator action (backpressure drains, connections re-establish).
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            TransportError::Backpressure | TransportError::Disconnected(_)
        )
    }

    /// Stable lowercase class name, used as a metrics key suffix
    /// (`wire.send_err.<class>`).
    pub fn class(&self) -> &'static str {
        match self {
            TransportError::UnknownPeer(_) => "unknown_peer",
            TransportError::Backpressure => "backpressure",
            TransportError::Disconnected(_) => "disconnected",
            TransportError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownPeer(n) => write!(f, "unknown peer {n}"),
            TransportError::Backpressure => write!(f, "outbound queue full (backpressure)"),
            TransportError::Disconnected(n) => write!(f, "peer {n} disconnected"),
            TransportError::Io(e) => write!(f, "transport io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// What [`Transport::poll`] observed: whether inbound frames are queued
/// and whether blocked outbound work is worth retrying.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Readiness {
    /// At least one complete inbound frame is queued for
    /// [`Transport::recv_batch`].
    pub readable: bool,
    /// Outbound capacity exists (or was freed): a send that previously
    /// reported [`TransportError::Backpressure`] is worth retrying.
    pub writable: bool,
}

/// One node's endpoint of a frame transport.
///
/// Contract:
/// * **Per-destination frame order is preserved** for accepted frames.
/// * [`send_batch`](Transport::send_batch) never blocks: it accepts a
///   prefix of the batch and reports how many frames it took, or a
///   [`TransportError`] when it took none.
/// * [`poll`](Transport::poll) is the only call that may wait, and it is
///   also what drives I/O forward on single-threaded transports — a
///   runner must pump it even with `timeout == 0`.
pub trait Transport {
    /// Queue encoded frames (header included) for delivery to `to`.
    ///
    /// Returns the number of frames accepted — always a prefix of
    /// `frames`, and at least 1 on `Ok`. `Ok(n)` with `n < frames.len()`
    /// means the outbound queue filled mid-batch: retry `frames[n..]`
    /// after the next [`poll`](Transport::poll) reports writable.
    /// `Err(Backpressure)` is the zero-accepted case of the same
    /// condition.
    fn send_batch(&mut self, to: NodeId, frames: &[Bytes]) -> Result<usize, TransportError>;

    /// Drain up to `max` complete inbound frames, appending each to
    /// `out` (which is reused by the caller across pumps — no per-frame
    /// allocation). Returns how many frames were appended.
    fn recv_batch(&mut self, out: &mut Vec<Bytes>, max: usize) -> usize;

    /// Drive the transport's I/O (accept, read, flush) and wait up to
    /// `timeout` for readiness. `Duration::ZERO` performs one
    /// non-blocking rotation and returns immediately.
    fn poll(&mut self, timeout: Duration) -> Readiness;
}

// ---- in-process -----------------------------------------------------------

type MemRegistry = Arc<Mutex<HashMap<NodeId, SyncSender<Bytes>>>>;

/// Hub for the in-process transport; clone-able handle shared by all
/// endpoints (and by external "client" injectors). Inbound queues are
/// bounded at [`RuntimeConfig::inbound_depth`] frames: a slow consumer
/// backpressures its senders exactly like a full socket buffer.
#[derive(Clone, Default)]
pub struct MemHub {
    registry: MemRegistry,
    cfg: RuntimeConfig,
}

impl MemHub {
    /// Fresh hub with no endpoints and default queue depths.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh hub with explicit queue depths.
    pub fn with_config(cfg: RuntimeConfig) -> Self {
        MemHub {
            registry: MemRegistry::default(),
            cfg,
        }
    }

    /// Create (and register) the endpoint for `me`.
    pub fn endpoint(&self, me: NodeId) -> MemTransport {
        let (tx, rx) = sync_channel(self.cfg.inbound_depth);
        self.registry.lock().expect("mem registry").insert(me, tx);
        MemTransport {
            registry: self.registry.clone(),
            rx,
            stash: Vec::new(),
        }
    }

    /// Send a frame into the hub without owning an endpoint (external
    /// client injection, mirroring `Sim::send_external`). Blocks briefly
    /// if the destination queue is full — the client path has no event
    /// loop to retry from.
    pub fn send(&self, to: NodeId, frame: &[u8]) -> Result<(), TransportError> {
        let tx = {
            let reg = self.registry.lock().expect("mem registry");
            reg.get(&to).ok_or(TransportError::UnknownPeer(to))?.clone()
        };
        tx.send(Bytes::copy_from_slice(frame))
            .map_err(|_| TransportError::Disconnected(to))
    }
}

/// In-process endpoint: frames move through bounded queues, not sockets.
pub struct MemTransport {
    registry: MemRegistry,
    rx: Receiver<Bytes>,
    /// Frames pulled by a blocking [`Transport::poll`] ahead of the next
    /// [`Transport::recv_batch`].
    stash: Vec<Bytes>,
}

impl Transport for MemTransport {
    fn send_batch(&mut self, to: NodeId, frames: &[Bytes]) -> Result<usize, TransportError> {
        let tx = {
            let reg = self.registry.lock().expect("mem registry");
            reg.get(&to).ok_or(TransportError::UnknownPeer(to))?.clone()
        };
        for (i, frame) in frames.iter().enumerate() {
            match tx.try_send(frame.clone()) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    return if i == 0 {
                        Err(TransportError::Backpressure)
                    } else {
                        Ok(i)
                    };
                }
                Err(TrySendError::Disconnected(_)) => {
                    return if i == 0 {
                        Err(TransportError::Disconnected(to))
                    } else {
                        Ok(i)
                    };
                }
            }
        }
        Ok(frames.len())
    }

    fn recv_batch(&mut self, out: &mut Vec<Bytes>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            if let Some(f) = self.stash.pop() {
                out.push(f);
                n += 1;
                continue;
            }
            match self.rx.try_recv() {
                Ok(f) => {
                    out.push(f);
                    n += 1;
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        n
    }

    fn poll(&mut self, timeout: Duration) -> Readiness {
        if self.stash.is_empty() {
            let got = if timeout.is_zero() {
                self.rx.try_recv().ok()
            } else {
                self.rx.recv_timeout(timeout).ok()
            };
            if let Some(f) = got {
                self.stash.push(f);
            }
        }
        Readiness {
            readable: !self.stash.is_empty(),
            // Queues are per-destination; a blocked destination may have
            // drained at any time, so blocked sends are always worth a
            // retry.
            writable: true,
        }
    }
}

// ---- loopback TCP (threaded baseline) -------------------------------------

type TcpRegistry = Arc<Mutex<HashMap<NodeId, SocketAddr>>>;

/// Hub for the loopback-TCP transport: the `NodeId -> SocketAddr` name
/// service all endpoints share (the real-deployment analogue would be a
/// static peer table or a discovery service).
#[derive(Clone, Default)]
pub struct TcpHub {
    registry: TcpRegistry,
    cfg: RuntimeConfig,
}

impl TcpHub {
    /// Fresh hub with no endpoints and default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh hub with explicit reconnect-backoff settings.
    pub fn with_config(cfg: RuntimeConfig) -> Self {
        TcpHub {
            registry: TcpRegistry::default(),
            cfg,
        }
    }

    /// Bind a listener for `me` on `127.0.0.1:0`, register its address,
    /// and spawn the acceptor thread.
    pub fn endpoint(&self, me: NodeId) -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        self.registry.lock().expect("tcp registry").insert(me, addr);
        let (tx, rx) = sync_channel::<Vec<u8>>(self.cfg.inbound_depth);
        std::thread::Builder::new()
            .name(format!("wire-accept-{me}"))
            .spawn(move || acceptor_loop(listener, tx))?;
        Ok(TcpTransport {
            registry: self.registry.clone(),
            cfg: self.cfg.clone(),
            rx,
            stash: Vec::new(),
            links: HashMap::new(),
        })
    }

    /// One-shot client send (external injection): opens a connection,
    /// writes the frame, closes.
    pub fn send(&self, to: NodeId, frame: &[u8]) -> Result<(), TransportError> {
        let addr = {
            let reg = self.registry.lock().expect("tcp registry");
            *reg.get(&to).ok_or(TransportError::UnknownPeer(to))?
        };
        let mut stream = TcpStream::connect(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        stream
            .write_all(frame)
            .map_err(|e| TransportError::Io(e.to_string()))
    }
}

/// Accept inbound connections forever, spawning one reader per stream.
/// The thread ends when the process does (or the listener errors); reader
/// threads end at peer EOF.
fn acceptor_loop(listener: TcpListener, tx: SyncSender<Vec<u8>>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { return };
        let tx = tx.clone();
        let _ = std::thread::Builder::new()
            .name("wire-read".into())
            .spawn(move || reader_loop(stream, tx));
    }
}

/// Read length-prefixed frames off one stream until EOF/error, pushing
/// each complete frame (header included) to the endpoint's queue.
fn reader_loop(mut stream: TcpStream, tx: SyncSender<Vec<u8>>) {
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).is_err() {
            return; // EOF or reset: connection done.
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return; // Poisoned stream: drop the connection.
        }
        let mut frame = vec![0u8; 4 + len];
        frame[..4].copy_from_slice(&len_buf);
        if stream.read_exact(&mut frame[4..]).is_err() {
            return;
        }
        // A full endpoint queue blocks the reader thread — kernel socket
        // buffers then backpressure the sender, as on a real deployment.
        if tx.send(frame).is_err() {
            return; // Endpoint dropped.
        }
    }
}

/// Reconnect throttle for one peer: after a failure the link may not be
/// re-dialled until `retry_at`, with the delay doubling per consecutive
/// failure up to the configured cap. Shared with the event-loop runtime.
#[derive(Debug, Default)]
pub(crate) struct Backoff {
    fails: u32,
    retry_at: Option<Instant>,
}

impl Backoff {
    pub(crate) fn blocked(&self, now: Instant) -> bool {
        self.retry_at.is_some_and(|at| now < at)
    }

    pub(crate) fn record_failure(&mut self, now: Instant, cfg: &RuntimeConfig) {
        let delay = cfg
            .reconnect_backoff_base
            .saturating_mul(1u32 << self.fails.min(16))
            .min(cfg.reconnect_backoff_max);
        self.fails = self.fails.saturating_add(1);
        self.retry_at = Some(now + delay);
    }

    pub(crate) fn reset(&mut self) {
        self.fails = 0;
        self.retry_at = None;
    }
}

/// One cached outbound link of the threaded TCP transport.
#[derive(Debug, Default)]
struct TcpLink {
    stream: Option<TcpStream>,
    backoff: Backoff,
}

/// Loopback-TCP endpoint (threaded baseline). Outbound streams are
/// cached per peer; a send failure **evicts** the cached stream and
/// re-dials once immediately — if that also fails the peer enters a
/// capped exponential backoff window during which sends fail fast with
/// [`TransportError::Disconnected`] instead of paying a connect timeout
/// per frame.
pub struct TcpTransport {
    registry: TcpRegistry,
    cfg: RuntimeConfig,
    rx: Receiver<Vec<u8>>,
    stash: Vec<Bytes>,
    links: HashMap<NodeId, TcpLink>,
}

impl TcpTransport {
    fn connect(&self, to: NodeId) -> Result<TcpStream, TransportError> {
        let addr = {
            let reg = self.registry.lock().expect("tcp registry");
            *reg.get(&to).ok_or(TransportError::UnknownPeer(to))?
        };
        let stream = TcpStream::connect(addr).map_err(|_| TransportError::Disconnected(to))?;
        stream
            .set_nodelay(true)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(stream)
    }

    /// Write one frame, handling eviction, reconnect and backoff.
    fn write_frame(&mut self, to: NodeId, frame: &[u8]) -> Result<(), TransportError> {
        let now = Instant::now();
        if self.links.entry(to).or_default().backoff.blocked(now) {
            return Err(TransportError::Disconnected(to));
        }
        if self.links.get(&to).is_none_or(|l| l.stream.is_none()) {
            match self.connect(to) {
                Ok(s) => {
                    let link = self.links.entry(to).or_default();
                    link.stream = Some(s);
                    link.backoff.reset();
                }
                Err(e) => {
                    if e.retryable() {
                        self.links
                            .entry(to)
                            .or_default()
                            .backoff
                            .record_failure(now, &self.cfg);
                    }
                    return Err(e);
                }
            }
        }
        let link = self.links.entry(to).or_default();
        let Some(stream) = link.stream.as_mut() else {
            return Err(TransportError::Disconnected(to));
        };
        if stream.write_all(frame).is_ok() {
            link.backoff.reset();
            return Ok(());
        }
        // Stale connection (peer restarted / kernel reset): evict the
        // cached stream and reconnect once.
        link.stream = None;
        match self.connect(to) {
            Ok(mut fresh) => match fresh.write_all(frame) {
                Ok(()) => {
                    let link = self.links.entry(to).or_default();
                    link.stream = Some(fresh);
                    link.backoff.reset();
                    Ok(())
                }
                Err(_) => {
                    self.links
                        .entry(to)
                        .or_default()
                        .backoff
                        .record_failure(now, &self.cfg);
                    Err(TransportError::Disconnected(to))
                }
            },
            Err(e) => {
                if e.retryable() {
                    self.links
                        .entry(to)
                        .or_default()
                        .backoff
                        .record_failure(now, &self.cfg);
                }
                Err(e)
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send_batch(&mut self, to: NodeId, frames: &[Bytes]) -> Result<usize, TransportError> {
        for (i, frame) in frames.iter().enumerate() {
            if let Err(e) = self.write_frame(to, frame) {
                return if i == 0 { Err(e) } else { Ok(i) };
            }
        }
        Ok(frames.len())
    }

    fn recv_batch(&mut self, out: &mut Vec<Bytes>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            if let Some(f) = self.stash.pop() {
                out.push(f);
                n += 1;
                continue;
            }
            match self.rx.try_recv() {
                Ok(f) => {
                    out.push(Bytes::from(f));
                    n += 1;
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        n
    }

    fn poll(&mut self, timeout: Duration) -> Readiness {
        if self.stash.is_empty() {
            let got = if timeout.is_zero() {
                self.rx.try_recv().ok()
            } else {
                self.rx.recv_timeout(timeout).ok()
            };
            if let Some(f) = got {
                self.stash.push(Bytes::from(f));
            }
        }
        let now = Instant::now();
        Readiness {
            readable: !self.stash.is_empty(),
            // Writes block in the kernel; the only "not writable" state
            // is every known link sitting inside a backoff window.
            writable: self.links.is_empty() || self.links.values().any(|l| !l.backoff.blocked(now)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame};

    fn bframe<M: crate::Encode>(from: NodeId, msg: &M) -> Bytes {
        Bytes::from(encode_frame(from, msg))
    }

    fn wait_frame<T: Transport>(t: &mut T, ms: u64) -> Option<Bytes> {
        let deadline = Instant::now() + Duration::from_millis(ms);
        let mut out = Vec::new();
        loop {
            if t.recv_batch(&mut out, 1) == 1 {
                return out.pop();
            }
            if Instant::now() > deadline {
                return None;
            }
            t.poll(Duration::from_micros(200));
        }
    }

    #[test]
    fn mem_transport_delivers_frames() {
        let hub = MemHub::new();
        let mut a = hub.endpoint(NodeId(0));
        let mut b = hub.endpoint(NodeId(1));
        assert_eq!(a.send_batch(NodeId(1), &[bframe(NodeId(0), &7u64)]), Ok(1));
        let frame = wait_frame(&mut b, 100).unwrap();
        let (from, v): (NodeId, u64) = decode_frame(&frame).unwrap();
        assert_eq!((from, v), (NodeId(0), 7));
        let mut none = Vec::new();
        assert_eq!(a.recv_batch(&mut none, 8), 0);
        assert_eq!(
            a.send_batch(NodeId(9), &[Bytes::from_static(b"x")]),
            Err(TransportError::UnknownPeer(NodeId(9)))
        );
    }

    #[test]
    fn mem_transport_bounded_queue_backpressures() {
        let hub = MemHub::with_config(RuntimeConfig::new().inbound_depth(4));
        let mut a = hub.endpoint(NodeId(0));
        let mut b = hub.endpoint(NodeId(1));
        let frames: Vec<Bytes> = (0..8u64).map(|i| bframe(NodeId(0), &i)).collect();
        // Queue holds 4: the batch is partially accepted.
        assert_eq!(a.send_batch(NodeId(1), &frames), Ok(4));
        assert_eq!(
            a.send_batch(NodeId(1), &frames[4..]),
            Err(TransportError::Backpressure)
        );
        // Draining the receiver frees capacity; the retry then succeeds
        // and per-destination order is preserved end to end.
        let mut got = Vec::new();
        assert_eq!(b.recv_batch(&mut got, 16), 4);
        assert_eq!(a.send_batch(NodeId(1), &frames[4..]), Ok(4));
        assert_eq!(b.recv_batch(&mut got, 16), 4);
        for (i, f) in got.iter().enumerate() {
            let (_, v): (NodeId, u64) = decode_frame(f).unwrap();
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn tcp_transport_delivers_frames_over_loopback() {
        let hub = TcpHub::new();
        let mut a = hub.endpoint(NodeId(0)).unwrap();
        let mut b = hub.endpoint(NodeId(1)).unwrap();
        // a -> b, then b -> a over the reverse path.
        assert_eq!(a.send_batch(NodeId(1), &[bframe(NodeId(0), &41u64)]), Ok(1));
        let (from, v): (NodeId, u64) = decode_frame(&wait_frame(&mut b, 2000).unwrap()).unwrap();
        assert_eq!((from, v), (NodeId(0), 41));
        assert_eq!(b.send_batch(NodeId(0), &[bframe(NodeId(1), &42u64)]), Ok(1));
        let (from, v): (NodeId, u64) = decode_frame(&wait_frame(&mut a, 2000).unwrap()).unwrap();
        assert_eq!((from, v), (NodeId(1), 42));
        // Client-style injection.
        hub.send(NodeId(1), &encode_frame(NodeId(1), &9u64))
            .unwrap();
        let (_, v): (NodeId, u64) = decode_frame(&wait_frame(&mut b, 2000).unwrap()).unwrap();
        assert_eq!(v, 9);
    }

    #[test]
    fn tcp_many_frames_keep_order_per_connection() {
        let hub = TcpHub::new();
        let mut a = hub.endpoint(NodeId(0)).unwrap();
        let mut b = hub.endpoint(NodeId(1)).unwrap();
        let frames: Vec<Bytes> = (0..200u64).map(|i| bframe(NodeId(0), &i)).collect();
        let mut sent = 0;
        while sent < frames.len() {
            match a.send_batch(NodeId(1), &frames[sent..]) {
                Ok(n) => sent += n,
                Err(e) => panic!("send failed: {e}"),
            }
        }
        for i in 0..200u64 {
            let (_, v): (NodeId, u64) =
                decode_frame(&wait_frame(&mut b, 2000).expect("frame arrives")).unwrap();
            assert_eq!(v, i);
        }
    }

    #[test]
    fn tcp_dead_peer_fails_fast_under_backoff_and_recovers() {
        let cfg = RuntimeConfig::new()
            .reconnect_backoff_base(Duration::from_millis(30))
            .reconnect_backoff_max(Duration::from_millis(30));
        let hub = TcpHub::with_config(cfg);
        let mut a = hub.endpoint(NodeId(0)).unwrap();
        // Register peer 1 at an address nobody listens on: grab a port,
        // then free it.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        hub.registry.lock().unwrap().insert(NodeId(1), addr);

        let frame = bframe(NodeId(0), &1u64);
        assert_eq!(
            a.send_batch(NodeId(1), &[frame.clone()]),
            Err(TransportError::Disconnected(NodeId(1)))
        );
        // Inside the backoff window the failure is immediate (no
        // connect attempt): time a burst of sends.
        let t0 = Instant::now();
        for _ in 0..50 {
            assert_eq!(
                a.send_batch(NodeId(1), &[frame.clone()]),
                Err(TransportError::Disconnected(NodeId(1)))
            );
        }
        assert!(
            t0.elapsed() < Duration::from_millis(25),
            "backoff makes dead-peer sends fail fast: {:?}",
            t0.elapsed()
        );

        // The peer comes back on the same address; after the backoff
        // window expires the transport reconnects and delivers.
        let revived = TcpListener::bind(addr).expect("rebind freed port");
        let (tx, rx) = sync_channel::<Vec<u8>>(16);
        std::thread::spawn(move || acceptor_loop(revived, tx));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match a.send_batch(NodeId(1), &[frame.clone()]) {
                Ok(1) => break,
                Ok(_) | Err(_) => {
                    assert!(Instant::now() < deadline, "reconnect after backoff");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.as_slice(), frame.as_ref());
    }
}
