//! [`Encode`]/[`Decode`] implementations for every protocol message that
//! crosses a node boundary: the Chord DHT messages, the KTS timestamping
//! messages, and the P2P-Log record.
//!
//! Layout conventions:
//!
//! * enum variants are a one-byte tag followed by their fields in
//!   declaration order;
//! * ring identifiers ([`Id`]) are fixed 8-byte little-endian (uniformly
//!   distributed values — a varint would cost more);
//! * handles, timestamps and counts are canonical varints;
//! * names are length-prefixed UTF-8, payloads length-prefixed bytes.
//!
//! Tags are part of the wire contract: **append new variants, never
//! renumber**. The `frozen_encodings` test pins representative byte
//! strings.

use chord::{ChordMsg, DocName, Id, NodeRef, OpId, PutMode};
use kts::{HandoffEntry, KtsMsg, ReqId, ValidateFailure};
use p2plog::LogRecord;
use simnet::NodeId;

use crate::codec::{Decode, Encode, Reader, WireError};

impl Encode for Id {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for Id {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Id(r.read_u64_le()?))
    }
}

impl Encode for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(u32::decode(r)?))
    }
}

impl Encode for OpId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for OpId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(OpId(u64::decode(r)?))
    }
}

impl Encode for ReqId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

impl Decode for ReqId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ReqId(u64::decode(r)?))
    }
}

impl Encode for NodeRef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.addr.encode(out);
        self.id.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.addr.encoded_len() + self.id.encoded_len()
    }
}

impl Decode for NodeRef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeRef {
            addr: NodeId::decode(r)?,
            id: Id::decode(r)?,
        })
    }
}

impl Encode for DocName {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.as_str().encoded_len()
    }
}

impl Decode for DocName {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DocName::new(r.read_str()?))
    }
}

impl Encode for PutMode {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            PutMode::Overwrite => 0,
            PutMode::FirstWriter => 1,
            PutMode::Ranked => 2,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for PutMode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(PutMode::Overwrite),
            1 => Ok(PutMode::FirstWriter),
            2 => Ok(PutMode::Ranked),
            tag => Err(WireError::BadTag {
                what: "PutMode",
                tag,
            }),
        }
    }
}

impl Encode for ValidateFailure {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ValidateFailure::LogUnreachable => 0,
            ValidateFailure::Overloaded => 1,
            ValidateFailure::AheadOfLog => 2,
        });
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for ValidateFailure {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(ValidateFailure::LogUnreachable),
            1 => Ok(ValidateFailure::Overloaded),
            2 => Ok(ValidateFailure::AheadOfLog),
            tag => Err(WireError::BadTag {
                what: "ValidateFailure",
                tag,
            }),
        }
    }
}

impl Encode for HandoffEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.key_name.encode(out);
        self.last_ts.encode(out);
        self.epoch.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.key.encoded_len()
            + self.key_name.encoded_len()
            + self.last_ts.encoded_len()
            + self.epoch.encoded_len()
    }
}

impl Decode for HandoffEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HandoffEntry {
            key: Id::decode(r)?,
            key_name: DocName::decode(r)?,
            last_ts: u64::decode(r)?,
            epoch: u64::decode(r)?,
        })
    }
}

impl Encode for LogRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.doc.encode(out);
        self.ts.encode(out);
        self.author.encode(out);
        self.patch.encode(out);
        // Optional trailing field: legacy (epoch-0) records keep their
        // exact pre-fencing byte layout.
        if self.epoch > 0 {
            self.epoch.encode(out);
        }
    }
    fn encoded_len(&self) -> usize {
        self.doc.encoded_len()
            + self.ts.encoded_len()
            + self.author.encoded_len()
            + self.patch.encoded_len()
            + if self.epoch > 0 {
                self.epoch.encoded_len()
            } else {
                0
            }
    }
}

impl Decode for LogRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LogRecord {
            doc: String::decode(r)?,
            ts: u64::decode(r)?,
            author: u64::decode(r)?,
            patch: bytes::Bytes::decode(r)?,
            epoch: if r.remaining() == 0 {
                0
            } else {
                u64::decode(r)?
            },
        })
    }
}

// ---- ChordMsg -------------------------------------------------------------

/// Stable class label of a Chord message for wire accounting (one per
/// variant; free function — `ChordMsg` is foreign to this crate).
pub fn chord_class(msg: &ChordMsg) -> &'static str {
    match msg {
        ChordMsg::FindSuccessor { .. } => "chord.find_successor",
        ChordMsg::FoundSuccessor { .. } => "chord.found_successor",
        ChordMsg::GetPredecessor { .. } => "chord.get_predecessor",
        ChordMsg::PredecessorIs { .. } => "chord.predecessor_is",
        ChordMsg::Notify { .. } => "chord.notify",
        ChordMsg::Ping { .. } => "chord.ping",
        ChordMsg::Pong { .. } => "chord.pong",
        ChordMsg::Put { .. } => "chord.put",
        ChordMsg::PutAck { .. } => "chord.put_ack",
        ChordMsg::Get { .. } => "chord.get",
        ChordMsg::GetReply { .. } => "chord.get_reply",
        ChordMsg::Replicate { .. } => "chord.replicate",
        ChordMsg::TransferKeys { .. } => "chord.transfer_keys",
        ChordMsg::LeaveToSucc { .. } => "chord.leave_to_succ",
        ChordMsg::LeaveToPred { .. } => "chord.leave_to_pred",
        ChordMsg::SyncRoot { .. } => "chord.sync.root",
        ChordMsg::SyncDiff { .. } => "chord.sync.diff",
        ChordMsg::SyncNodes { .. } => "chord.sync.nodes",
        ChordMsg::SyncAck { .. } => "chord.sync.ack",
        ChordMsg::Fence { .. } => "chord.fence",
        ChordMsg::FenceAck { .. } => "chord.fence_ack",
    }
}

impl Encode for ChordMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChordMsg::FindSuccessor {
                op,
                target,
                origin,
                hops,
            } => {
                out.push(0);
                op.encode(out);
                target.encode(out);
                origin.encode(out);
                hops.encode(out);
            }
            ChordMsg::FoundSuccessor { op, owner, hops } => {
                out.push(1);
                op.encode(out);
                owner.encode(out);
                hops.encode(out);
            }
            ChordMsg::GetPredecessor { op } => {
                out.push(2);
                op.encode(out);
            }
            ChordMsg::PredecessorIs {
                op,
                pred,
                succ_list,
            } => {
                out.push(3);
                op.encode(out);
                pred.encode(out);
                succ_list.encode(out);
            }
            ChordMsg::Notify { candidate } => {
                out.push(4);
                candidate.encode(out);
            }
            ChordMsg::Ping { op } => {
                out.push(5);
                op.encode(out);
            }
            ChordMsg::Pong { op } => {
                out.push(6);
                op.encode(out);
            }
            ChordMsg::Put {
                op,
                key,
                value,
                mode,
                origin,
            } => {
                out.push(7);
                op.encode(out);
                key.encode(out);
                value.encode(out);
                mode.encode(out);
                origin.encode(out);
            }
            ChordMsg::PutAck { op, ok, existing } => {
                out.push(8);
                op.encode(out);
                ok.encode(out);
                existing.encode(out);
            }
            ChordMsg::Get { op, key, origin } => {
                out.push(9);
                op.encode(out);
                key.encode(out);
                origin.encode(out);
            }
            ChordMsg::GetReply {
                op,
                value,
                authoritative,
            } => {
                out.push(10);
                op.encode(out);
                value.encode(out);
                authoritative.encode(out);
            }
            ChordMsg::Replicate { items } => {
                out.push(11);
                items.encode(out);
            }
            ChordMsg::TransferKeys { items } => {
                out.push(12);
                items.encode(out);
            }
            ChordMsg::LeaveToSucc {
                pred_of_leaver,
                items,
            } => {
                out.push(13);
                pred_of_leaver.encode(out);
                items.encode(out);
            }
            ChordMsg::LeaveToPred { succ_of_leaver } => {
                out.push(14);
                succ_of_leaver.encode(out);
            }
            ChordMsg::SyncRoot {
                ver,
                from,
                to,
                root,
            } => {
                out.push(15);
                ver.encode(out);
                from.encode(out);
                to.encode(out);
                root.encode(out);
            }
            ChordMsg::SyncDiff { ver, wants, need } => {
                out.push(16);
                ver.encode(out);
                wants.encode(out);
                need.encode(out);
            }
            ChordMsg::SyncNodes { ver, nodes, leaves } => {
                out.push(17);
                ver.encode(out);
                nodes.encode(out);
                leaves.encode(out);
            }
            ChordMsg::SyncAck { ver } => {
                out.push(18);
                ver.encode(out);
            }
            ChordMsg::Fence {
                op,
                key,
                floor,
                origin,
            } => {
                out.push(19);
                op.encode(out);
                key.encode(out);
                floor.encode(out);
                origin.encode(out);
            }
            ChordMsg::FenceAck {
                op,
                ok,
                current,
                occupied,
            } => {
                out.push(20);
                op.encode(out);
                ok.encode(out);
                current.encode(out);
                occupied.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ChordMsg::FindSuccessor {
                op,
                target,
                origin,
                hops,
            } => {
                op.encoded_len() + target.encoded_len() + origin.encoded_len() + hops.encoded_len()
            }
            ChordMsg::FoundSuccessor { op, owner, hops } => {
                op.encoded_len() + owner.encoded_len() + hops.encoded_len()
            }
            ChordMsg::GetPredecessor { op } => op.encoded_len(),
            ChordMsg::PredecessorIs {
                op,
                pred,
                succ_list,
            } => op.encoded_len() + pred.encoded_len() + succ_list.encoded_len(),
            ChordMsg::Notify { candidate } => candidate.encoded_len(),
            ChordMsg::Ping { op } => op.encoded_len(),
            ChordMsg::Pong { op } => op.encoded_len(),
            ChordMsg::Put {
                op,
                key,
                value,
                mode,
                origin,
            } => {
                op.encoded_len()
                    + key.encoded_len()
                    + value.encoded_len()
                    + mode.encoded_len()
                    + origin.encoded_len()
            }
            ChordMsg::PutAck { op, ok, existing } => {
                op.encoded_len() + ok.encoded_len() + existing.encoded_len()
            }
            ChordMsg::Get { op, key, origin } => {
                op.encoded_len() + key.encoded_len() + origin.encoded_len()
            }
            ChordMsg::GetReply {
                op,
                value,
                authoritative,
            } => op.encoded_len() + value.encoded_len() + authoritative.encoded_len(),
            ChordMsg::Replicate { items } => items.encoded_len(),
            ChordMsg::TransferKeys { items } => items.encoded_len(),
            ChordMsg::LeaveToSucc {
                pred_of_leaver,
                items,
            } => pred_of_leaver.encoded_len() + items.encoded_len(),
            ChordMsg::LeaveToPred { succ_of_leaver } => succ_of_leaver.encoded_len(),
            ChordMsg::SyncRoot {
                ver,
                from,
                to,
                root,
            } => ver.encoded_len() + from.encoded_len() + to.encoded_len() + root.encoded_len(),
            ChordMsg::SyncDiff { ver, wants, need } => {
                ver.encoded_len() + wants.encoded_len() + need.encoded_len()
            }
            ChordMsg::SyncNodes { ver, nodes, leaves } => {
                ver.encoded_len() + nodes.encoded_len() + leaves.encoded_len()
            }
            ChordMsg::SyncAck { ver } => ver.encoded_len(),
            ChordMsg::Fence {
                op,
                key,
                floor,
                origin,
            } => op.encoded_len() + key.encoded_len() + floor.encoded_len() + origin.encoded_len(),
            ChordMsg::FenceAck {
                op,
                ok,
                current,
                occupied,
            } => {
                op.encoded_len() + ok.encoded_len() + current.encoded_len() + occupied.encoded_len()
            }
        }
    }
}

impl Decode for ChordMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.read_u8()?;
        Ok(match tag {
            0 => ChordMsg::FindSuccessor {
                op: OpId::decode(r)?,
                target: Id::decode(r)?,
                origin: NodeRef::decode(r)?,
                hops: u32::decode(r)?,
            },
            1 => ChordMsg::FoundSuccessor {
                op: OpId::decode(r)?,
                owner: NodeRef::decode(r)?,
                hops: u32::decode(r)?,
            },
            2 => ChordMsg::GetPredecessor {
                op: OpId::decode(r)?,
            },
            3 => ChordMsg::PredecessorIs {
                op: OpId::decode(r)?,
                pred: Option::<NodeRef>::decode(r)?,
                succ_list: Vec::<NodeRef>::decode(r)?,
            },
            4 => ChordMsg::Notify {
                candidate: NodeRef::decode(r)?,
            },
            5 => ChordMsg::Ping {
                op: OpId::decode(r)?,
            },
            6 => ChordMsg::Pong {
                op: OpId::decode(r)?,
            },
            7 => ChordMsg::Put {
                op: OpId::decode(r)?,
                key: Id::decode(r)?,
                value: bytes::Bytes::decode(r)?,
                mode: PutMode::decode(r)?,
                origin: NodeRef::decode(r)?,
            },
            8 => ChordMsg::PutAck {
                op: OpId::decode(r)?,
                ok: bool::decode(r)?,
                existing: Option::<bytes::Bytes>::decode(r)?,
            },
            9 => ChordMsg::Get {
                op: OpId::decode(r)?,
                key: Id::decode(r)?,
                origin: NodeRef::decode(r)?,
            },
            10 => ChordMsg::GetReply {
                op: OpId::decode(r)?,
                value: Option::<bytes::Bytes>::decode(r)?,
                authoritative: bool::decode(r)?,
            },
            11 => ChordMsg::Replicate {
                items: Vec::<(Id, bytes::Bytes)>::decode(r)?,
            },
            12 => ChordMsg::TransferKeys {
                items: Vec::<(Id, bytes::Bytes)>::decode(r)?,
            },
            13 => ChordMsg::LeaveToSucc {
                pred_of_leaver: Option::<NodeRef>::decode(r)?,
                items: Vec::<(Id, bytes::Bytes)>::decode(r)?,
            },
            14 => ChordMsg::LeaveToPred {
                succ_of_leaver: NodeRef::decode(r)?,
            },
            15 => ChordMsg::SyncRoot {
                ver: u64::decode(r)?,
                from: Id::decode(r)?,
                to: Id::decode(r)?,
                root: <[u8; 20]>::decode(r)?,
            },
            16 => ChordMsg::SyncDiff {
                ver: u64::decode(r)?,
                wants: Vec::<(u8, u32)>::decode(r)?,
                need: Vec::<Id>::decode(r)?,
            },
            17 => ChordMsg::SyncNodes {
                ver: u64::decode(r)?,
                nodes: Vec::<(u8, u32, Vec<(u8, [u8; 20])>)>::decode(r)?,
                leaves: Vec::<(u32, Vec<(Id, [u8; 20])>)>::decode(r)?,
            },
            18 => ChordMsg::SyncAck {
                ver: u64::decode(r)?,
            },
            19 => ChordMsg::Fence {
                op: OpId::decode(r)?,
                key: Id::decode(r)?,
                floor: u64::decode(r)?,
                origin: NodeRef::decode(r)?,
            },
            20 => ChordMsg::FenceAck {
                op: OpId::decode(r)?,
                ok: bool::decode(r)?,
                current: u64::decode(r)?,
                occupied: bool::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "ChordMsg",
                    tag,
                })
            }
        })
    }
}

// ---- KtsMsg ---------------------------------------------------------------

/// Stable class label of a KTS message for wire accounting (one per
/// variant; free function — `KtsMsg` is foreign to this crate).
pub fn kts_class(msg: &KtsMsg) -> &'static str {
    match msg {
        KtsMsg::Validate { .. } => "kts.validate",
        KtsMsg::Granted { .. } => "kts.granted",
        KtsMsg::Retry { .. } => "kts.retry",
        KtsMsg::Redirect { .. } => "kts.redirect",
        KtsMsg::Failed { .. } => "kts.failed",
        KtsMsg::LastTs { .. } => "kts.last_ts",
        KtsMsg::LastTsReply { .. } => "kts.last_ts_reply",
        KtsMsg::ReplicateEntry { .. } => "kts.replicate_entry",
        KtsMsg::TableHandoff { .. } => "kts.table_handoff",
    }
}

impl Encode for KtsMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            KtsMsg::Validate {
                op,
                key,
                key_name,
                proposed_ts,
                patch,
                user,
            } => {
                out.push(0);
                op.encode(out);
                key.encode(out);
                key_name.encode(out);
                proposed_ts.encode(out);
                patch.encode(out);
                user.encode(out);
            }
            KtsMsg::Granted { op, ts, epoch } => {
                out.push(1);
                op.encode(out);
                ts.encode(out);
                // Optional trailing field: legacy (epoch-0) grants keep
                // their exact pre-fencing byte layout.
                if *epoch > 0 {
                    epoch.encode(out);
                }
            }
            KtsMsg::Retry { op, last_ts } => {
                out.push(2);
                op.encode(out);
                last_ts.encode(out);
            }
            KtsMsg::Redirect { op } => {
                out.push(3);
                op.encode(out);
            }
            KtsMsg::Failed { op, reason } => {
                out.push(4);
                op.encode(out);
                reason.encode(out);
            }
            KtsMsg::LastTs {
                op,
                key,
                user,
                known_ts,
            } => {
                out.push(5);
                op.encode(out);
                key.encode(out);
                user.encode(out);
                // Optional trailing field, like Granted.epoch.
                if *known_ts > 0 {
                    known_ts.encode(out);
                }
            }
            KtsMsg::LastTsReply { op, key, last_ts } => {
                out.push(6);
                op.encode(out);
                key.encode(out);
                last_ts.encode(out);
            }
            KtsMsg::ReplicateEntry {
                key,
                key_name,
                last_ts,
                epoch,
            } => {
                out.push(7);
                key.encode(out);
                key_name.encode(out);
                last_ts.encode(out);
                epoch.encode(out);
            }
            KtsMsg::TableHandoff { entries } => {
                out.push(8);
                entries.encode(out);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            KtsMsg::Validate {
                op,
                key,
                key_name,
                proposed_ts,
                patch,
                user,
            } => {
                op.encoded_len()
                    + key.encoded_len()
                    + key_name.encoded_len()
                    + proposed_ts.encoded_len()
                    + patch.encoded_len()
                    + user.encoded_len()
            }
            KtsMsg::Granted { op, ts, epoch } => {
                op.encoded_len()
                    + ts.encoded_len()
                    + if *epoch > 0 { epoch.encoded_len() } else { 0 }
            }
            KtsMsg::Retry { op, last_ts } => op.encoded_len() + last_ts.encoded_len(),
            KtsMsg::Redirect { op } => op.encoded_len(),
            KtsMsg::Failed { op, reason } => op.encoded_len() + reason.encoded_len(),
            KtsMsg::LastTs {
                op,
                key,
                user,
                known_ts,
            } => {
                op.encoded_len()
                    + key.encoded_len()
                    + user.encoded_len()
                    + if *known_ts > 0 {
                        known_ts.encoded_len()
                    } else {
                        0
                    }
            }
            KtsMsg::LastTsReply { op, key, last_ts } => {
                op.encoded_len() + key.encoded_len() + last_ts.encoded_len()
            }
            KtsMsg::ReplicateEntry {
                key,
                key_name,
                last_ts,
                epoch,
            } => {
                key.encoded_len()
                    + key_name.encoded_len()
                    + last_ts.encoded_len()
                    + epoch.encoded_len()
            }
            KtsMsg::TableHandoff { entries } => entries.encoded_len(),
        }
    }
}

impl Decode for KtsMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.read_u8()?;
        Ok(match tag {
            0 => KtsMsg::Validate {
                op: ReqId::decode(r)?,
                key: Id::decode(r)?,
                key_name: DocName::decode(r)?,
                proposed_ts: u64::decode(r)?,
                patch: bytes::Bytes::decode(r)?,
                user: NodeRef::decode(r)?,
            },
            1 => KtsMsg::Granted {
                op: ReqId::decode(r)?,
                ts: u64::decode(r)?,
                epoch: if r.remaining() == 0 {
                    0
                } else {
                    u64::decode(r)?
                },
            },
            2 => KtsMsg::Retry {
                op: ReqId::decode(r)?,
                last_ts: u64::decode(r)?,
            },
            3 => KtsMsg::Redirect {
                op: ReqId::decode(r)?,
            },
            4 => KtsMsg::Failed {
                op: ReqId::decode(r)?,
                reason: ValidateFailure::decode(r)?,
            },
            5 => KtsMsg::LastTs {
                op: ReqId::decode(r)?,
                key: Id::decode(r)?,
                user: NodeRef::decode(r)?,
                known_ts: if r.remaining() == 0 {
                    0
                } else {
                    u64::decode(r)?
                },
            },
            6 => KtsMsg::LastTsReply {
                op: ReqId::decode(r)?,
                key: Id::decode(r)?,
                last_ts: u64::decode(r)?,
            },
            7 => KtsMsg::ReplicateEntry {
                key: Id::decode(r)?,
                key_name: DocName::decode(r)?,
                last_ts: u64::decode(r)?,
                epoch: u64::decode(r)?,
            },
            8 => KtsMsg::TableHandoff {
                entries: Vec::<HandoffEntry>::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "KtsMsg",
                    tag,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn nref(a: u32, id: u64) -> NodeRef {
        NodeRef::new(NodeId(a), Id(id))
    }

    fn rt_chord(m: ChordMsg) {
        let buf = m.to_wire();
        assert_eq!(buf.len(), m.encoded_len(), "encoded_len for {m:?}");
        let back = ChordMsg::from_wire(&buf).unwrap();
        // ChordMsg has no PartialEq; compare Debug renderings.
        assert_eq!(format!("{back:?}"), format!("{m:?}"));
    }

    fn rt_kts(m: KtsMsg) {
        let buf = m.to_wire();
        assert_eq!(buf.len(), m.encoded_len(), "encoded_len for {m:?}");
        let back = KtsMsg::from_wire(&buf).unwrap();
        assert_eq!(format!("{back:?}"), format!("{m:?}"));
    }

    #[test]
    fn every_chord_variant_roundtrips() {
        rt_chord(ChordMsg::FindSuccessor {
            op: OpId(7),
            target: Id(u64::MAX),
            origin: nref(3, 42),
            hops: 9,
        });
        rt_chord(ChordMsg::FoundSuccessor {
            op: OpId(0),
            owner: nref(0, 0),
            hops: 0,
        });
        rt_chord(ChordMsg::GetPredecessor { op: OpId(u64::MAX) });
        rt_chord(ChordMsg::PredecessorIs {
            op: OpId(1),
            pred: None,
            succ_list: vec![nref(1, 10), nref(2, 20)],
        });
        rt_chord(ChordMsg::PredecessorIs {
            op: OpId(1),
            pred: Some(nref(9, 90)),
            succ_list: vec![],
        });
        rt_chord(ChordMsg::Notify {
            candidate: nref(4, 44),
        });
        rt_chord(ChordMsg::Ping { op: OpId(5) });
        rt_chord(ChordMsg::Pong { op: OpId(5) });
        rt_chord(ChordMsg::Put {
            op: OpId(8),
            key: Id(123),
            value: Bytes::from(vec![1, 2, 3]),
            mode: PutMode::FirstWriter,
            origin: nref(1, 2),
        });
        rt_chord(ChordMsg::Put {
            op: OpId(8),
            key: Id(123),
            value: Bytes::from(vec![4]),
            mode: PutMode::Ranked,
            origin: nref(1, 2),
        });
        rt_chord(ChordMsg::PutAck {
            op: OpId(8),
            ok: false,
            existing: Some(Bytes::from(vec![9])),
        });
        rt_chord(ChordMsg::Get {
            op: OpId(2),
            key: Id(55),
            origin: nref(6, 66),
        });
        rt_chord(ChordMsg::GetReply {
            op: OpId(2),
            value: None,
            authoritative: true,
        });
        rt_chord(ChordMsg::Replicate {
            items: vec![(Id(1), Bytes::from(vec![1])), (Id(2), Bytes::new())],
        });
        rt_chord(ChordMsg::TransferKeys { items: vec![] });
        rt_chord(ChordMsg::LeaveToSucc {
            pred_of_leaver: Some(nref(7, 77)),
            items: vec![(Id(3), Bytes::from(vec![0; 64]))],
        });
        rt_chord(ChordMsg::LeaveToPred {
            succ_of_leaver: nref(8, 88),
        });
        rt_chord(ChordMsg::SyncRoot {
            ver: 42,
            from: Id(u64::MAX - 1),
            to: Id(3),
            root: [0xAB; 20],
        });
        rt_chord(ChordMsg::SyncDiff {
            ver: 42,
            wants: vec![(0, 0), (1, 7), (2, 255)],
            need: vec![Id(9), Id(u64::MAX)],
        });
        rt_chord(ChordMsg::SyncDiff {
            ver: 0,
            wants: vec![],
            need: vec![],
        });
        rt_chord(ChordMsg::SyncNodes {
            ver: 1,
            nodes: vec![(0, 0, vec![(3, [1; 20]), (15, [2; 20])]), (1, 3, vec![])],
            leaves: vec![(48, vec![(Id(7), [9; 20])]), (49, vec![])],
        });
        rt_chord(ChordMsg::SyncAck { ver: u64::MAX });
        rt_chord(ChordMsg::Fence {
            op: OpId(9),
            key: Id(321),
            floor: u64::MAX,
            origin: nref(2, 22),
        });
        rt_chord(ChordMsg::FenceAck {
            op: OpId(9),
            ok: false,
            current: 17,
            occupied: true,
        });
    }

    #[test]
    fn every_kts_variant_roundtrips() {
        rt_kts(KtsMsg::Validate {
            op: ReqId(1),
            key: Id(2),
            key_name: DocName::new("wiki/Main"),
            proposed_ts: 3,
            patch: Bytes::from(vec![4, 5]),
            user: nref(6, 7),
        });
        rt_kts(KtsMsg::Granted {
            op: ReqId(1),
            ts: 2,
            epoch: 0,
        });
        rt_kts(KtsMsg::Granted {
            op: ReqId(1),
            ts: 2,
            epoch: u64::MAX,
        });
        rt_kts(KtsMsg::Retry {
            op: ReqId(1),
            last_ts: 9,
        });
        rt_kts(KtsMsg::Redirect { op: ReqId(3) });
        for reason in [
            ValidateFailure::LogUnreachable,
            ValidateFailure::Overloaded,
            ValidateFailure::AheadOfLog,
        ] {
            rt_kts(KtsMsg::Failed {
                op: ReqId(4),
                reason,
            });
        }
        rt_kts(KtsMsg::LastTs {
            op: ReqId(5),
            key: Id(6),
            user: nref(7, 8),
            known_ts: 0,
        });
        rt_kts(KtsMsg::LastTs {
            op: ReqId(5),
            key: Id(6),
            user: nref(7, 8),
            known_ts: 4096,
        });
        rt_kts(KtsMsg::LastTsReply {
            op: ReqId(5),
            key: Id(6),
            last_ts: u64::MAX,
        });
        rt_kts(KtsMsg::ReplicateEntry {
            key: Id(1),
            key_name: DocName::new("página/Ωλ"),
            last_ts: 10,
            epoch: 2,
        });
        rt_kts(KtsMsg::TableHandoff {
            entries: vec![HandoffEntry {
                key: Id(1),
                key_name: DocName::new("d"),
                last_ts: 1,
                epoch: 0,
            }],
        });
    }

    #[test]
    fn log_record_roundtrips() {
        let rec = LogRecord::new("wiki/Main", 42, 7, Bytes::from_static(b"patchbytes"));
        let buf = rec.to_wire();
        assert_eq!(buf.len(), rec.encoded_len());
        assert_eq!(LogRecord::from_wire(&buf).unwrap(), rec);
    }

    /// Representative encodings pinned byte-for-byte: the codec is a wire
    /// contract, and any layout change breaks mixed-version rings.
    #[test]
    fn frozen_encodings() {
        assert_eq!(
            ChordMsg::Ping { op: OpId(5) }.to_wire(),
            vec![5 /*tag*/, 5 /*op*/]
        );
        assert_eq!(
            ChordMsg::FindSuccessor {
                op: OpId(300),
                target: Id(1),
                origin: nref(2, 3),
                hops: 4,
            }
            .to_wire(),
            vec![
                0, // tag
                0xac, 0x02, // op = 300 varint
                1, 0, 0, 0, 0, 0, 0, 0, // target id LE
                2, // origin.addr varint
                3, 0, 0, 0, 0, 0, 0, 0, // origin.id LE
                4, // hops
            ]
        );
        // Legacy grants (epoch 0) must keep the exact pre-fencing layout:
        // the epoch is an optional trailing field.
        assert_eq!(
            KtsMsg::Granted {
                op: ReqId(1),
                ts: 128,
                epoch: 0
            }
            .to_wire(),
            vec![1 /*tag*/, 1 /*op*/, 0x80, 0x01 /*ts=128*/]
        );
        assert_eq!(
            KtsMsg::Granted {
                op: ReqId(1),
                ts: 128,
                epoch: 3
            }
            .to_wire(),
            vec![
                1, /*tag*/
                1, /*op*/
                0x80, 0x01, /*ts=128*/
                3     /*epoch*/
            ]
        );
        // The steady-state anti-entropy round: one root + one ack.
        let mut expect = vec![
            15, // tag
            42, // ver varint
            2, 0, 0, 0, 0, 0, 0, 0, // from LE
            9, 0, 0, 0, 0, 0, 0, 0, // to LE
        ];
        expect.extend_from_slice(&[0xCD; 20]); // root digest, raw
        assert_eq!(
            ChordMsg::SyncRoot {
                ver: 42,
                from: Id(2),
                to: Id(9),
                root: [0xCD; 20],
            }
            .to_wire(),
            expect
        );
        assert_eq!(
            ChordMsg::SyncAck { ver: 42 }.to_wire(),
            vec![18 /*tag*/, 42 /*ver*/]
        );
    }

    #[test]
    fn unknown_tags_are_errors_not_panics() {
        for tag in 21u8..=255 {
            assert!(matches!(
                ChordMsg::from_wire(&[tag]),
                Err(WireError::BadTag { .. })
            ));
        }
        for tag in 9u8..=255 {
            assert!(matches!(
                KtsMsg::from_wire(&[tag]),
                Err(WireError::BadTag { .. })
            ));
        }
    }
}
