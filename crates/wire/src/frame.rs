//! Length-prefixed, versioned frames — the unit a transport moves.
//!
//! Layout (all offsets fixed so a byte stream can be re-framed without
//! decoding the body):
//!
//! ```text
//! +----------------+---------+-------------+------------------+
//! | len: u32 LE    | version | from: u32 LE| body (Encode)    |
//! |  (bytes after  |  (= 1)  |  sender     |  one message     |
//! |   this field)  |         |  NodeId     |                  |
//! +----------------+---------+-------------+------------------+
//! ```
//!
//! The sender address travels in the header because the receiving state
//! machines ([`simnet::Process::on_message`]) are addressed by
//! [`NodeId`], not by TCP peer — one connection may proxy for any sender.
//!
//! Decoding is total: oversized or short length prefixes, unknown
//! versions, and bodies that under- or over-run the declared length all
//! return [`WireError`]s.

use std::collections::VecDeque;

use bytes::Bytes;
use simnet::NodeId;

use crate::codec::{Decode, Encode, Reader, WireError};

/// Current (and only) wire format version.
pub const WIRE_VERSION: u8 = 1;

/// Bytes of header preceding the body: length prefix + version + sender.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 4;

/// Upper bound on `len` (version + sender + body). Frames declaring more
/// are rejected before any allocation — a corrupted length prefix must
/// not balloon memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Encode one message as a complete frame from `from`.
pub fn encode_frame<M: Encode>(from: NodeId, msg: &M) -> Vec<u8> {
    let body_len = msg.encoded_len();
    let len = 1 + 4 + body_len; // version + from + body
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.push(WIRE_VERSION);
    out.extend_from_slice(&from.0.to_le_bytes());
    msg.encode(&mut out);
    debug_assert_eq!(out.len(), 4 + len);
    out
}

/// Wire size of `msg` once framed (header included) — what the simulator
/// charges when metering bytes-on-wire.
pub fn frame_len<M: Encode>(msg: &M) -> usize {
    FRAME_HEADER_LEN + msg.encoded_len()
}

/// Decode one complete frame (as produced by [`encode_frame`]) into
/// `(sender, message)`. The buffer must contain exactly one frame.
pub fn decode_frame<M: Decode>(frame: &[u8]) -> Result<(NodeId, M), WireError> {
    decode_framed(Reader::new(frame), frame.len())
}

/// [`decode_frame`] over a [`Bytes`] buffer: payload fields in the
/// decoded message become **zero-copy slices** of `frame` instead of
/// fresh allocations — the path the batch transports use.
pub fn decode_frame_bytes<M: Decode>(frame: &Bytes) -> Result<(NodeId, M), WireError> {
    decode_framed(Reader::with_backing(frame), frame.len())
}

fn decode_framed<M: Decode>(mut r: Reader<'_>, total: usize) -> Result<(NodeId, M), WireError> {
    let len = r.read_u32_le()? as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    if len != total.saturating_sub(4) {
        return Err(if len > total.saturating_sub(4) {
            WireError::Truncated
        } else {
            WireError::TrailingBytes
        });
    }
    let version = r.read_u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let from = NodeId(r.read_u32_le()?);
    let msg = M::decode(&mut r)?;
    r.finish()?;
    Ok((from, msg))
}

/// Re-frames an arbitrary byte stream: push chunks as they arrive off a
/// socket, pop complete frames. Detects oversized frames as soon as the
/// length prefix is readable, so a poisoned stream fails fast.
///
/// ```
/// use wire::{encode_frame, decode_frame, FrameAssembler};
/// use simnet::NodeId;
///
/// // Two frames, delivered to the reader in awkward chunks.
/// let stream: Vec<u8> = [encode_frame(NodeId(1), &7u64), encode_frame(NodeId(2), &8u64)]
///     .concat();
/// let (a, b) = stream.split_at(5); // mid-header split
///
/// let mut asm = FrameAssembler::new();
/// asm.push(a);
/// assert!(asm.next_frame().unwrap().is_none()); // not enough bytes yet
/// asm.push(b);
/// let first = asm.next_frame().unwrap().expect("one complete frame");
/// assert_eq!(decode_frame::<u64>(&first).unwrap(), (NodeId(1), 7));
/// let second = asm.next_frame().unwrap().expect("and the second");
/// assert_eq!(decode_frame::<u64>(&second).unwrap(), (NodeId(2), 8));
/// assert!(asm.next_frame().unwrap().is_none());
/// ```
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    start: usize,
}

impl FrameAssembler {
    /// Fresh empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the stream.
    pub fn push(&mut self, data: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one frame
        // plus one read.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 64 * 1024) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete frame (header included), `Ok(None)` when more
    /// bytes are needed, or an error for unrecoverable stream corruption
    /// (an oversized length prefix).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        Ok(self.take_frame()?.map(|f| f.to_vec()))
    }

    /// [`FrameAssembler::next_frame`], yielding the frame as a [`Bytes`]
    /// buffer ready for [`decode_frame_bytes`] (one copy out of the
    /// stream buffer; payload decode then borrows it zero-copy).
    pub fn next_frame_bytes(&mut self) -> Result<Option<Bytes>, WireError> {
        Ok(self.take_frame()?.map(Bytes::copy_from_slice))
    }

    /// Locate the next complete frame in the buffer and consume it,
    /// returning the borrowed frame bytes.
    fn take_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let avail = &self.buf[self.start..];
        let Some(len_bytes) = avail.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(*len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge { len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let at = self.start;
        self.start += 4 + len;
        Ok(Some(&self.buf[at..at + 4 + len]))
    }
}

/// [`FrameAssembler`]'s zero-copy sibling for transports that read into
/// owned buffers: push each socket read as an owned [`Bytes`] chunk; a
/// frame lying entirely inside one chunk comes back as a **slice of
/// it** — no copy, no per-frame allocation, the event-loop runtime's
/// receive hot path — and only the rare frame spanning a chunk boundary
/// is stitched together through one copy.
///
/// A returned frame keeps its whole backing chunk alive (the cost of
/// sharing); consumers that retain frames long-term should copy them
/// out.
#[derive(Debug, Default)]
pub struct BytesAssembler {
    /// Unconsumed chunks, in arrival order; the front one may already be
    /// narrowed past frames handed out earlier.
    chunks: VecDeque<Bytes>,
    /// Total unconsumed bytes across `chunks`.
    avail: usize,
}

impl BytesAssembler {
    /// Fresh empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one owned chunk read from the stream.
    pub fn push(&mut self, chunk: Bytes) {
        if !chunk.is_empty() {
            self.avail += chunk.len();
            self.chunks.push_back(chunk);
        }
    }

    /// Pop the next complete frame (header included), `Ok(None)` when
    /// more bytes are needed, or an error for unrecoverable stream
    /// corruption (an oversized length prefix).
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        if self.avail < 4 {
            return Ok(None);
        }
        // The length prefix itself may span chunks: peek it bytewise.
        let mut len_bytes = [0u8; 4];
        let mut filled = 0;
        'peek: for chunk in &self.chunks {
            for &b in chunk.iter() {
                if filled == 4 {
                    break 'peek;
                }
                len_bytes[filled] = b;
                filled += 1;
            }
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::FrameTooLarge { len });
        }
        let total = 4 + len;
        if self.avail < total {
            return Ok(None);
        }
        self.avail -= total;
        if let Some(front) = self.chunks.front_mut() {
            if front.len() > total {
                let frame = front.slice(0..total);
                *front = front.slice(total..);
                return Ok(Some(frame));
            }
            if front.len() == total {
                return Ok(self.chunks.pop_front());
            }
        }
        // The frame spans chunks: stitch it together with one copy.
        let mut out = Vec::with_capacity(total);
        while let Some(chunk) = self.chunks.pop_front() {
            let take = (total - out.len()).min(chunk.len());
            if let Some(part) = chunk.as_ref().get(..take) {
                out.extend_from_slice(part);
            }
            if take < chunk.len() {
                self.chunks.push_front(chunk.slice(take..));
            }
            if out.len() == total {
                break;
            }
        }
        debug_assert_eq!(out.len(), total);
        Ok(Some(Bytes::from(out)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(NodeId(7), &12345u64);
        assert_eq!(frame.len(), frame_len(&12345u64));
        let (from, v): (NodeId, u64) = decode_frame(&frame).unwrap();
        assert_eq!(from, NodeId(7));
        assert_eq!(v, 12345);
    }

    #[test]
    fn truncation_and_trailing_rejected() {
        let frame = encode_frame(NodeId(1), &7u64);
        for cut in 0..frame.len() {
            assert!(decode_frame::<u64>(&frame[..cut]).is_err(), "cut {cut}");
        }
        let mut long = frame.clone();
        long.push(0);
        assert!(decode_frame::<u64>(&long).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut frame = encode_frame(NodeId(1), &7u64);
        frame[4] = 99;
        assert_eq!(decode_frame::<u64>(&frame), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut frame = encode_frame(NodeId(1), &7u64);
        frame[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            decode_frame::<u64>(&frame),
            Err(WireError::FrameTooLarge { .. })
        ));
        let mut asm = FrameAssembler::new();
        asm.push(&frame);
        assert!(matches!(
            asm.next_frame(),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn assembler_reframes_byte_by_byte() {
        let frames: Vec<Vec<u8>> = (0..20u64)
            .map(|i| encode_frame(NodeId(i as u32), &(i * 1000)))
            .collect();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &stream {
            asm.push(&[b]);
            while let Some(f) = asm.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(asm.next_frame().unwrap(), None);
    }

    #[test]
    fn bytes_decode_is_zero_copy_for_payloads() {
        let payload = Bytes::from(vec![7u8; 32]);
        let frame = Bytes::from(encode_frame(NodeId(3), &payload));
        let (from, got): (NodeId, Bytes) = decode_frame_bytes(&frame).unwrap();
        assert_eq!(from, NodeId(3));
        assert_eq!(got, payload);
        // The decoded payload borrows the frame's allocation.
        assert_eq!(
            got.as_ref().as_ptr(),
            frame[frame.len() - payload.len()..].as_ptr()
        );
    }

    #[test]
    fn assembler_bytes_path_matches_vec_path() {
        let frames: Vec<Vec<u8>> = (0..8u64).map(|i| encode_frame(NodeId(1), &i)).collect();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        let mut asm = FrameAssembler::new();
        asm.push(&stream);
        for want in &frames {
            let got = asm.next_frame_bytes().unwrap().expect("complete frame");
            assert_eq!(got.as_ref(), want.as_slice());
        }
        assert_eq!(asm.next_frame_bytes().unwrap(), None);
    }

    #[test]
    fn bytes_assembler_slices_within_chunk_zero_copy() {
        let frames: Vec<Vec<u8>> = (0..3u64).map(|i| encode_frame(NodeId(1), &i)).collect();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        let chunk = Bytes::from(stream);
        let base = chunk.as_ref().as_ptr() as usize;
        let end = base + chunk.len();
        let mut asm = BytesAssembler::new();
        asm.push(chunk);
        for want in &frames {
            let got = asm.next_frame().unwrap().expect("complete frame");
            assert_eq!(got.as_ref(), want.as_slice());
            // Zero-copy: the frame points into the pushed chunk.
            let p = got.as_ref().as_ptr() as usize;
            assert!(p >= base && p + got.len() <= end, "frame borrows the chunk");
        }
        assert_eq!(asm.next_frame().unwrap(), None);
    }

    #[test]
    fn bytes_assembler_matches_vec_assembler_on_any_chunking() {
        let frames: Vec<Vec<u8>> = (0..10u64).map(|i| encode_frame(NodeId(2), &i)).collect();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        for chunk in [1usize, 2, 3, 5, 7, 11, stream.len()] {
            let mut asm = BytesAssembler::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                asm.push(Bytes::from(piece.to_vec()));
                while let Some(f) = asm.next_frame().unwrap() {
                    got.push(f.to_vec());
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
        }
    }

    #[test]
    fn bytes_assembler_rejects_oversized_prefix() {
        let mut frame = encode_frame(NodeId(1), &7u64);
        frame[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut asm = BytesAssembler::new();
        // Split mid-prefix so the peek itself has to span chunks.
        asm.push(Bytes::from(frame[..2].to_vec()));
        assert_eq!(asm.next_frame().unwrap(), None);
        asm.push(Bytes::from(frame[2..].to_vec()));
        assert!(matches!(
            asm.next_frame(),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn assembler_handles_arbitrary_chunking() {
        let frames: Vec<Vec<u8>> = (0..10u64).map(|i| encode_frame(NodeId(2), &i)).collect();
        let stream: Vec<u8> = frames.iter().flatten().copied().collect();
        for chunk in [1usize, 2, 3, 5, 7, 11, stream.len()] {
            let mut asm = FrameAssembler::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                asm.push(piece);
                while let Some(f) = asm.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, frames, "chunk size {chunk}");
        }
    }
}
