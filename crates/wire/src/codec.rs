//! The codec core: [`Encode`] / [`Decode`] traits, the bounds-checked
//! [`Reader`], and [`WireError`].
//!
//! Design rules, enforced across every implementation in this crate:
//!
//! * **Deterministic** — a value has exactly one encoding (canonical
//!   varints, fixed field order), so identical protocol states produce
//!   byte-identical frames on every machine.
//! * **Total decoding** — `decode` returns `Err` on any malformed input:
//!   truncation, unknown tags, non-UTF-8 names, over-long varints,
//!   oversized length prefixes. It never panics and never over-allocates
//!   ahead of the bytes actually present (a corrupt length prefix cannot
//!   balloon memory).
//! * **Zero-copy payloads** — byte payloads decode as [`Bytes`] slices of
//!   the receive buffer when the reader is backed by one
//!   ([`Reader::with_backing`]).

use bytes::Bytes;

use crate::varint::{read_varint, varint_len, write_varint};

/// Decoding failure. Total: every malformed input maps to one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value did.
    Truncated,
    /// A varint was over-long or overflowed 64 bits.
    VarintOverflow,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Which type was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeded the bytes actually available.
    BadLength,
    /// A frame declared a length beyond [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN).
    FrameTooLarge {
        /// The declared length.
        len: usize,
    },
    /// The frame's version byte is not one this decoder speaks.
    BadVersion(u8),
    /// Bytes remained after the value was fully decoded.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::VarintOverflow => write!(f, "varint over-long or overflowing"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            WireError::BadUtf8 => write!(f, "string field not utf-8"),
            WireError::BadLength => write!(f, "length prefix exceeds input"),
            WireError::FrameTooLarge { len } => write!(f, "frame length {len} over limit"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// A value with a canonical wire encoding.
///
/// ```
/// use wire::{Encode, Decode};
/// use bytes::Bytes;
///
/// // Primitives, strings, byte payloads, options, vecs and tuples all
/// // have canonical encodings; protocol messages compose them.
/// let value = (42u64, Bytes::from_static(b"patch"));
/// let buf = value.to_wire();
/// assert_eq!(buf.len(), value.encoded_len()); // exact sizing, always
/// assert_eq!(<(u64, Bytes)>::from_wire(&buf).unwrap(), value);
/// ```
pub trait Encode {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Exact size `encode` will append, computed without encoding.
    /// Implementations mirror their `encode`; the property tests pin
    /// `encoded_len(m) == encode(m).len()` for every message type.
    fn encoded_len(&self) -> usize;

    /// Convenience: encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode(&mut out);
        out
    }
}

/// A value decodable from its canonical wire encoding.
///
/// Decoding is **total**: malformed input returns an error, never a panic
/// and never an allocation ahead of the bytes actually present.
///
/// ```
/// use wire::{Decode, WireError};
///
/// // Truncated input is an error, not a crash …
/// let buf = 300u64.to_wire();
/// assert_eq!(u64::from_wire(&buf[..1]), Err(WireError::Truncated));
/// // … and so are trailing bytes (a value must fill its buffer exactly).
/// let mut long = buf.clone();
/// long.push(0);
/// assert_eq!(u64::from_wire(&long), Err(WireError::TrailingBytes));
/// # use wire::Encode;
/// ```
pub trait Decode: Sized {
    /// Decode one value from the reader's current position.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Decode a value that must occupy the **entire** buffer.
    fn from_wire(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Bounds-checked cursor over a receive buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When the buffer is a view into a [`Bytes`], payload fields slice it
    /// instead of copying (zero-copy with a real `bytes` implementation).
    backing: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Read from a plain byte slice (payload fields copy).
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            backing: None,
        }
    }

    /// Read from a [`Bytes`] buffer; payload fields become slices of it.
    pub fn with_backing(buf: &'a Bytes) -> Self {
        Reader {
            buf,
            pos: 0,
            backing: Some(buf),
        }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a canonical varint `u64`.
    #[inline]
    pub fn read_varint(&mut self) -> Result<u64, WireError> {
        let (v, used) = read_varint(&self.buf[self.pos..])?;
        self.pos += used;
        Ok(v)
    }

    /// Read a varint that must fit the target integer width.
    pub fn read_varint_max(&mut self, max: u64) -> Result<u64, WireError> {
        let v = self.read_varint()?;
        if v > max {
            return Err(WireError::VarintOverflow);
        }
        Ok(v)
    }

    /// Read a varint length prefix, validated against the bytes actually
    /// remaining — the guard that keeps corrupt prefixes from triggering
    /// huge allocations.
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        let v = self.read_varint()?;
        if v > self.remaining() as u64 {
            return Err(WireError::BadLength);
        }
        Ok(v as usize)
    }

    /// Read a fixed 8-byte little-endian `u64` (ring identifiers: their
    /// values are uniform over the full width, so a varint would lose).
    #[inline]
    pub fn read_u64_le(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        match <[u8; 8]>::try_from(s) {
            Ok(a) => Ok(u64::from_le_bytes(a)),
            Err(_) => Err(WireError::Truncated),
        }
    }

    /// Read a fixed 4-byte little-endian `u32` (frame headers).
    #[inline]
    pub fn read_u32_le(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        match <[u8; 4]>::try_from(s) {
            Ok(a) => Ok(u32::from_le_bytes(a)),
            Err(_) => Err(WireError::Truncated),
        }
    }

    /// Read a length-prefixed byte payload as [`Bytes`] (sliced from the
    /// backing buffer when available).
    pub fn read_bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.read_len()?;
        let start = self.pos;
        let raw = self.take(len)?;
        Ok(match self.backing {
            Some(b) => b.slice(start..start + len),
            None => Bytes::copy_from_slice(raw),
        })
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<&'a str, WireError> {
        let len = self.read_len()?;
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map_err(|_| WireError::BadUtf8)
    }
}

// ---- primitive impls ------------------------------------------------------

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_u8()
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Encode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, *self as u64);
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self as u64)
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.read_varint_max(u32::MAX as u64)? as u32)
    }
}

impl Encode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, *self);
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self)
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_varint()
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, *self as u64);
    }
    fn encoded_len(&self) -> usize {
        varint_len(*self as u64)
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.read_varint_max(usize::MAX as u64)? as usize)
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.as_str().encoded_len()
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(r.read_str()?.to_owned())
    }
}

impl Encode for Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        out.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Decode for Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.read_bytes()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "option",
                tag,
            }),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let count = r.read_varint()?;
        // Guard: each element costs at least one byte, so a count beyond
        // the remaining bytes is malformed — reject before allocating.
        if count > r.remaining() as u64 {
            return Err(WireError::BadLength);
        }
        // The count bounds *elements*, not allocation: with multi-word
        // element types a hostile count that passes the byte guard could
        // still pre-allocate tens of times the frame size. Cap the upfront
        // reservation and let growth handle honest large vectors.
        let mut v = Vec::with_capacity((count as usize).min(1024));
        for _ in 0..count {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        N
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let raw = r.take(N)?;
        <[u8; N]>::try_from(raw).map_err(|_| WireError::Truncated)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len()
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let buf = v.to_wire();
        assert_eq!(buf.len(), v.encoded_len());
        assert_eq!(T::from_wire(&buf).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        rt(0u8);
        rt(255u8);
        rt(true);
        rt(false);
        rt(0u32);
        rt(u32::MAX);
        rt(u64::MAX);
        rt(String::new());
        rt("héllo ⇄ wire".to_string());
        rt(Bytes::from(vec![1, 2, 3]));
        rt(Option::<u64>::None);
        rt(Some(42u64));
        rt(vec![1u64, 2, 3]);
        rt(Vec::<u64>::new());
        rt((7u64, Bytes::from(vec![9])));
        rt([0u8; 0]);
        rt([7u8; 20]);
        rt((1u8, 2u32, [3u8; 4]));
    }

    #[test]
    fn truncated_fixed_array_is_an_error() {
        assert_eq!(<[u8; 20]>::from_wire(&[0; 19]), Err(WireError::Truncated));
    }

    #[test]
    fn bad_tags_are_errors() {
        assert_eq!(
            bool::from_wire(&[2]),
            Err(WireError::BadTag {
                what: "bool",
                tag: 2
            })
        );
        assert!(matches!(
            Option::<u8>::from_wire(&[7, 0]),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn oversized_length_prefixes_rejected_before_allocating() {
        // Vec count = u64::MAX with a 2-byte body.
        let mut buf = Vec::new();
        crate::varint::write_varint(&mut buf, u64::MAX);
        buf.extend_from_slice(&[0, 0]);
        assert_eq!(Vec::<u8>::from_wire(&buf), Err(WireError::BadLength));
        // String length beyond the buffer.
        let mut buf = Vec::new();
        crate::varint::write_varint(&mut buf, 100);
        buf.extend_from_slice(b"short");
        assert_eq!(String::from_wire(&buf), Err(WireError::BadLength));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_wire() {
        let mut buf = 5u64.to_wire();
        buf.push(0);
        assert_eq!(u64::from_wire(&buf), Err(WireError::TrailingBytes));
    }

    #[test]
    fn u32_range_enforced() {
        let buf = (u32::MAX as u64 + 1).to_wire();
        assert_eq!(u32::from_wire(&buf), Err(WireError::VarintOverflow));
    }

    #[test]
    fn non_utf8_string_rejected() {
        let buf = vec![2, 0xff, 0xfe];
        assert_eq!(String::from_wire(&buf), Err(WireError::BadUtf8));
    }

    #[test]
    fn backed_reader_slices_payloads() {
        let payload = Bytes::from(vec![9u8; 16]);
        let mut buf = Vec::new();
        payload.encode(&mut buf);
        let backing = Bytes::from(buf);
        let mut r = Reader::with_backing(&backing);
        let back = Bytes::decode(&mut r).unwrap();
        assert_eq!(back, payload);
        r.finish().unwrap();
    }
}
