//! Shared helpers for the experiment binaries (one per paper
//! figure/scenario — see `EXPERIMENTS.md` at the workspace root for the
//! index mapping each `exp_*` binary to its paper figure).

use p2p_ltr::harness::LtrNet;
use p2p_ltr::LtrConfig;
use simnet::{Duration, NetConfig, Summary};

/// Build a network and let the ring stabilize.
pub fn settled_net(seed: u64, net_cfg: NetConfig, peers: usize, cfg: LtrConfig) -> LtrNet {
    settled_net_with(seed, net_cfg, peers, cfg, |_| {})
}

/// [`settled_net`] with a configuration hook that runs *before* the ring
/// settles (e.g. `|net| net.enable_wire_accounting()` so stabilization
/// traffic is metered too).
pub fn settled_net_with(
    seed: u64,
    net_cfg: NetConfig,
    peers: usize,
    cfg: LtrConfig,
    configure: impl FnOnce(&mut LtrNet),
) -> LtrNet {
    let mut net = LtrNet::build(seed, net_cfg, peers, cfg, Duration::from_millis(150));
    configure(&mut net);
    // Stabilization horizon grows slowly with network size.
    let secs = 20 + (peers as u64) / 4;
    net.settle(secs);
    net
}

/// Fixed-width table printer for experiment output (the paper's tables are
/// regenerated as plain text so runs diff cleanly).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$} | ", c, w = widths[i]));
        }
        out
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Format a latency summary as `mean/p95/p99 ms`.
pub fn fmt_latency(s: &Summary) -> String {
    if s.count == 0 {
        "-".to_string()
    } else {
        format!("{:.1}/{:.1}/{:.1}", s.mean, s.p95, s.p99)
    }
}

/// Format a boolean as a check.
pub fn ok(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

/// Keys of the optional top-level sections merged into
/// `BENCH_hotpath.json` by the non-`exp_perf` harnesses, in their
/// canonical file order. `exp_perf` rewrites the whole file (scenarios +
/// totals); each other harness replaces only its own section via
/// [`merge_bench_section`], preserving the rest.
pub const BENCH_SECTIONS: [&str; 3] = ["recovery", "faults", "net"];

/// Replace (or append) the top-level `"<key>": { … }` section of the
/// bench JSON at `path`, preserving the base document and every *other*
/// known section. `body` must be the full section rendering, starting
/// with `  "<key>": {` and ending with `  }\n`. Writes a skeleton when
/// the file does not exist (`exp_perf` normally creates it first).
pub fn merge_bench_section(path: &std::path::Path, key: &str, body: &str) {
    assert!(BENCH_SECTIONS.contains(&key), "unknown bench section {key}");
    assert!(body.starts_with(&format!("  \"{key}\": {{")), "bad body");
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| {
        "{\n  \"schema\": \"p2p-ltr/bench-hotpath/v1\",\n  \"quick\": true,\n  \
         \"scenarios\": [],\n  \"totals\": {}\n}\n"
            .to_string()
    });
    let trimmed = existing.trim_end();
    let close = trimmed.rfind('}').expect("bench json has a closing brace");
    // Split off every known optional section; the head is everything
    // before the first of them (or before the final `}`).
    let mut markers: Vec<(usize, &str)> = BENCH_SECTIONS
        .iter()
        .filter_map(|k| {
            trimmed
                .find(&format!(",\n  \"{k}\": {{"))
                .map(|at| (at, *k))
        })
        .collect();
    markers.sort_unstable();
    let head_end = markers.iter().map(|(at, _)| *at).min().unwrap_or(close);
    let head = trimmed[..head_end].trim_end().trim_end_matches(',');
    let mut sections: Vec<(&str, String)> = Vec::new();
    for (i, &(at, k)) in markers.iter().enumerate() {
        let start = at + 2; // skip ",\n"
        let end = markers.get(i + 1).map(|(next, _)| *next).unwrap_or(close);
        sections.push((k, format!("{}\n", trimmed[start..end].trim_end())));
    }
    sections.retain(|(k, _)| *k != key);
    sections.push((key, body.to_string()));
    // Canonical order keeps the file diff-stable however the harnesses ran.
    sections.sort_by_key(|(k, _)| BENCH_SECTIONS.iter().position(|s| s == k));
    let mut out = String::from(head);
    for (_, text) in &sections {
        out.push_str(",\n");
        out.push_str(text.trim_end());
    }
    out.push_str("\n}\n");
    std::fs::write(path, out).expect("write BENCH json");
}

/// Print the standard invariant footer every experiment ends with.
pub fn print_invariants(net: &LtrNet) {
    let cont = p2p_ltr::check_continuity(&net.sim);
    let order = p2p_ltr::check_total_order(&net.sim);
    let conv = p2p_ltr::check_convergence(&net.sim);
    println!(
        "\ninvariants: continuity={} (docs={}, dups={}, gaps={}), total-order={} ({} integrations), convergence={} ({} docs, {} busy)",
        ok(cont.is_clean()),
        cont.granted.len(),
        cont.duplicates.len(),
        cont.gaps.len(),
        ok(order.is_clean()),
        order.checked,
        ok(conv.is_converged()),
        conv.docs(),
        conv.busy_replicas,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn fmt_latency_empty() {
        assert_eq!(fmt_latency(&Summary::default()), "-");
    }
}
