//! Shared helpers for the experiment binaries (one per paper
//! figure/scenario — see `EXPERIMENTS.md` at the workspace root for the
//! index mapping each `exp_*` binary to its paper figure).

use p2p_ltr::harness::LtrNet;
use p2p_ltr::LtrConfig;
use simnet::{Duration, NetConfig, Summary};

/// Build a network and let the ring stabilize.
pub fn settled_net(seed: u64, net_cfg: NetConfig, peers: usize, cfg: LtrConfig) -> LtrNet {
    settled_net_with(seed, net_cfg, peers, cfg, |_| {})
}

/// [`settled_net`] with a configuration hook that runs *before* the ring
/// settles (e.g. `|net| net.enable_wire_accounting()` so stabilization
/// traffic is metered too).
pub fn settled_net_with(
    seed: u64,
    net_cfg: NetConfig,
    peers: usize,
    cfg: LtrConfig,
    configure: impl FnOnce(&mut LtrNet),
) -> LtrNet {
    let mut net = LtrNet::build(seed, net_cfg, peers, cfg, Duration::from_millis(150));
    configure(&mut net);
    // Stabilization horizon grows slowly with network size.
    let secs = 20 + (peers as u64) / 4;
    net.settle(secs);
    net
}

/// Fixed-width table printer for experiment output (the paper's tables are
/// regenerated as plain text so runs diff cleanly).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$} | ", c, w = widths[i]));
        }
        out
    };
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Format a latency summary as `mean/p95/p99 ms`.
pub fn fmt_latency(s: &Summary) -> String {
    if s.count == 0 {
        "-".to_string()
    } else {
        format!("{:.1}/{:.1}/{:.1}", s.mean, s.p95, s.p99)
    }
}

/// Format a boolean as a check.
pub fn ok(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "NO".into()
    }
}

/// Print the standard invariant footer every experiment ends with.
pub fn print_invariants(net: &LtrNet) {
    let cont = p2p_ltr::check_continuity(&net.sim);
    let order = p2p_ltr::check_total_order(&net.sim);
    let conv = p2p_ltr::check_convergence(&net.sim);
    println!(
        "\ninvariants: continuity={} (docs={}, dups={}, gaps={}), total-order={} ({} integrations), convergence={} ({} docs, {} busy)",
        ok(cont.is_clean()),
        cont.granted.len(),
        cont.duplicates.len(),
        cont.gaps.len(),
        ok(order.is_clean()),
        order.checked,
        ok(conv.is_converged()),
        conv.docs(),
        conv.busy_replicas,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn fmt_latency_empty() {
        assert_eq!(fmt_latency(&Summary::default()), "-");
    }
}
