//! **Experiment F5 — Figure 5 / "Concurrent patch publishing" scenario.**
//!
//! Concurrent patches for one document from different users; shows that
//! "when a peer performs the retrieval procedure in the presence of other
//! updaters, it retrieves continuous timestamp patches" (Figure 5) and that
//! eventual consistency is assured.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_f5`

use ltr_bench::{ok, print_invariants, print_table, settled_net};
use p2p_ltr::{LtrConfig, LtrEventKind};
use simnet::{Duration, NetConfig};
use workload::{drive_editors, EditMix, EditorSpec};

const DOC: &str = "wiki/Main";

fn main() {
    // The late reader syncs rarely, so it retrieves a long run of patches
    // in one retrieval — the Figure 5 view.
    let cfg = LtrConfig {
        sync_every: Some(Duration::from_secs(8)),
        ..LtrConfig::default()
    };
    let mut net = settled_net(0xF5, NetConfig::lan(), 16, cfg);
    let peers = net.peers.clone();
    let editors = &peers[..5];
    let late_reader = peers[10];

    net.open_doc(&peers, DOC, "title");
    net.settle(1);

    let horizon = net.now() + Duration::from_secs(12);
    drive_editors(
        &mut net.sim,
        editors,
        &EditorSpec {
            docs: vec![DOC.into()],
            zipf_skew: 0.0,
            mean_think: Duration::from_millis(600),
            mix: EditMix::default(),
            horizon,
        },
        0xF5F5,
    );
    net.settle(20);
    net.run_until_quiet(&[DOC], 120);
    net.settle(20);

    // Figure 5: the late reader's integration sequence — must be the
    // continuous timestamps 1, 2, 3, … in order.
    let node = net.node(late_reader);
    let mut rows = Vec::new();
    let mut last = 0u64;
    let mut continuous = true;
    for ev in &node.events {
        if let LtrEventKind::Integrated { doc, ts, own, .. } = &ev.kind {
            if doc == DOC {
                continuous &= *ts == last + 1;
                last = *ts;
                rows.push(vec![
                    format!("{}", ev.at),
                    ts.to_string(),
                    if *own { "own".into() } else { "remote".into() },
                ]);
            }
        }
    }
    print_table(
        &format!(
            "F5: patches retrieved by late reader {} (Figure 5)",
            late_reader.addr
        ),
        &["sim time", "timestamp", "origin"],
        &rows,
    );
    println!(
        "\nretrieved {} patches in continuous order: {}",
        rows.len(),
        ok(continuous)
    );

    // Eventual consistency across all 16 replicas.
    let reference = net.node(peers[0]).doc_text(DOC).unwrap();
    let identical = net
        .alive_peers()
        .iter()
        .all(|p| net.node(*p).doc_text(DOC).as_deref() == Some(reference.as_str()));
    println!(
        "eventual consistency over {} replicas: {}",
        net.alive_peers().len(),
        ok(identical)
    );
    println!(
        "grants={} retrievals={} integrated={}",
        net.sim.metrics().counter("kts.grants"),
        net.sim.metrics().counter("ltr.retrievals"),
        net.sim.metrics().counter("ltr.integrated"),
    );
    print_invariants(&net);
}
