//! **Recovery harness — crash-restart cost over the durable store.**
//!
//! Two measurements, both appended to `BENCH_hotpath.json` under the
//! `recovery` key (the CI schema check validates them):
//!
//! 1. **Sweep** — synthetic journals of realistic entries (encoded
//!    `LogRecord` puts + KTS table updates) are written through the file
//!    backend at several sizes × checkpoint intervals; for each we time
//!    the three recovery phases separately: `open_ms` (segment replay +
//!    CRC + Merkle verification), `rebuild_ms` (journal → final tables),
//!    and report replayed entries/sec. This is the figure that answers
//!    "how long is a master-key peer down after a crash, as a function of
//!    its log size and checkpoint cadence?".
//! 2. **End-to-end** — a 10-peer simulated network where every peer
//!    journals to an in-memory store; the document's master crashes after
//!    four grants and restarts from its own journal. The run must pass
//!    the standard invariant footer (continuity / total order /
//!    convergence) — a recovery number from a broken run is worthless.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_rec`
//! Flags: `--quick` (small sweep, CI smoke), `--out PATH` (default
//! `BENCH_hotpath.json`; the `recovery` key is merged into an existing
//! file via [`ltr_bench::merge_bench_section`], or a skeleton is
//! created).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use bytes::Bytes;
use ltr_bench::{ok, print_table};
use p2p_ltr::harness::LtrNet;
use p2p_ltr::LtrConfig;
use simnet::{Duration, NetConfig, Rng64};
use store::{FileStore, RecoveredState, Store, StoreConfig, StoreEntry};

struct SweepPoint {
    entries: u64,
    checkpoint_every: u64,
    bytes: u64,
    segments: u64,
    write_ms: f64,
    open_ms: f64,
    rebuild_ms: f64,
    replay_entries_per_sec: f64,
    verified: bool,
}

struct E2e {
    peers: usize,
    grants_before: u64,
    grants_total: u64,
    restart_entries: u64,
    recover_ms: f64,
    continuity: bool,
    converged: bool,
}

/// A realistic journal: every "grant" contributes one stored log record
/// (`h1..h3` placement means a peer holds ~the record once) plus a KTS
/// table update; a document opens every ~2k entries.
fn synth_entries(n: u64, seed: u64) -> Vec<StoreEntry> {
    let mut rng = Rng64::new(seed);
    let mut out = Vec::with_capacity(n as usize);
    let mut ts = 0u64;
    for i in 0..n {
        let doc = format!("bench/doc-{}", i / 2048);
        if i % 2048 == 0 {
            out.push(StoreEntry::DocOpen {
                doc: chord::DocName::new(&doc),
                initial: "seed text for the benchmark document".into(),
            });
            continue;
        }
        ts += 1;
        if i % 2 == 0 {
            let patch: Vec<u8> = (0..120 + rng.gen_below(80))
                .map(|_| rng.gen_below(256) as u8)
                .collect();
            let rec =
                p2plog::LogRecord::new(doc.as_str(), ts, 1 + rng.gen_below(8), Bytes::from(patch));
            out.push(StoreEntry::PutPrimary {
                key: p2plog::log_locations(3, &chord::DocName::new(&doc), ts)[0],
                value: rec.encode(),
            });
        } else {
            out.push(StoreEntry::KtsAuth {
                entry: kts::HandoffEntry {
                    key: p2plog::ht(&doc),
                    key_name: chord::DocName::new(&doc),
                    last_ts: ts,
                    epoch: 1,
                },
            });
        }
    }
    out
}

fn run_sweep_point(entries: u64, checkpoint_every: u64, seed: u64) -> SweepPoint {
    let dir = std::env::temp_dir().join(format!(
        "p2pltr-exprec-{}-{entries}-{checkpoint_every}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreConfig {
        segment_max_bytes: 256 * 1024,
        checkpoint_every,
    };
    let journal = synth_entries(entries, seed);

    let t = Instant::now();
    let (mut s, _) = FileStore::open(&dir, cfg).expect("create store");
    for e in &journal {
        s.append(e).expect("append");
    }
    s.checkpoint().expect("final checkpoint");
    drop(s);
    let write_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let (s2, replay) = FileStore::open(&dir, cfg).expect("recovery open");
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(replay.stats.entries, entries, "all entries replayed");

    let t = Instant::now();
    let state = RecoveredState::rebuild(&replay.entries);
    let rebuild_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(state.item_count() > 0);

    let point = SweepPoint {
        entries,
        checkpoint_every,
        bytes: replay.stats.bytes,
        segments: replay.stats.segments,
        write_ms,
        open_ms,
        rebuild_ms,
        replay_entries_per_sec: if open_ms > 0.0 {
            entries as f64 / (open_ms / 1e3)
        } else {
            0.0
        },
        verified: replay.stats.verified_entries == Some(entries),
    };
    drop(s2);
    let _ = std::fs::remove_dir_all(&dir);
    point
}

fn run_e2e(seed: u64) -> E2e {
    const DOC: &str = "wiki/Main";
    let peers_n = 10;
    let mut net = LtrNet::build_with_stores(
        seed,
        NetConfig::lan(),
        peers_n,
        LtrConfig::default(),
        Duration::from_millis(150),
        |_| Box::new(store::MemStore::new()),
    );
    net.settle(23);
    let peers = net.peers.clone();
    net.open_doc(&peers, DOC, "base");
    net.settle(1);
    let grants_before = 4u64;
    for i in 0..grants_before {
        let editor = peers[i as usize];
        let cur = net.node(editor).doc_text(DOC).unwrap();
        net.edit(editor, DOC, &format!("{cur}\nedit-{i}"));
        assert!(net.run_until_quiet(&[DOC], 60));
        net.settle(2);
    }
    let master = net.master_of(DOC);
    net.crash(master);
    net.settle(6);
    let t = Instant::now();
    let report = net.restart_from_store(master).expect("journal replays");
    let recover_ms = t.elapsed().as_secs_f64() * 1e3;
    net.settle(20);
    let editor = peers
        .iter()
        .copied()
        .find(|p| p.addr != master.addr)
        .unwrap();
    let cur = net.node(editor).doc_text(DOC).unwrap();
    net.edit(editor, DOC, &format!("{cur}\nafter-restart"));
    net.run_until_quiet(&[DOC], 120);
    net.settle(15);
    net.run_until_quiet(&[DOC], 60);
    let cont = p2p_ltr::check_continuity(&net.sim);
    let conv = p2p_ltr::check_convergence(&net.sim);
    E2e {
        peers: peers_n,
        grants_before,
        grants_total: cont.last_ts(DOC),
        restart_entries: report.entries,
        recover_ms,
        continuity: cont.is_clean() && cont.last_ts(DOC) == grants_before + 1,
        converged: conv.is_converged(),
    }
}

fn render_recovery_json(sweep: &[SweepPoint], e2e: &E2e) -> String {
    let mut out = String::new();
    out.push_str("  \"recovery\": {\n    \"sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"entries\": {}, \"checkpoint_every\": {}, \"bytes\": {}, \
             \"segments\": {}, \"write_ms\": {:.2}, \"open_ms\": {:.2}, \
             \"rebuild_ms\": {:.2}, \"replay_entries_per_sec\": {:.0}, \
             \"verified\": {}}}{}",
            p.entries,
            p.checkpoint_every,
            p.bytes,
            p.segments,
            p.write_ms,
            p.open_ms,
            p.rebuild_ms,
            p.replay_entries_per_sec,
            p.verified,
            comma,
        );
    }
    out.push_str("    ],\n");
    let _ = writeln!(
        out,
        "    \"e2e\": {{\"peers\": {}, \"grants_before_crash\": {}, \
         \"grants_total\": {}, \"restart_entries\": {}, \"recover_ms\": {:.2}, \
         \"continuity\": {}, \"converged\": {}}}",
        e2e.peers,
        e2e.grants_before,
        e2e.grants_total,
        e2e.restart_entries,
        e2e.recover_ms,
        e2e.continuity,
        e2e.converged,
    );
    out.push_str("  }\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = PathBuf::from(
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("BENCH_hotpath.json"),
    );

    let matrix: Vec<(u64, u64)> = if quick {
        vec![(500, 64), (2_000, 64)]
    } else {
        vec![
            (1_000, 16),
            (1_000, 256),
            (4_000, 16),
            (4_000, 256),
            (16_000, 16),
            (16_000, 256),
        ]
    };
    let mut sweep = Vec::with_capacity(matrix.len());
    for (i, (entries, every)) in matrix.iter().enumerate() {
        sweep.push(run_sweep_point(*entries, *every, 0x2EC0 + i as u64));
    }
    print_table(
        "recovery sweep: replay+verify cost vs journal size and checkpoint interval",
        &[
            "entries",
            "ckpt",
            "KiB",
            "segs",
            "write ms",
            "open ms",
            "rebuild ms",
            "entries/s",
            "merkle",
        ],
        &sweep
            .iter()
            .map(|p| {
                vec![
                    p.entries.to_string(),
                    p.checkpoint_every.to_string(),
                    format!("{}", p.bytes / 1024),
                    p.segments.to_string(),
                    format!("{:.2}", p.write_ms),
                    format!("{:.2}", p.open_ms),
                    format!("{:.2}", p.rebuild_ms),
                    format!("{:.0}", p.replay_entries_per_sec),
                    ok(p.verified),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let e2e = run_e2e(0xE2E);
    println!(
        "\ne2e: {} peers, master crashed after {} grants, restarted from {} journal entries \
         in {:.2} ms; sequence continued to ts={}; continuity={} converged={}",
        e2e.peers,
        e2e.grants_before,
        e2e.restart_entries,
        e2e.recover_ms,
        e2e.grants_total,
        ok(e2e.continuity),
        ok(e2e.converged),
    );

    let recovery = render_recovery_json(&sweep, &e2e);
    ltr_bench::merge_bench_section(&out_path, "recovery", &recovery);
    println!("\nmerged recovery metrics into {}", out_path.display());

    let all_ok = e2e.continuity && e2e.converged && sweep.iter().all(|p| p.verified);
    if !all_ok {
        eprintln!("WARNING: a recovery invariant failed");
        std::process::exit(1);
    }
}
