//! **Experiment P2 — response-time decomposition: log replication degree
//! and network latency.**
//!
//! Two sweeps on a fixed 24-peer network:
//!
//! 1. the replication degree `n = |Hr|` (number of Log-Peers per patch) —
//!    with the paper's all-ack policy the publish phase waits for the
//!    slowest of `n` puts, so latency grows slowly (max of n samples) while
//!    storage cost grows linearly;
//! 2. the network latency model (LAN vs. two WAN settings) — response time
//!    is dominated by the lookup + validate + publish round-trips.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_p2`

use ltr_bench::{fmt_latency, ok, print_table, settled_net};
use p2p_ltr::{check_continuity, LtrConfig};
use simnet::{Duration, LatencyModel, NetConfig};
use workload::{drive_editors, EditMix, EditorSpec};

fn run_one(seed: u64, net_cfg: NetConfig, cfg: LtrConfig) -> Vec<String> {
    let replication = cfg.log.replication;
    let mut net = settled_net(seed, net_cfg, 24, cfg);
    let peers = net.peers.clone();
    let docs: Vec<String> = (0..6).map(|d| format!("doc-{d}")).collect();
    for d in &docs {
        net.open_doc(&peers[..4], d, "seed");
    }
    net.settle(2);
    let horizon = net.now() + Duration::from_secs(15);
    drive_editors(
        &mut net.sim,
        &peers[..4],
        &EditorSpec {
            docs: docs.clone(),
            zipf_skew: 0.0,
            mean_think: Duration::from_millis(600),
            mix: EditMix::default(),
            horizon,
        },
        seed ^ 0x77,
    );
    net.settle(20);
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    net.run_until_quiet(&doc_refs, 180);
    net.settle(10);

    let lat = net.sim.metrics().summary("ltr.publish_latency_ms");
    let cont = check_continuity(&net.sim);
    vec![
        replication.to_string(),
        net.sim.metrics().counter("kts.grants").to_string(),
        net.sim.metrics().counter("log.publishes").to_string(),
        fmt_latency(&lat),
        ok(cont.is_clean()),
    ]
}

fn main() {
    // Sweep 1: replication degree n (LAN).
    let mut rows = Vec::new();
    for (i, n) in [1usize, 2, 3, 4, 6, 8].into_iter().enumerate() {
        let mut cfg = LtrConfig::default();
        cfg.log.replication = n;
        rows.push(run_one(0x9200 + i as u64, NetConfig::lan(), cfg));
    }
    print_table(
        "P2a: publish latency vs. log replication degree n = |Hr| (LAN, all-ack)",
        &[
            "n",
            "grants",
            "publishes",
            "publish ms (mean/p95/p99)",
            "continuity",
        ],
        &rows,
    );

    // Sweep 2: network latency model (n = 3).
    let mut rows = Vec::new();
    let models: [(&str, NetConfig, u64); 3] = [
        ("LAN 0.5-2ms", NetConfig::lan(), 1),
        (
            "WAN 10ms median",
            {
                let mut c = NetConfig::lan();
                c.latency = LatencyModel::LogNormal {
                    median: Duration::from_millis(10),
                    sigma: 0.3,
                    floor: Duration::from_millis(2),
                };
                c
            },
            8,
        ),
        ("WAN 40ms median", NetConfig::wan(), 25),
    ];
    for (i, (name, net_cfg, scale)) in models.into_iter().enumerate() {
        let mut cfg = LtrConfig::default();
        // Scale *timeouts* with the latency model; stabilization keeps its
        // cadence (it is rate-, not RTT-, bound) so rings converge in the
        // same wall-clock budget.
        cfg.chord.op_timeout = cfg.chord.op_timeout * scale;
        cfg.chord.suspect_ttl = cfg.chord.suspect_ttl * scale;
        cfg.validate_timeout = cfg.validate_timeout * scale;
        cfg.retry_backoff = cfg.retry_backoff * scale;
        let mut row = run_one(0x9300 + i as u64, net_cfg, cfg);
        row[0] = name.to_string();
        rows.push(row);
    }
    print_table(
        "P2b: publish latency vs. network latency model (n = 3, all-ack)",
        &[
            "latency model",
            "grants",
            "publishes",
            "publish ms (mean/p95/p99)",
            "continuity",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: latency grows sub-linearly in n (parallel puts, \
         wait-for-slowest) and roughly linearly in the one-way network delay."
    );
}
