//! **Experiment F3 — Figure 3 / the prototype's monitoring interface.**
//!
//! The paper's GUI "enables the user to manage the DHT network …
//! store/retrieve data in/from the DHT, monitor the data stored at each
//! peer, the keys for which the peer has generated a timestamp, etc."
//! This binary regenerates that view as a dashboard table after a short
//! editing session.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_f3`

use ltr_bench::{print_invariants, print_table, settled_net};
use p2p_ltr::report::{network_report, summarize};
use p2p_ltr::LtrConfig;
use simnet::{Duration, NetConfig};
use workload::{drive_editors, EditMix, EditorSpec};

fn main() {
    let mut net = settled_net(0xF3, NetConfig::lan(), 12, LtrConfig::default());
    let peers = net.peers.clone();
    let docs: Vec<String> = (0..8).map(|i| format!("wiki/page-{i}")).collect();
    for d in &docs {
        net.open_doc(&peers[..4], d, "seed");
    }
    net.settle(2);
    let horizon = net.now() + Duration::from_secs(12);
    drive_editors(
        &mut net.sim,
        &peers[..4],
        &EditorSpec {
            docs: docs.clone(),
            zipf_skew: 0.5,
            mean_think: Duration::from_millis(500),
            mix: EditMix::default(),
            horizon,
        },
        0xF3F3,
    );
    net.settle(18);
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    net.run_until_quiet(&doc_refs, 120);
    net.settle(10);

    // The per-peer monitoring table (Figure 3's main panel).
    let reports = network_report(&net.sim);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.me.addr),
                format!("{}", r.me.id),
                r.predecessor
                    .map(|p| format!("{}", p.addr))
                    .unwrap_or_else(|| "-".into()),
                format!("{}", r.successor.addr),
                format!("{}/{}", r.succ_list_len, r.fingers_filled),
                format!("{}p/{}r", r.primary_items, r.replica_items),
                r.mastered.len().to_string(),
                r.ts_backups.to_string(),
                r.grants.to_string(),
            ]
        })
        .collect();
    print_table(
        "F3: per-peer monitoring view (Figure 3's GUI as a table)",
        &[
            "peer",
            "ring id",
            "pred",
            "succ",
            "succs/fingers",
            "stored items",
            "keys mastered",
            "ts backups",
            "grants",
        ],
        &rows,
    );
    let s = summarize(&reports);
    println!(
        "\nnetwork: {} peers | {} primary + {} replica items | {} keys over {} masters | {} grants",
        s.peers, s.primary_items, s.replica_items, s.mastered_keys, s.active_masters, s.grants
    );
    print_invariants(&net);
}
