//! **Network runtime harness — sustained open-loop load over real
//! sockets.**
//!
//! Drives the two socket transports through the batch [`Transport`] API
//! with an identical frame mix and reports, per transport:
//!
//! 1. **Rated phases** (open loop): arrivals follow a fixed schedule that
//!    does *not* wait for the system — exactly how offered load behaves
//!    in production. Per phase we report achieved msgs/s, **send** p50/p99
//!    (arrival → accepted by the transport, i.e. queueing + backpressure
//!    stalls) and **recv** p50/p99 (arrival → decoded at the receiver,
//!    the end-to-end number), plus an SLO verdict (achieved ≥ 75% of
//!    offered, recv p99 ≤ 100 ms).
//! 2. **Saturation**: senders are kept permanently backlogged and we
//!    measure the drain rate — the throughput ceiling.
//!
//! The comparison under test: the non-blocking event-loop runtime
//! (`wire::RtHub`, one write syscall per *batch*) against the threaded
//! `wire::TcpHub` baseline (one blocking write syscall per *frame*). CI
//! gates on the runtime sustaining **≥ 2×** the baseline's saturation
//! throughput and meeting the rated-phase SLOs.
//!
//! Results are merged into `BENCH_hotpath.json` under the `net` key
//! (excluded from the determinism drift gate — it is wall-clock data).
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_net`
//! Flags: `--quick` (short phases, CI smoke), `--out PATH` (default
//! `BENCH_hotpath.json`).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use bytes::Bytes;
use ltr_bench::{ok, print_table};
use simnet::NodeId;
use wire::{
    decode_frame_bytes, encode_frame, Decode, Encode, Reader, RtHub, RuntimeConfig, TcpHub,
    Transport, TransportError, WireError,
};

/// Payload sizes cycled through the offered stream (small control
/// message / typical stamped edit / large patch).
const FRAME_MIX: [usize; 3] = [64, 256, 1024];
const PEERS: usize = 4;
/// Frames handed to `send_batch` per call.
const SEND_BATCH: usize = 64;
const RECV_BATCH: usize = 256;

/// The benchmark message: arrival timestamp (nanos since run start) and
/// sequence number up front, padding to the mixed size behind.
struct NetMsg {
    arrival_nanos: u64,
    seq: u64,
    pad: Bytes,
}

impl Encode for NetMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.arrival_nanos.encode(out);
        self.seq.encode(out);
        self.pad.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.arrival_nanos.encoded_len() + self.seq.encoded_len() + self.pad.encoded_len()
    }
}

impl Decode for NetMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NetMsg {
            arrival_nanos: u64::decode(r)?,
            seq: u64::decode(r)?,
            pad: Bytes::decode(r)?,
        })
    }
}

struct Endpoint {
    me: NodeId,
    dest: NodeId,
    transport: Box<dyn Transport>,
    /// Open-loop arrivals waiting for the transport: (arrival, frame).
    outq: VecDeque<(Instant, Bytes)>,
    scratch: Vec<Bytes>,
}

/// One measurement window's latency samples and counters.
#[derive(Default)]
struct Window {
    send_us: Vec<u64>,
    recv_us: Vec<u64>,
    delivered: u64,
    backpressure_stalls: u64,
}

struct PhaseRow {
    offered_rate: u64,
    secs: f64,
    achieved_rate: f64,
    send_p50_us: u64,
    send_p99_us: u64,
    recv_p50_us: u64,
    recv_p99_us: u64,
    stalls: u64,
    slo_ok: bool,
}

struct TransportRun {
    name: &'static str,
    phases: Vec<PhaseRow>,
    saturation_msgs_per_sec: f64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// Pump one endpoint: flush its backlog in batches, drain its inbound
/// frames, record latencies against `start`.
fn pump(ep: &mut Endpoint, start: Instant, win: &mut Window) {
    ep.transport.poll(Duration::ZERO);
    while !ep.outq.is_empty() {
        let batch: Vec<Bytes> = ep
            .outq
            .iter()
            .take(SEND_BATCH)
            .map(|(_, f)| f.clone())
            .collect();
        match ep.transport.send_batch(ep.dest, &batch) {
            Ok(n) => {
                let now = Instant::now();
                for (arrival, _) in ep.outq.drain(..n) {
                    win.send_us
                        .push(now.duration_since(arrival).as_micros() as u64);
                }
                if n < batch.len() {
                    win.backpressure_stalls += 1;
                    break;
                }
            }
            Err(TransportError::Backpressure) => {
                win.backpressure_stalls += 1;
                break;
            }
            Err(e) => panic!("transport failed under load: {e}"),
        }
    }
    loop {
        ep.scratch.clear();
        let n = ep.transport.recv_batch(&mut ep.scratch, RECV_BATCH);
        let now_nanos = start.elapsed().as_nanos() as u64;
        for frame in ep.scratch.drain(..) {
            let (_, msg) = decode_frame_bytes::<NetMsg>(&frame).expect("benchmark frame decodes");
            win.recv_us
                .push(now_nanos.saturating_sub(msg.arrival_nanos) / 1_000);
            win.delivered += 1;
        }
        if n < RECV_BATCH {
            break;
        }
    }
}

fn make_frame(me: NodeId, start: Instant, seq: u64) -> Bytes {
    let msg = NetMsg {
        arrival_nanos: start.elapsed().as_nanos() as u64,
        seq,
        pad: Bytes::from(vec![0xA5u8; FRAME_MIX[seq as usize % FRAME_MIX.len()]]),
    };
    Bytes::from(encode_frame(me, &msg))
}

/// One rated open-loop phase: arrivals at `rate` msgs/s (round-robin
/// across senders) for `secs`, then drain.
fn run_phase(eps: &mut [Endpoint], start: Instant, rate: u64, secs: f64) -> PhaseRow {
    let mut win = Window::default();
    let phase_start = Instant::now();
    let phase_len = Duration::from_secs_f64(secs);
    let interval_nanos = 1_000_000_000f64 / rate as f64;
    let mut offered = 0u64;
    while phase_start.elapsed() < phase_len {
        // Open loop: everything scheduled up to now arrives *now*,
        // whether or not the transport kept up.
        let due = (phase_start.elapsed().as_nanos() as f64 / interval_nanos) as u64;
        while offered < due {
            let sender = (offered as usize) % eps.len();
            let frame = make_frame(eps[sender].me, start, offered);
            eps[sender].outq.push_back((Instant::now(), frame));
            offered += 1;
        }
        for ep in eps.iter_mut() {
            pump(ep, start, &mut win);
        }
    }
    // Drain the tail so phases do not contaminate each other.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while win.delivered < offered && Instant::now() < drain_deadline {
        for ep in eps.iter_mut() {
            pump(ep, start, &mut win);
        }
    }
    let elapsed = phase_start.elapsed().as_secs_f64();
    win.send_us.sort_unstable();
    win.recv_us.sort_unstable();
    let achieved_rate = win.delivered as f64 / elapsed;
    let recv_p99 = percentile(&win.recv_us, 99.0);
    PhaseRow {
        offered_rate: rate,
        secs: elapsed,
        achieved_rate,
        send_p50_us: percentile(&win.send_us, 50.0),
        send_p99_us: percentile(&win.send_us, 99.0),
        recv_p50_us: percentile(&win.recv_us, 50.0),
        recv_p99_us: recv_p99,
        stalls: win.backpressure_stalls,
        slo_ok: achieved_rate >= 0.75 * rate as f64 && recv_p99 <= 100_000,
    }
}

/// Saturation: keep every sender backlogged for `secs`, report the drain
/// rate.
fn run_saturation(eps: &mut [Endpoint], start: Instant, secs: f64) -> f64 {
    let mut win = Window::default();
    let sat_start = Instant::now();
    let sat_len = Duration::from_secs_f64(secs);
    let mut seq = 0u64;
    while sat_start.elapsed() < sat_len {
        for ep in eps.iter_mut() {
            while ep.outq.len() < 4 * SEND_BATCH {
                let frame = make_frame(ep.me, start, seq);
                ep.outq.push_back((Instant::now(), frame));
                seq += 1;
            }
            pump(ep, start, &mut win);
        }
    }
    let measured = win.delivered;
    let elapsed = sat_start.elapsed().as_secs_f64();
    // Drain leftovers outside the measurement window so the next run
    // starts clean.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while eps.iter().any(|e| !e.outq.is_empty()) && Instant::now() < drain_deadline {
        for ep in eps.iter_mut() {
            pump(ep, start, &mut win);
        }
    }
    measured as f64 / elapsed
}

fn run_transport(
    name: &'static str,
    mut make: impl FnMut(NodeId) -> Box<dyn Transport>,
    rates: &[(u64, f64)],
    sat_secs: f64,
) -> TransportRun {
    let mut eps: Vec<Endpoint> = (0..PEERS)
        .map(|i| Endpoint {
            me: NodeId(i as u32),
            dest: NodeId(((i + 1) % PEERS) as u32),
            transport: make(NodeId(i as u32)),
            outq: VecDeque::new(),
            scratch: Vec::new(),
        })
        .collect();
    let start = Instant::now();
    // Warm the connections (first dial, TCP slow start) off the record.
    let _ = run_phase(&mut eps, start, 2_000, 0.2);
    let phases: Vec<PhaseRow> = rates
        .iter()
        .map(|&(rate, secs)| run_phase(&mut eps, start, rate, secs))
        .collect();
    let saturation_msgs_per_sec = run_saturation(&mut eps, start, sat_secs);
    TransportRun {
        name,
        phases,
        saturation_msgs_per_sec,
    }
}

fn render_net_json(runs: &[TransportRun], speedup: f64, slo_ok: bool) -> String {
    let mut out = String::new();
    out.push_str("  \"net\": {\n");
    let _ = writeln!(
        out,
        "    \"peers\": {PEERS},\n    \"frame_mix_bytes\": [{}],",
        FRAME_MIX.map(|s| s.to_string()).join(", ")
    );
    out.push_str("    \"transports\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"transport\": \"{}\", \"saturation_msgs_per_sec\": {:.0}, \"phases\": [",
            run.name, run.saturation_msgs_per_sec
        );
        for (j, p) in run.phases.iter().enumerate() {
            let pcomma = if j + 1 < run.phases.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"offered_rate\": {}, \"secs\": {:.2}, \"achieved_rate\": {:.0}, \
                 \"send_p50_us\": {}, \"send_p99_us\": {}, \"recv_p50_us\": {}, \
                 \"recv_p99_us\": {}, \"backpressure_stalls\": {}, \"slo_ok\": {}}}{}",
                p.offered_rate,
                p.secs,
                p.achieved_rate,
                p.send_p50_us,
                p.send_p99_us,
                p.recv_p50_us,
                p.recv_p99_us,
                p.stalls,
                p.slo_ok,
                pcomma,
            );
        }
        let _ = writeln!(out, "      ]}}{comma}");
    }
    out.push_str("    ],\n");
    let _ = writeln!(
        out,
        "    \"speedup_vs_tcphub\": {speedup:.2},\n    \"slo_ok\": {slo_ok}"
    );
    out.push_str("  }\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = PathBuf::from(
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("BENCH_hotpath.json"),
    );
    let (rates, sat_secs): (Vec<(u64, f64)>, f64) = if quick {
        (vec![(20_000, 0.8)], 1.5)
    } else {
        (vec![(20_000, 2.0), (50_000, 2.0)], 3.0)
    };

    let rt_hub = RtHub::with_config(RuntimeConfig::new());
    let rt = run_transport(
        "runtime",
        |me| Box::new(rt_hub.endpoint(me).expect("bind runtime listener")),
        &rates,
        sat_secs,
    );
    let tcp_hub = TcpHub::new();
    let tcp = run_transport(
        "tcphub",
        |me| Box::new(tcp_hub.endpoint(me).expect("bind baseline listener")),
        &rates,
        sat_secs,
    );

    for run in [&rt, &tcp] {
        print_table(
            &format!(
                "{}: open-loop phases ({} peers, frame mix {:?}B)",
                run.name, PEERS, FRAME_MIX
            ),
            &[
                "offered/s",
                "achieved/s",
                "send p50 us",
                "send p99 us",
                "recv p50 us",
                "recv p99 us",
                "stalls",
                "SLO",
            ],
            &run.phases
                .iter()
                .map(|p| {
                    vec![
                        p.offered_rate.to_string(),
                        format!("{:.0}", p.achieved_rate),
                        p.send_p50_us.to_string(),
                        p.send_p99_us.to_string(),
                        p.recv_p50_us.to_string(),
                        p.recv_p99_us.to_string(),
                        p.stalls.to_string(),
                        ok(p.slo_ok),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!(
            "{} saturation: {:.0} msgs/s",
            run.name, run.saturation_msgs_per_sec
        );
    }

    let speedup = rt.saturation_msgs_per_sec / tcp.saturation_msgs_per_sec.max(1.0);
    let slo_ok = rt.phases.iter().all(|p| p.slo_ok);
    println!(
        "\nruntime vs tcphub saturation speedup: {speedup:.2}x (gate: >= 2.0); runtime SLO: {}",
        ok(slo_ok)
    );

    let net = render_net_json(&[rt, tcp], speedup, slo_ok);
    ltr_bench::merge_bench_section(&out_path, "net", &net);
    println!("merged net metrics into {}", out_path.display());

    if speedup < 2.0 || !slo_ok {
        eprintln!("WARNING: network runtime gate failed (speedup {speedup:.2}, slo {slo_ok})");
        std::process::exit(1);
    }
}
