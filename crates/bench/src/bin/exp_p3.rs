//! **Experiment P3 — behaviour under churn.**
//!
//! The paper's headline robustness claim: "we demonstrate how P2P-LTR
//! handles the dynamic behavior of peers with respect to the DHT". This
//! sweep raises the churn rate (random joins, graceful leaves and crashes)
//! while editors keep publishing, and reports correctness and cost.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_p3`

use ltr_bench::{fmt_latency, ok, print_table, settled_net};
use p2p_ltr::{check_continuity, check_convergence, check_total_order, LtrConfig};
use simnet::{Duration, NetConfig};
use workload::{drive_churn, drive_editors, ChurnSpec, EditMix, EditorSpec};

fn main() {
    // churn mean interval; None = no churn.
    let levels: [(&str, Option<Duration>); 4] = [
        ("none", None),
        ("low (1 event / 8s)", Some(Duration::from_secs(8))),
        ("medium (1 / 3s)", Some(Duration::from_secs(3))),
        ("high (1 / 1.5s)", Some(Duration::from_millis(1500))),
    ];
    let mut rows = Vec::new();
    for (i, (name, interval)) in levels.into_iter().enumerate() {
        let cfg = LtrConfig::default();
        let mut net = settled_net(0x9500 + i as u64, NetConfig::lan(), 20, cfg.clone());
        let peers = net.peers.clone();
        let docs: Vec<String> = (0..4).map(|d| format!("doc-{d}")).collect();
        let editors: Vec<_> = peers[..3].to_vec();
        for d in &docs {
            net.open_doc(&editors, d, "seed");
        }
        net.settle(2);

        let horizon = net.now() + Duration::from_secs(40);
        drive_editors(
            &mut net.sim,
            &editors,
            &EditorSpec {
                docs: docs.clone(),
                zipf_skew: 0.0,
                mean_think: Duration::from_millis(800),
                mix: EditMix::default(),
                horizon,
            },
            0x3333 + i as u64,
        );
        if let Some(mean_interval) = interval {
            drive_churn(
                &mut net.sim,
                ChurnSpec {
                    mean_interval,
                    crash_weight: 2,
                    leave_weight: 1,
                    join_weight: 2,
                    protected: editors.clone(),
                    min_alive: 10,
                    horizon,
                },
                cfg.clone(),
                0x4444 + i as u64,
            );
        }
        net.settle(50);
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        net.run_until_quiet(&doc_refs, 240);
        net.settle(20);
        net.run_until_quiet(&doc_refs, 60);
        net.settle(10);

        let cont = check_continuity(&net.sim);
        let order = check_total_order(&net.sim);
        let conv = check_convergence(&net.sim);
        let m = net.sim.metrics();
        rows.push(vec![
            name.to_string(),
            format!(
                "{}c/{}l/{}j",
                m.counter("churn.crashes"),
                m.counter("churn.leaves"),
                m.counter("churn.joins")
            ),
            m.counter("kts.grants").to_string(),
            m.counter("ltr.validate_redirect").to_string(),
            m.counter("ltr.validate_timeout").to_string(),
            m.counter("kts.backups_promoted").to_string(),
            m.counter("kts.stale_detected").to_string(),
            fmt_latency(&m.summary("ltr.publish_latency_ms")),
            ok(cont.is_clean() && order.is_clean()),
            ok(conv.is_converged()),
        ]);
    }
    print_table(
        "P3: correctness and cost under churn (20 peers, 3 editors, 4 docs, 40s)",
        &[
            "churn level",
            "events",
            "grants",
            "redirects",
            "timeouts",
            "promotions",
            "stale masters",
            "publish ms (mean/p95/p99)",
            "continuity+order",
            "converged",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: higher churn costs more redirects/timeouts and \
         fatter latency tails, but the invariants (continuity, total order, \
         convergence) must hold at every level — the paper's core claim."
    );
}
