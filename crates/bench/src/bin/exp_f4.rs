//! **Experiment F4 — Figure 4 / "Timestamp generation" scenario.**
//!
//! Shows that "the responsibility for the continuous timestamp generation is
//! distributed over all peers of the DHT, i.e. each Master-key peer is
//! responsible for timestamping a subset of the documents", and reproduces
//! Figure 4's per-master view of keys and valid timestamps.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_f4`

use ltr_bench::{print_invariants, print_table, settled_net};
use p2p_ltr::LtrConfig;
use simnet::{Duration, NetConfig};
use workload::{drive_editors, EditMix, EditorSpec};

fn main() {
    let peers_n = 32;
    let docs_n = 64;
    let editors_n = 8;

    let mut net = settled_net(0xF4, NetConfig::lan(), peers_n, LtrConfig::default());
    let peers = net.peers.clone();
    let docs: Vec<String> = (0..docs_n).map(|i| format!("wiki/page-{i}")).collect();
    for d in &docs {
        net.open_doc(&peers[..editors_n], d, "seed");
    }
    net.settle(2);

    let horizon = net.now() + Duration::from_secs(20);
    drive_editors(
        &mut net.sim,
        &peers[..editors_n],
        &EditorSpec {
            docs: docs.clone(),
            zipf_skew: 0.0,
            mean_think: Duration::from_millis(400),
            mix: EditMix::default(),
            horizon,
        },
        0xF4F4,
    );
    net.settle(25);
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    net.run_until_quiet(&doc_refs, 120);
    net.settle(10);

    // Figure 4: per-master table of (keys mastered, grants, sample last-ts).
    let mut rows = Vec::new();
    let mut master_counts = Vec::new();
    for p in net.alive_peers() {
        let node = net.node(p);
        let mastered = node.kts().mastered_keys();
        let grants = node.grants().len();
        if mastered.is_empty() && grants == 0 {
            continue;
        }
        master_counts.push(mastered.len());
        let sample: Vec<String> = mastered
            .iter()
            .take(3)
            .map(|(k, ts)| format!("{k}→ts{ts}"))
            .collect();
        rows.push(vec![
            format!("{}", p.addr),
            format!("{}", p.id),
            mastered.len().to_string(),
            grants.to_string(),
            node.kts().backup_count().to_string(),
            sample.join(" "),
        ]);
    }
    rows.sort_by(|a, b| b[2].parse::<usize>().unwrap().cmp(&a[2].parse().unwrap()));
    print_table(
        "F4: Master-key responsibility per peer (Figure 4)",
        &[
            "peer",
            "ring id",
            "keys mastered",
            "grants",
            "succ backups",
            "sample last-ts",
        ],
        &rows,
    );

    let masters = master_counts.len();
    let max = master_counts.iter().max().copied().unwrap_or(0);
    let min_nonzero = master_counts.iter().min().copied().unwrap_or(0);
    let mean = docs_n as f64 / peers_n as f64;
    println!(
        "\nbalance: {docs_n} documents over {peers_n} peers → {masters} distinct masters; \
         keys/master min={min_nonzero} max={max} (uniform expectation {mean:.1})"
    );
    println!(
        "edits issued: {}, timestamps granted: {}",
        net.sim.metrics().counter("workload.edits_issued"),
        net.sim.metrics().counter("kts.grants"),
    );
    print_invariants(&net);
}
