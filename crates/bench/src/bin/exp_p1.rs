//! **Experiment P1 — response time vs. network size.**
//!
//! The paper's prototype "checks the correctness and response times of
//! P2P-LTR" while letting the operator "specify the number of peers". This
//! sweep measures the end-to-end publish response time (save → validated
//! ack) and its components as the DHT grows: routing hops grow O(log N), so
//! response time should too.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_p1`

use ltr_bench::{fmt_latency, ok, print_table, settled_net};
use p2p_ltr::{check_continuity, check_convergence, LtrConfig};
use simnet::{Duration, NetConfig};
use workload::{drive_editors, EditMix, EditorSpec};

fn main() {
    let sizes = [8usize, 16, 32, 64, 128];
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let mut net = settled_net(0x9100 + i as u64, NetConfig::lan(), n, LtrConfig::default());
        let peers = net.peers.clone();
        let docs: Vec<String> = (0..8).map(|d| format!("doc-{d}")).collect();
        for d in &docs {
            net.open_doc(&peers[..4], d, "seed");
        }
        net.settle(2);
        let horizon = net.now() + Duration::from_secs(20);
        drive_editors(
            &mut net.sim,
            &peers[..4],
            &EditorSpec {
                docs: docs.clone(),
                zipf_skew: 0.0,
                mean_think: Duration::from_millis(500),
                mix: EditMix::default(),
                horizon,
            },
            0x91AB,
        );
        net.settle(25);
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        net.run_until_quiet(&doc_refs, 120);
        net.settle(10);

        let lat = net.sim.metrics().summary("ltr.publish_latency_ms");
        let hops = net.sim.metrics().summary("chord.lookup_hops");
        let cont = check_continuity(&net.sim);
        let conv = check_convergence(&net.sim);
        rows.push(vec![
            n.to_string(),
            net.sim.metrics().counter("kts.grants").to_string(),
            fmt_latency(&lat),
            format!("{:.2}", hops.mean),
            ok(cont.is_clean()),
            ok(conv.is_converged()),
        ]);
    }
    print_table(
        "P1: publish response time vs. network size (LAN, 4 editors, 8 docs)",
        &[
            "peers",
            "grants",
            "publish ms (mean/p95/p99)",
            "mean lookup hops",
            "continuity",
            "converged",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: hops ≈ O(log N) (Chord), so response time grows \
         logarithmically with network size."
    );
}
