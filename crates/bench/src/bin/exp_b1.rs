//! **Experiment B1 — P2P-LTR vs. the centralized reconciler.**
//!
//! The paper motivates P2P reconciliation because single-node engines
//! "may introduce bottlenecks and single point of failures" (§1). This
//! experiment quantifies both effects against the `baseline` module:
//!
//! 1. **throughput/latency scaling**: editors spread over more and more
//!    documents — the coordinator's single FIFO queue saturates, P2P-LTR's
//!    per-document masters scale out;
//! 2. **availability**: the coordinator crashes vs. one P2P-LTR master
//!    crashes — the baseline stops globally, P2P-LTR recovers after
//!    takeover and only for the affected keys.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_b1`

use ltr_bench::{fmt_latency, print_table, settled_net};
use p2p_ltr::baseline::{BaseCmd, BaseMsg, BaselineUser, Coordinator};
use p2p_ltr::{check_continuity, LtrConfig};
use simnet::{CounterId, Duration, NetConfig, NodeId, NodeState, Rng64, Sim, Time, Zipf};
use workload::{drive_editors, mutate_text, EditMix, EditorSpec};

const EDITORS: usize = 12;
const RUN_SECS: u64 = 25;
/// Coordinator per-request service time (journal write + bookkeeping of a
/// single-threaded reconciler).
const SERVICE: Duration = Duration::from_millis(2);

/// Drive the baseline: same editor model as the P2P run, implemented as
/// self-scheduling control events over the baseline sim.
fn drive_base_editors(
    sim: &mut Sim<BaseMsg>,
    users: &[NodeId],
    docs: &[String],
    mean_think: Duration,
    horizon: Time,
    seed: u64,
) {
    let mut seeder = Rng64::new(seed);
    for (i, &u) in users.iter().enumerate() {
        let rng = seeder.fork();
        let docs = docs.to_vec();
        let issued = sim.metrics_mut().register_counter("workload.edits_issued");
        schedule_base_step(
            sim,
            sim.now() + mean_think / 2,
            u,
            i as u64 + 1,
            docs,
            mean_think,
            horizon,
            rng,
            0,
            issued,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn schedule_base_step(
    sim: &mut Sim<BaseMsg>,
    at: Time,
    user: NodeId,
    site: u64,
    docs: Vec<String>,
    mean_think: Duration,
    horizon: Time,
    mut rng: Rng64,
    counter: u64,
    issued: CounterId,
) {
    if at > horizon {
        return;
    }
    let at = at.max(sim.now());
    sim.schedule_at(
        at,
        Box::new(move |s: &mut Sim<BaseMsg>| {
            if s.node_state(user) == NodeState::Up {
                let zipf = Zipf::new(docs.len(), 0.0);
                let doc = docs[zipf.sample(&mut rng)].clone();
                let edit = s.node_as::<BaselineUser>(user).and_then(|n| {
                    if n.is_busy(&doc) {
                        None
                    } else {
                        n.doc_text(&doc).map(|text| {
                            let kind = EditMix::default().sample(&mut rng);
                            mutate_text(&text, kind, site, counter, &mut rng)
                        })
                    }
                });
                if let Some(new_text) = edit {
                    s.send_external(user, BaseMsg::Cmd(BaseCmd::Edit { doc, new_text }));
                    s.metrics_mut().incr_id(issued);
                }
            }
            let gap =
                Duration::from_micros(rng.exp_mean(mean_think.as_micros() as f64).max(1.0) as u64);
            let next = s.now() + gap;
            schedule_base_step(
                s,
                next,
                user,
                site,
                docs,
                mean_think,
                horizon,
                rng,
                counter + 1,
                issued,
            );
        }),
    );
}

fn run_baseline(docs_n: usize, seed: u64, crash_coord_at: Option<u64>) -> (u64, String, u64) {
    let mut sim: Sim<BaseMsg> = Sim::new(seed, NetConfig::lan());
    let coord = sim.add_node(Coordinator::new(SERVICE));
    let users: Vec<NodeId> = (0..EDITORS)
        .map(|i| {
            sim.add_node(BaselineUser::new(
                i as u64 + 1,
                coord,
                Duration::from_millis(500),
                Some(Duration::from_secs(1)),
            ))
        })
        .collect();
    let docs: Vec<String> = (0..docs_n).map(|d| format!("doc-{d}")).collect();
    for &u in &users {
        for d in &docs {
            sim.send_external(
                u,
                BaseMsg::Cmd(BaseCmd::OpenDoc {
                    doc: d.clone(),
                    initial: "seed".into(),
                }),
            );
        }
    }
    sim.run_for(Duration::from_millis(200));
    let horizon = sim.now() + Duration::from_secs(RUN_SECS);
    drive_base_editors(
        &mut sim,
        &users,
        &docs,
        Duration::from_millis(400),
        horizon,
        seed ^ 0x11,
    );
    if let Some(t) = crash_coord_at {
        let at = sim.now() + Duration::from_secs(t);
        sim.schedule_at(at, Box::new(move |s: &mut Sim<BaseMsg>| s.crash(coord)));
    }
    sim.run_for(Duration::from_secs(RUN_SECS + 10));
    let grants = sim.metrics().counter("base.grants");
    let lat = fmt_latency(&sim.metrics().summary("base.publish_latency_ms"));
    let timeouts = sim.metrics().counter("base.validate_timeout");
    (grants, lat, timeouts)
}

fn run_ltr(docs_n: usize, seed: u64, crash_master_at: Option<u64>) -> (u64, String, u64) {
    let mut net = settled_net(seed, NetConfig::lan(), 24, LtrConfig::default());
    let peers = net.peers.clone();
    let editors: Vec<_> = peers[..EDITORS].to_vec();
    let docs: Vec<String> = (0..docs_n).map(|d| format!("doc-{d}")).collect();
    for d in &docs {
        net.open_doc(&editors, d, "seed");
    }
    net.settle(2);
    let horizon = net.now() + Duration::from_secs(RUN_SECS);
    drive_editors(
        &mut net.sim,
        &editors,
        &EditorSpec {
            docs: docs.clone(),
            zipf_skew: 0.0,
            mean_think: Duration::from_millis(400),
            mix: EditMix::default(),
            horizon,
        },
        seed ^ 0x22,
    );
    if let Some(t) = crash_master_at {
        // Crash the master of doc-0 (a non-editor) at t.
        let master = net.master_of("doc-0");
        let at = net.now() + Duration::from_secs(t);
        if !editors.iter().any(|e| e.addr == master.addr) {
            workload::schedule_crash(&mut net.sim, at, master);
        }
    }
    net.settle(RUN_SECS + 10);
    let grants = net.sim.metrics().counter("kts.grants");
    let lat = fmt_latency(&net.sim.metrics().summary("ltr.publish_latency_ms"));
    let cont = check_continuity(&net.sim);
    let violations = (cont.duplicates.len() + cont.gaps.len()) as u64;
    (grants, lat, violations)
}

fn main() {
    // Part 1: throughput/latency scaling with document count.
    let mut rows = Vec::new();
    for (i, docs_n) in [1usize, 4, 16, 48].into_iter().enumerate() {
        let (bg, bl, _) = run_baseline(docs_n, 0xB100 + i as u64, None);
        let (lg, ll, lv) = run_ltr(docs_n, 0xB200 + i as u64, None);
        rows.push(vec![
            docs_n.to_string(),
            bg.to_string(),
            bl,
            lg.to_string(),
            ll,
            lv.to_string(),
        ]);
    }
    print_table(
        &format!(
            "B1a: centralized reconciler vs P2P-LTR — {EDITORS} editors, {RUN_SECS}s \
             (coordinator service time {SERVICE})"
        ),
        &[
            "docs",
            "baseline grants",
            "baseline ms (mean/p95/p99)",
            "LTR grants",
            "LTR ms (mean/p95/p99)",
            "LTR violations",
        ],
        &rows,
    );

    // Part 2: availability under coordinator/master failure.
    let (bg, bl, bto) = run_baseline(8, 0xB301, Some(8));
    let (lg, ll, lv) = run_ltr(8, 0xB302, Some(8));
    print_table(
        "B1b: crash at t=8s — coordinator (baseline) vs one master (P2P-LTR)",
        &[
            "system",
            "grants (40s window)",
            "publish ms (mean/p95/p99)",
            "timeouts / violations",
        ],
        &[
            vec![
                "centralized".into(),
                bg.to_string(),
                bl,
                format!("{bto} timeouts (all editing stopped)"),
            ],
            vec![
                "P2P-LTR".into(),
                lg.to_string(),
                ll,
                format!("{lv} continuity violations (takeover for 1 doc)"),
            ],
        ],
    );
    println!(
        "\nExpected shape: with few documents the centralized engine wins on \
         latency (no DHT hops); as load spreads over documents it saturates at \
         1/service_time while P2P-LTR scales out; and a coordinator crash \
         halts the baseline entirely, while P2P-LTR only stalls the crashed \
         master's keys until the Master-Succ takes over."
    );
}
