//! **Experiment A1 (ablation) — retrieval availability mechanisms.**
//!
//! P2P-LTR protects log records twice: the replication hash family
//! (`n = |Hr|` independent Log-Peers) and DHT-level successor replicas
//! (Log-Peers-Succ). This ablation publishes a run of patches, crashes a
//! fraction of the network, and measures whether a fresh reader can still
//! retrieve the full history — with each mechanism on/off.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_a1`

use ltr_bench::{ok, print_table, settled_net};
use p2p_ltr::{LtrConfig, LtrEventKind};
use simnet::{NetConfig, Rng64};

const DOC: &str = "wiki/Main";
const PATCHES: usize = 20;

struct Config {
    name: &'static str,
    hr_n: usize,
    succ_replicas: usize,
}

fn run(cfg_desc: &Config, crash_frac: f64, seed: u64) -> (bool, u64, u64) {
    let mut cfg = LtrConfig::default();
    cfg.log.replication = cfg_desc.hr_n;
    cfg.chord.storage_replicas = cfg_desc.succ_replicas;
    let mut net = settled_net(seed, NetConfig::lan(), 20, cfg);
    let peers = net.peers.clone();

    // One editor publishes PATCHES patches; the late reader stays passive.
    let editor = peers[0];
    let reader = peers[1];
    net.open_doc(&[editor], DOC, "seed");
    net.settle(1);
    for i in 0..PATCHES {
        let cur = net.node(editor).doc_text(DOC).unwrap();
        net.edit(editor, DOC, &format!("{cur}\npatch-{i}"));
        net.run_until_quiet(&[DOC], 60);
    }
    net.settle(8); // replica pushes propagate

    // Crash a fraction of the network (never the editor/reader).
    let mut rng = Rng64::new(seed ^ 0xDEAD);
    let mut candidates: Vec<_> = net
        .alive_peers()
        .into_iter()
        .filter(|p| p.addr != editor.addr && p.addr != reader.addr)
        .collect();
    rng.shuffle(&mut candidates);
    let kill = ((net.alive_peers().len() as f64) * crash_frac) as usize;
    for p in candidates.into_iter().take(kill) {
        net.crash(p);
    }
    net.settle(15); // stabilization

    // Now the reader opens the doc and pulls everything via anti-entropy.
    net.open_doc(&[reader], DOC, "seed");
    net.settle(30);
    net.run_until_quiet(&[DOC], 120);
    net.settle(10);

    let got = net.node(reader).doc_ts(DOC).unwrap_or(0);
    let stalls = net
        .node(reader)
        .events
        .iter()
        .filter(|e| matches!(e.kind, LtrEventKind::RetrievalStalled { .. }))
        .count() as u64;
    let fallbacks = net.sim.metrics().counter("ltr.fetch_fallbacks");
    (got == PATCHES as u64, stalls, fallbacks)
}

fn main() {
    let configs = [
        Config {
            name: "n=1, no succ replicas",
            hr_n: 1,
            succ_replicas: 0,
        },
        Config {
            name: "n=3, no succ replicas",
            hr_n: 3,
            succ_replicas: 0,
        },
        Config {
            name: "n=1, 2 succ replicas",
            hr_n: 1,
            succ_replicas: 2,
        },
        Config {
            name: "n=3, 2 succ replicas (paper)",
            hr_n: 3,
            succ_replicas: 2,
        },
    ];
    let fractions = [0.0f64, 0.15, 0.3];
    let mut rows = Vec::new();
    for (ci, c) in configs.iter().enumerate() {
        for (fi, &f) in fractions.iter().enumerate() {
            let seed = 0xA100 + (ci * 10 + fi) as u64;
            let (full, _stalls, fallbacks) = run(c, f, seed);
            rows.push(vec![
                c.name.to_string(),
                format!("{:.0}%", f * 100.0),
                ok(full),
                fallbacks.to_string(),
            ]);
        }
    }
    print_table(
        &format!(
            "A1: full-history retrieval ({PATCHES} patches) after crashing a fraction of 20 peers"
        ),
        &[
            "mechanisms",
            "crashed",
            "full history retrieved",
            "replica-hash fallbacks",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: with a single replication hash and no successor \
         replicas, even moderate failure rates lose history; either mechanism \
         alone helps; the paper's combination (Hr + Log-Peers-Succ) survives \
         30% failures."
    );
}
