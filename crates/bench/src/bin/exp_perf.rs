//! **Perf harness — the hot-path throughput trajectory.**
//!
//! Runs a fixed scenario matrix (ring size × replication degree ×
//! workload), measures the *wall-clock* cost of simulating each scenario,
//! and writes `BENCH_hotpath.json`. Simulated behaviour is deterministic
//! (fixed seeds), so two runs differ only in wall-clock speed — which is
//! exactly what this harness tracks: every future PR has a committed
//! baseline to beat, and a regression in the simulator/protocol hot paths
//! (event loop, key derivation, message handling) shows up as a drop in
//! `events_per_sec` / `ops_per_sec`.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_perf`
//! Flags: `--quick` (one small scenario, CI smoke), `--out PATH`
//! (default `BENCH_hotpath.json` in the current directory).
//!
//! JSON fields per scenario: `ops` (validated publishes) and `ops_per_sec`,
//! `msgs`/`msgs_per_sec` (simnet messages sent), `events`/`events_per_sec`
//! (simulator events executed), `stamp_p50_ms`/`stamp_p99_ms` (end-to-end
//! save→ack latency in **simulated** milliseconds), `wall_ms`,
//! `wire_bytes` (total bytes-on-wire through the real binary codec, frame
//! overhead included) with a `wire_bytes_per_class` breakdown, and the
//! correctness oracles (`continuity`, `converged`) — a perf number from a
//! broken run is worthless.
//!
//! The `*_fullpush` rows run the **full legacy configuration** — full-push
//! replica sync *and* grant fencing off — so their deterministic fields
//! are directly comparable across the epoch-fencing change: the committed
//! baseline rows for those scenarios must not move unless the legacy
//! protocol itself does.
//!
//! Every scenario runs with wire accounting on (purely observational);
//! the `*_bw*` scenario additionally sets `NetConfig::bandwidth`, so the
//! simulator charges per-message serialization delay from the actual
//! encoded sizes — the bandwidth-constrained workload the sim could not
//! previously express.

use std::fmt::Write as _;
use std::time::Instant;

use chord::ReplicationMode;
use ltr_bench::settled_net_with;
use p2p_ltr::{check_continuity, check_convergence, LtrConfig};
use simnet::{Duration, NetConfig};
use workload::{drive_editors, EditMix, EditorSpec};

struct Scenario {
    name: &'static str,
    peers: usize,
    replication: usize,
    /// "collab" (think-time editors) or "syncheavy" (anti-entropy dominated).
    workload: &'static str,
    editors: usize,
    docs: usize,
    /// Editor workload horizon, simulated seconds.
    drive_secs: u64,
    /// Per-link bandwidth in bytes/sec (None = unlimited, the default).
    bandwidth: Option<u64>,
    /// Explicit per-row seed: the `*_fullpush` comparison rows reuse their
    /// Merkle sibling's seed so both modes simulate the *same* workload
    /// and the byte delta is attributable to the sync protocol alone.
    seed: u64,
    /// Replica-synchronization protocol under measurement.
    mode: ReplicationMode,
    /// Grant fencing (master epochs). The `*_fullpush` rows run the full
    /// legacy configuration — fencing off as well as full-push sync — so
    /// their deterministic fields stay byte-identical to the pre-epoch
    /// baseline and any drift there means the legacy path itself moved.
    fencing: bool,
}

fn mode_str(mode: ReplicationMode) -> &'static str {
    match mode {
        ReplicationMode::FullPush => "full_push",
        ReplicationMode::MerkleDiff => "merkle_diff",
    }
}

struct Outcome {
    name: String,
    peers: usize,
    replication: usize,
    workload: &'static str,
    mode: &'static str,
    sim_secs: f64,
    wall_ms: f64,
    ops: u64,
    msgs: u64,
    events: u64,
    stamp_p50_ms: f64,
    stamp_p99_ms: f64,
    wire_bytes: u64,
    /// `(class, bytes)` in descending byte order.
    wire_classes: Vec<(String, u64)>,
    continuity: bool,
    converged: bool,
}

fn scenario_matrix(quick: bool) -> Vec<Scenario> {
    if quick {
        return vec![
            Scenario {
                name: "quick_ring8_n3_collab",
                peers: 8,
                replication: 3,
                workload: "collab",
                editors: 3,
                docs: 4,
                drive_secs: 8,
                bandwidth: None,
                seed: 0xBEAC_0000,
                mode: ReplicationMode::MerkleDiff,
                fencing: true,
            },
            Scenario {
                name: "quick_ring8_n3_collab_fullpush",
                peers: 8,
                replication: 3,
                workload: "collab",
                editors: 3,
                docs: 4,
                drive_secs: 8,
                bandwidth: None,
                seed: 0xBEAC_0000,
                mode: ReplicationMode::FullPush,
                fencing: false,
            },
        ];
    }
    vec![
        Scenario {
            name: "ring16_n1_collab",
            peers: 16,
            replication: 1,
            workload: "collab",
            editors: 4,
            docs: 8,
            drive_secs: 20,
            bandwidth: None,
            seed: 0xBEAC_0000,
            mode: ReplicationMode::MerkleDiff,
            fencing: true,
        },
        Scenario {
            name: "ring16_n3_collab",
            peers: 16,
            replication: 3,
            workload: "collab",
            editors: 4,
            docs: 8,
            drive_secs: 20,
            bandwidth: None,
            seed: 0xBEAC_0001,
            mode: ReplicationMode::MerkleDiff,
            fencing: true,
        },
        Scenario {
            name: "ring16_n3_collab_fullpush",
            peers: 16,
            replication: 3,
            workload: "collab",
            editors: 4,
            docs: 8,
            drive_secs: 20,
            bandwidth: None,
            seed: 0xBEAC_0001,
            mode: ReplicationMode::FullPush,
            fencing: false,
        },
        Scenario {
            name: "ring48_n3_collab",
            peers: 48,
            replication: 3,
            workload: "collab",
            editors: 8,
            docs: 16,
            drive_secs: 20,
            bandwidth: None,
            seed: 0xBEAC_0002,
            mode: ReplicationMode::MerkleDiff,
            fencing: true,
        },
        Scenario {
            name: "ring48_n3_collab_fullpush",
            peers: 48,
            replication: 3,
            workload: "collab",
            editors: 8,
            docs: 16,
            drive_secs: 20,
            bandwidth: None,
            seed: 0xBEAC_0002,
            mode: ReplicationMode::FullPush,
            fencing: false,
        },
        Scenario {
            name: "ring16_n3_syncheavy",
            peers: 16,
            replication: 3,
            workload: "syncheavy",
            editors: 2,
            docs: 8,
            drive_secs: 20,
            bandwidth: None,
            seed: 0xBEAC_0003,
            mode: ReplicationMode::MerkleDiff,
            fencing: true,
        },
        // Bandwidth-constrained: 256 kB/s per link, so every message pays
        // its encoded size as serialization delay (a ~300-byte frame costs
        // ~1.2 ms per hop on top of the LAN latency).
        Scenario {
            name: "ring16_n3_collab_bw256k",
            peers: 16,
            replication: 3,
            workload: "collab",
            editors: 4,
            docs: 8,
            drive_secs: 20,
            bandwidth: Some(256 * 1024),
            seed: 0xBEAC_0004,
            mode: ReplicationMode::MerkleDiff,
            fencing: true,
        },
    ]
}

fn run_scenario(sc: &Scenario) -> Outcome {
    let seed = sc.seed;
    let mut cfg = LtrConfig::default();
    cfg.log.replication = sc.replication;
    cfg.chord.replication_mode = sc.mode;
    cfg.kts.fencing = sc.fencing;
    if sc.workload == "syncheavy" {
        // Aggressive anti-entropy: every open replica probes its master 5×
        // per second, so the run is dominated by LastTs traffic + lookups.
        cfg.sync_every = Some(Duration::from_millis(200));
    }

    let wall = Instant::now();
    let mut lan = NetConfig::lan();
    lan.bandwidth = sc.bandwidth;
    let mut net = settled_net_with(seed, lan, sc.peers, cfg, |net| net.enable_wire_accounting());
    let t0 = net.now();
    let peers = net.peers.clone();
    let docs: Vec<String> = (0..sc.docs).map(|d| format!("perf/doc-{d}")).collect();
    for d in &docs {
        net.open_doc(&peers[..sc.editors.max(2)], d, "seed");
    }
    net.settle(2);
    let horizon = net.now() + Duration::from_secs(sc.drive_secs);
    drive_editors(
        &mut net.sim,
        &peers[..sc.editors],
        &EditorSpec {
            docs: docs.clone(),
            zipf_skew: 0.8,
            mean_think: Duration::from_millis(400),
            mix: EditMix::default(),
            horizon,
        },
        seed ^ 0xED17,
    );
    net.settle(sc.drive_secs + 5);
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    net.run_until_quiet(&doc_refs, 60);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    let m = net.sim.metrics();
    let stamp = m.summary("ltr.publish_latency_ms");
    let mut wire_classes: Vec<(String, u64)> = m
        .counters()
        .filter_map(|(k, v)| {
            k.strip_prefix("wire.bytes.")
                .filter(|c| *c != "total")
                .map(|c| (c.to_string(), v))
        })
        .collect();
    wire_classes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let cont = check_continuity(&net.sim);
    let conv = check_convergence(&net.sim);
    Outcome {
        name: sc.name.to_string(),
        peers: sc.peers,
        replication: sc.replication,
        workload: sc.workload,
        mode: mode_str(sc.mode),
        sim_secs: net.now().since(t0).as_millis_f64() / 1e3,
        wall_ms,
        ops: m.counter("ltr.publish_ok"),
        msgs: m.counter("sim.msgs_sent"),
        events: net.sim.events_processed(),
        stamp_p50_ms: stamp.p50,
        stamp_p99_ms: stamp.p99,
        wire_bytes: m.counter("wire.bytes.total"),
        wire_classes,
        continuity: cont.is_clean(),
        converged: conv.is_converged(),
    }
}

fn per_sec(count: u64, wall_ms: f64) -> f64 {
    if wall_ms <= 0.0 {
        0.0
    } else {
        count as f64 / (wall_ms / 1e3)
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(quick: bool, outcomes: &[Outcome]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"p2p-ltr/bench-hotpath/v1\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"peers\": {}, \"replication\": {}, \
             \"workload\": \"{}\", \"mode\": \"{}\", \
             \"sim_secs\": {:.3}, \"wall_ms\": {:.1}, \
             \"ops\": {}, \"ops_per_sec\": {:.1}, \
             \"msgs\": {}, \"msgs_per_sec\": {:.1}, \
             \"events\": {}, \"events_per_sec\": {:.1}, \
             \"stamp_p50_ms\": {:.3}, \"stamp_p99_ms\": {:.3}, \
             \"wire_bytes\": {}, \"wire_bytes_per_class\": {{{}}}, \
             \"continuity\": {}, \"converged\": {}}}{}\n",
            json_escape(&o.name),
            o.peers,
            o.replication,
            o.workload,
            o.mode,
            o.sim_secs,
            o.wall_ms,
            o.ops,
            per_sec(o.ops, o.wall_ms),
            o.msgs,
            per_sec(o.msgs, o.wall_ms),
            o.events,
            per_sec(o.events, o.wall_ms),
            o.stamp_p50_ms,
            o.stamp_p99_ms,
            o.wire_bytes,
            o.wire_classes
                .iter()
                .map(|(c, b)| format!("\"{}\": {}", json_escape(c), b))
                .collect::<Vec<_>>()
                .join(", "),
            o.continuity,
            o.converged,
            comma,
        );
    }
    out.push_str("  ],\n");
    let wall: f64 = outcomes.iter().map(|o| o.wall_ms).sum();
    let events: u64 = outcomes.iter().map(|o| o.events).sum();
    let msgs: u64 = outcomes.iter().map(|o| o.msgs).sum();
    let ops: u64 = outcomes.iter().map(|o| o.ops).sum();
    let wire_bytes: u64 = outcomes.iter().map(|o| o.wire_bytes).sum();
    let _ = write!(
        out,
        "  \"totals\": {{\"wall_ms\": {:.1}, \"ops\": {}, \"ops_per_sec\": {:.1}, \
         \"msgs\": {}, \"msgs_per_sec\": {:.1}, \"events\": {}, \"events_per_sec\": {:.1}, \
         \"wire_bytes\": {}}}\n",
        wall,
        ops,
        per_sec(ops, wall),
        msgs,
        per_sec(msgs, wall),
        events,
        per_sec(events, wall),
        wire_bytes,
    );
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_hotpath.json")
        .to_string();

    let scenarios = scenario_matrix(quick);
    let mut outcomes = Vec::with_capacity(scenarios.len());
    for sc in &scenarios {
        let o = run_scenario(sc);
        println!(
            "{:<30} wall {:>8.1} ms | {:>7.0} events/s | {:>6.0} msgs/s | {:>5.0} ops/s | \
             stamp p50/p99 {:.1}/{:.1} ms | {:>6.2} MB wire | continuity={} converged={}",
            o.name,
            o.wall_ms,
            per_sec(o.events, o.wall_ms),
            per_sec(o.msgs, o.wall_ms),
            per_sec(o.ops, o.wall_ms),
            o.stamp_p50_ms,
            o.stamp_p99_ms,
            o.wire_bytes as f64 / 1e6,
            o.continuity,
            o.converged,
        );
        outcomes.push(o);
    }

    let json = render_json(quick, &outcomes);
    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("\nwrote {out_path}");
    if outcomes.iter().any(|o| !o.continuity || !o.converged) {
        eprintln!("WARNING: an invariant failed — perf numbers are not trustworthy");
        std::process::exit(1);
    }
}
