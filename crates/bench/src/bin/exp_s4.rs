//! **Experiment S4 — "New Master-key peer joining" scenario.**
//!
//! A new peer joins and becomes the Master-key for certain keys; the old
//! responsible "transfers its keys and timestamps to the new Master-key,
//! without violating eventual consistency". We craft a joiner whose ring id
//! splits the document's arc so it deterministically takes the key over.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_s4`

use ltr_bench::{ok, print_invariants, print_table, settled_net};
use p2p_ltr::{check_continuity, LtrConfig};
use simnet::NetConfig;

const DOC: &str = "wiki/Main";

fn main() {
    let mut net = settled_net(0x54, NetConfig::lan(), 10, LtrConfig::default());
    let peers = net.peers.clone();
    net.open_doc(&peers, DOC, "v0");
    net.settle(1);

    // Accumulate timestamps 1..=3 under the original master.
    for (i, p) in peers.iter().take(3).enumerate() {
        let cur = net.node(*p).doc_text(DOC).unwrap();
        net.edit(*p, DOC, &format!("{cur}\nedit-{i}"));
        net.run_until_quiet(&[DOC], 60);
        net.settle(3);
    }

    let old_master = net.master_of(DOC);
    let before = net.node(old_master).kts().mastered_count();
    println!(
        "before join: master of {DOC:?} is {} (ring {}), mastering {} key(s), last-ts {}",
        old_master.addr,
        old_master.id,
        before,
        check_continuity(&net.sim).last_ts(DOC)
    );

    // Find a name hashing between the doc key and the old master.
    let key = p2plog::ht(DOC);
    let joiner_name = (0..200_000)
        .map(|i| format!("joiner-{i}"))
        .find(|name| {
            let id = chord::Id::hash(name.as_bytes());
            id.in_half_open(key, old_master.id) && id != old_master.id
        })
        .expect("splitting id exists");
    let t_join = net.now();
    let joiner = net.add_peer(&joiner_name);
    net.settle(20);

    let new_master = net.master_of(DOC);
    let handoffs = net.sim.metrics().counter("kts.entries_handed_off");
    let received = net.sim.metrics().counter("kts.entries_handoff_received");

    // Continue editing: continuity must continue at 4 under the new master.
    let editor = peers[5];
    let cur = net.node(editor).doc_text(DOC).unwrap();
    net.edit(editor, DOC, &format!("{cur}\nafter-join"));
    net.run_until_quiet(&[DOC], 60);
    net.settle(10);

    let cont = check_continuity(&net.sim);
    let conv = p2p_ltr::check_convergence(&net.sim);
    let joiner_grants = net.node(joiner).grants().len();

    print_table(
        "S4: New Master-key joining — key + timestamp takeover",
        &[
            "step",
            "master addr",
            "master ring id",
            "doc last-ts",
            "notes",
        ],
        &[
            vec![
                "before join".into(),
                format!("{}", old_master.addr),
                format!("{}", old_master.id),
                "3".into(),
                "original responsible".into(),
            ],
            vec![
                "after join".into(),
                format!("{}", new_master.addr),
                format!("{}", new_master.id),
                cont.last_ts(DOC).to_string(),
                format!(
                    "joiner {} ({}); ts entries handed off={handoffs}, received={received}",
                    joiner.addr, joiner.id
                ),
            ],
        ],
    );
    println!(
        "\njoiner became master: {} (granted {} timestamp(s) itself)",
        ok(new_master.id == joiner.id),
        joiner_grants
    );
    println!(
        "continuity across handoff: {} | convergence: {} | join at {}",
        ok(cont.is_clean()),
        ok(conv.is_converged()),
        t_join
    );
    print_invariants(&net);
}
