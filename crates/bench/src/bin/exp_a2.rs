//! **Experiment A2 (ablation) — publish acknowledgement policy.**
//!
//! The paper waits for all `n` Log-Peers before acknowledging a grant.
//! A quorum `w < n` trades durability for latency. This ablation measures
//! publish latency per policy and then tests durability: after targeted
//! crashes, can a fresh reader still retrieve the full history?
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_a2`

use ltr_bench::{fmt_latency, ok, print_table, settled_net};
use p2p_ltr::LtrConfig;
use p2plog::AckPolicy;
use simnet::{NetConfig, Rng64};

const DOC: &str = "wiki/Main";
const PATCHES: usize = 15;

fn run(policy: AckPolicy, name: &str, seed: u64) -> Vec<String> {
    let mut cfg = LtrConfig::default();
    cfg.log.replication = 3;
    cfg.log.ack_policy = policy;
    // Isolate the Hr mechanism: no DHT successor replicas.
    cfg.chord.storage_replicas = 0;
    let mut net = settled_net(seed, NetConfig::lan(), 16, cfg);
    let peers = net.peers.clone();
    let editor = peers[0];
    let reader = peers[1];
    net.open_doc(&[editor], DOC, "seed");
    net.settle(1);
    for i in 0..PATCHES {
        let cur = net.node(editor).doc_text(DOC).unwrap();
        net.edit(editor, DOC, &format!("{cur}\npatch-{i}"));
        net.run_until_quiet(&[DOC], 60);
    }
    let lat = net.sim.metrics().summary("ltr.publish_latency_ms");

    // Crash 25% of peers (not editor/reader) and attempt full retrieval.
    let mut rng = Rng64::new(seed ^ 0xBEEF);
    let mut candidates: Vec<_> = net
        .alive_peers()
        .into_iter()
        .filter(|p| p.addr != editor.addr && p.addr != reader.addr)
        .collect();
    rng.shuffle(&mut candidates);
    for p in candidates.into_iter().take(4) {
        net.crash(p);
    }
    net.settle(15);
    net.open_doc(&[reader], DOC, "seed");
    net.settle(30);
    net.run_until_quiet(&[DOC], 120);
    net.settle(10);
    let got = net.node(reader).doc_ts(DOC).unwrap_or(0);

    vec![
        name.to_string(),
        net.sim.metrics().counter("kts.grants").to_string(),
        fmt_latency(&lat),
        format!("{got}/{PATCHES}"),
        ok(got == PATCHES as u64),
    ]
}

fn main() {
    let rows = vec![
        run(AckPolicy::All, "all (paper)", 0xA201),
        run(AckPolicy::Quorum(2), "quorum w=2", 0xA202),
        run(AckPolicy::Quorum(1), "quorum w=1", 0xA203),
    ];
    print_table(
        &format!(
            "A2: publish ack policy (n=3, no successor replicas, {PATCHES} patches, \
             then crash 4/16 peers)"
        ),
        &[
            "policy",
            "grants",
            "publish ms (mean/p95/p99)",
            "history retrieved",
            "full",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: smaller quorums ack faster (don't wait for the \
         slowest Log-Peer) but leave fewer guaranteed copies; with w=1 a few \
         crashes can make parts of the history briefly or permanently \
         unavailable. The paper's all-ack is the durable end of the trade-off."
    );
}
