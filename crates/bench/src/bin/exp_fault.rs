//! **Fault matrix — the adversarial envelope, invariant-gated.**
//!
//! Runs every named fault scenario (`workload::scenario::named_scenarios`:
//! partitions racing a master handoff, crash-with-disk storms, churn
//! under load, duplicate-heavy and lossy links, asymmetric partitions,
//! laggy masters) deterministically under fixed seeds, and requires all
//! five correctness oracles (timestamp continuity, per-replica total
//! order, replica convergence, equivocation freedom, epoch
//! monotonicity) to pass in **every** scenario — the
//! paper's guarantees only matter under faults, so this is the harness
//! CI gates on (`fault-matrix` job).
//!
//! Output: a per-scenario pass/fail + perf table on stdout, a `faults`
//! section merged into `BENCH_hotpath.json` (deterministic fields are
//! baseline-compared by CI), and — when `$GITHUB_STEP_SUMMARY` is set —
//! a markdown table with per-scenario names for the CI step summary.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_fault`
//! Flags: `--quick` (smaller rings/windows, CI mode), `--out PATH`
//! (default `BENCH_hotpath.json`).

use std::fmt::Write as _;
use std::path::PathBuf;

use ltr_bench::{merge_bench_section, ok, print_table};
use workload::scenario::{named_scenarios, run_scenario, ScenarioOutcome};

/// Fixed per-scenario seed: stable across runs and machines so the
/// deterministic fields in the JSON are baseline-comparable. Kept
/// aligned with `tests/tests/fault_matrix.rs` (`SEED_BASE`), which
/// documents why the base sits at `0xFA_0200`.
fn seed_for(index: usize) -> u64 {
    0xFA_0200 + index as u64
}

fn render_faults_json(quick: bool, outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::new();
    out.push_str("  \"faults\": {\n");
    let _ = writeln!(out, "    \"quick\": {quick},");
    out.push_str("    \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"name\": \"{}\", \"peers\": {}, \"sim_secs\": {:.3}, \
             \"wall_ms\": {:.1}, \"edits\": {}, \"grants\": {}, \"msgs\": {}, \
             \"events\": {}, \"crashes\": {}, \"restarts\": {}, \
             \"faults_dropped\": {}, \"faults_duplicated\": {}, \
             \"faults_reordered\": {}, \"faults_cut\": {}, \
             \"continuity\": {}, \"total_order\": {}, \"converged\": {}, \
             \"equivocation_free\": {}, \"epoch_monotonic\": {}, \
             \"pass\": {}}}{}",
            o.name,
            o.peers,
            o.sim_secs,
            o.wall_ms,
            o.edits,
            o.grants,
            o.msgs,
            o.events,
            o.crashes,
            o.restarts,
            o.faults_dropped,
            o.faults_duplicated,
            o.faults_reordered,
            o.faults_cut,
            o.continuity,
            o.total_order,
            o.converged,
            o.equivocation_free,
            o.epoch_monotonic,
            o.ok(),
            comma,
        );
    }
    out.push_str("    ],\n");
    let _ = writeln!(out, "    \"all_pass\": {}", outcomes.iter().all(|o| o.ok()));
    out.push_str("  }\n");
    out
}

/// Append a markdown per-scenario table to `$GITHUB_STEP_SUMMARY` when
/// running under GitHub Actions (the `fault-matrix` job's summary).
fn write_step_summary(outcomes: &[ScenarioOutcome]) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut md = String::from(
        "## Fault scenario matrix\n\n\
         | scenario | result | grants | crashes | restarts | dropped | dup | cut |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for o in outcomes {
        let _ = writeln!(
            md,
            "| `{}` | {} | {} | {} | {} | {} | {} | {} |",
            o.name,
            if o.ok() { "✅ pass" } else { "❌ FAIL" },
            o.grants,
            o.crashes,
            o.restarts,
            o.faults_dropped,
            o.faults_duplicated,
            o.faults_cut,
        );
    }
    for o in outcomes.iter().filter(|o| !o.ok()) {
        let _ = writeln!(md, "\n`{}` invariants: {}", o.name, o.detail);
    }
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&path) {
        let _ = f.write_all(md.as_bytes());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = PathBuf::from(
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("BENCH_hotpath.json"),
    );

    let scenarios = named_scenarios(quick);
    let mut outcomes = Vec::with_capacity(scenarios.len());
    for (i, sc) in scenarios.iter().enumerate() {
        let o = run_scenario(sc, seed_for(i));
        println!(
            "{:<28} {} | wall {:>7.1} ms | {:>5} grants | {:>3} crashes | {:>3} restarts | \
             {:>6} dropped | {:>6} dup | {:>6} cut | {}",
            o.name,
            if o.ok() { "PASS" } else { "FAIL" },
            o.wall_ms,
            o.grants,
            o.crashes,
            o.restarts,
            o.faults_dropped,
            o.faults_duplicated,
            o.faults_cut,
            o.detail,
        );
        outcomes.push(o);
    }

    print_table(
        "fault matrix: invariants under the adversarial envelope",
        &[
            "scenario", "pass", "grants", "edits", "crashes", "restarts", "dropped", "dup",
            "reord", "cut", "cont", "order", "conv", "equiv", "epoch",
        ],
        &outcomes
            .iter()
            .map(|o| {
                vec![
                    o.name.clone(),
                    ok(o.ok()),
                    o.grants.to_string(),
                    o.edits.to_string(),
                    o.crashes.to_string(),
                    o.restarts.to_string(),
                    o.faults_dropped.to_string(),
                    o.faults_duplicated.to_string(),
                    o.faults_reordered.to_string(),
                    o.faults_cut.to_string(),
                    ok(o.continuity),
                    ok(o.total_order),
                    ok(o.converged),
                    ok(o.equivocation_free),
                    ok(o.epoch_monotonic),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let faults = render_faults_json(quick, &outcomes);
    merge_bench_section(&out_path, "faults", &faults);
    println!("\nmerged fault-matrix metrics into {}", out_path.display());
    write_step_summary(&outcomes);

    if outcomes.iter().any(|o| !o.ok()) {
        eprintln!("FAILURE: an invariant was violated under fault injection");
        std::process::exit(1);
    }
}
