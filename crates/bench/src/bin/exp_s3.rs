//! **Experiment S3 — "Master-key peer departures" scenario.**
//!
//! The paper demonstrates (a) a Master-key peer leaving normally — its keys
//! and timestamps transfer to the Master-Succ — and (b) a Master-key crash —
//! the successor takes over, "assuring continuous timestamps for the key".
//! This experiment scripts both, measures the takeover, and checks the
//! continuity invariant held throughout.
//!
//! Run: `cargo run -p ltr_bench --release --bin exp_s3`

use ltr_bench::{fmt_latency, ok, print_table, settled_net};
use p2p_ltr::{check_continuity, check_convergence, LtrConfig};
use simnet::{Duration, NetConfig, Time};
use workload::{drive_editors, EditMix, EditorSpec};

const DOC: &str = "wiki/Main";

struct Outcome {
    mode: &'static str,
    ts_before: u64,
    ts_after: u64,
    takeover_ms: f64,
    continuity: bool,
    converged: bool,
    promoted: u64,
    handed_off: u64,
    latency: String,
}

fn run(mode: &'static str, seed: u64) -> Outcome {
    let mut net = settled_net(seed, NetConfig::lan(), 12, LtrConfig::default());
    let peers = net.peers.clone();
    net.open_doc(&peers, DOC, "start");
    net.settle(1);

    // Editors: two peers that are not the master (so they survive).
    let master0 = net.master_of(DOC);
    let editors: Vec<_> = peers
        .iter()
        .copied()
        .filter(|p| p.addr != master0.addr)
        .take(2)
        .collect();
    let horizon = net.now() + Duration::from_secs(40);
    drive_editors(
        &mut net.sim,
        &editors,
        &EditorSpec {
            docs: vec![DOC.into()],
            zipf_skew: 0.0,
            mean_think: Duration::from_millis(700),
            mix: EditMix::default(),
            horizon,
        },
        seed ^ 0xAB,
    );

    // Let some timestamps accumulate, then remove the master at t_kill.
    net.settle(10);
    let ts_before = check_continuity(&net.sim).last_ts(DOC);
    let master = net.master_of(DOC);
    let t_kill = net.now();
    match mode {
        "graceful leave" => net.leave(master),
        _ => net.crash(master),
    }

    // Editing continues through the takeover; find the first grant after.
    net.settle(30);
    net.run_until_quiet(&[DOC], 120);
    net.settle(10);

    // First grant time after t_kill, across all nodes.
    let mut first_grant_after: Option<Time> = None;
    for p in net.alive_peers() {
        for ev in &net.node(p).events {
            if let p2p_ltr::LtrEventKind::MasterGranted { doc, .. } = &ev.kind {
                if doc == DOC && ev.at > t_kill {
                    first_grant_after = Some(match first_grant_after {
                        Some(t) if t < ev.at => t,
                        _ => ev.at,
                    });
                }
            }
        }
    }
    let takeover_ms = first_grant_after
        .map(|t| t.since(t_kill).as_millis_f64())
        .unwrap_or(f64::NAN);

    let cont = check_continuity(&net.sim);
    let conv = check_convergence(&net.sim);
    Outcome {
        mode,
        ts_before,
        ts_after: cont.last_ts(DOC),
        takeover_ms,
        continuity: cont.is_clean(),
        converged: conv.is_converged(),
        promoted: net.sim.metrics().counter("kts.backups_promoted"),
        handed_off: net.sim.metrics().counter("kts.entries_handed_off"),
        latency: fmt_latency(&net.sim.metrics().summary("ltr.publish_latency_ms")),
    }
}

fn main() {
    let outcomes = [run("graceful leave", 0x53A), run("crash", 0x53B)];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.mode.to_string(),
                o.ts_before.to_string(),
                o.ts_after.to_string(),
                format!("{:.0}", o.takeover_ms),
                ok(o.continuity),
                ok(o.converged),
                o.handed_off.to_string(),
                o.promoted.to_string(),
                o.latency.clone(),
            ]
        })
        .collect();
    print_table(
        "S3: Master-key departures — takeover correctness and cost",
        &[
            "mode",
            "last-ts@kill",
            "last-ts@end",
            "1st grant after (ms)",
            "continuity",
            "converged",
            "ts handed off",
            "backups promoted",
            "publish ms (mean/p95/p99)",
        ],
        &rows,
    );
    println!(
        "\nInterpretation: graceful leave hands the table to the successor \
         (handed off > 0, fast takeover); a crash relies on the Master-Succ \
         backup + failure detection (promotions > 0, takeover bounded by the \
         detection timeout). Continuity must hold in both."
    );
}
