//! Criterion end-to-end benchmarks: wall-clock cost of simulating whole
//! P2P-LTR workflows (ring construction, publish cycles, retrieval). These
//! measure the *implementation's* processing cost; the protocol-level
//! response times (simulated milliseconds) are reported by the `exp_*`
//! binaries.

use criterion::{criterion_group, criterion_main, Criterion};

use p2p_ltr::harness::LtrNet;
use p2p_ltr::LtrConfig;
use simnet::{Duration, NetConfig};

fn settled(seed: u64, n: usize) -> LtrNet {
    let mut net = LtrNet::build(
        seed,
        NetConfig::lan(),
        n,
        LtrConfig::default(),
        Duration::from_millis(100),
    );
    net.settle(20);
    net
}

fn bench_ring_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("build_and_stabilize_16_peers", |b| {
        b.iter(|| settled(1, 16));
    });
    g.finish();
}

fn bench_publish_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("publish_cycle_8_peers", |b| {
        b.iter_with_setup(
            || {
                let mut net = settled(2, 8);
                let peers = net.peers.clone();
                net.open_doc(&peers, "doc", "seed");
                net.settle(1);
                net
            },
            |mut net| {
                let editor = net.peers[0];
                net.edit(editor, "doc", "seed\nedited");
                net.run_until_quiet(&["doc"], 30);
                net
            },
        );
    });
    g.finish();
}

fn bench_retrieval_catchup(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("late_reader_catchup_20_patches", |b| {
        b.iter_with_setup(
            || {
                let mut net = settled(3, 10);
                let editor = net.peers[0];
                net.open_doc(&[editor], "doc", "seed");
                net.settle(1);
                for i in 0..20 {
                    let cur = net.node(editor).doc_text("doc").unwrap();
                    net.edit(editor, "doc", &format!("{cur}\np{i}"));
                    net.run_until_quiet(&["doc"], 30);
                }
                net
            },
            |mut net| {
                let reader = net.peers[1];
                net.open_doc(&[reader], "doc", "seed");
                net.settle(10);
                assert_eq!(net.node(reader).doc_ts("doc"), Some(20));
                net
            },
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ring_construction,
    bench_publish_cycle,
    bench_retrieval_catchup
);
criterion_main!(benches);
