//! Criterion micro-benchmarks of the computational substrates: hashing,
//! ring arithmetic, OT transformation, diffing, codecs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use bytes::Bytes;
use chord::sha1::{sha1, sha1_u64};
use chord::Id;
use ot::{decode_patch, diff, encode_patch, transform_seqs, Document, Patch, TextOp};
use p2plog::{LogRecord, Retriever};

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| sha1(black_box(&data)))
        });
    }
    g.bench_function("id_hash_docname", |b| {
        b.iter(|| sha1_u64(black_box(b"wiki/Main/Some/Long/Page/Name")))
    });
    g.finish();
}

fn bench_id_math(c: &mut Criterion) {
    let a = Id(0x1234_5678_9abc_def0);
    let lo = Id(0x1111_1111_1111_1111);
    let hi = Id(0xeeee_eeee_eeee_eeee);
    c.bench_function("id_in_half_open", |b| {
        b.iter(|| black_box(a).in_half_open(black_box(lo), black_box(hi)))
    });
    c.bench_function("log_locations_n3", |b| {
        b.iter(|| p2plog::log_locations(3, black_box("wiki/Main"), black_box(42)))
    });
    // The cached path: per-document midstates amortize the doc-name hashing
    // across timestamps (retrieval windows, publish fan-outs).
    let dh = p2plog::DocHashes::new("wiki/Main", 3);
    c.bench_function("dochashes_locations_n3", |b| {
        b.iter(|| {
            dh.locations(black_box(42))
                .fold(0u64, |acc, id| acc ^ id.raw())
        })
    });
}

fn make_doc(lines: usize) -> Document {
    Document::from_lines((0..lines).map(|i| format!("line number {i}")).collect())
}

fn bench_ot(c: &mut Criterion) {
    let mut g = c.benchmark_group("ot");
    // Transform two 20-op concurrent patches.
    let base = make_doc(100);
    let mk_ops = |site: u64| -> Vec<TextOp> {
        let mut d = base.clone();
        let mut ops = Vec::new();
        for i in 0..20 {
            let op = TextOp::ins((i * 3) % (d.len() + 1), format!("s{site}-{i}"), site);
            d.apply(&op).unwrap();
            ops.push(op);
        }
        ops
    };
    let a = mk_ops(1);
    let b2 = mk_ops(2);
    g.bench_function("transform_seqs_20x20", |bch| {
        bch.iter(|| transform_seqs(black_box(&a), black_box(&b2)))
    });

    // Diff with a localized edit in a 1000-line document.
    let old = make_doc(1000);
    let mut new_lines = old.lines().to_vec();
    new_lines[500] = "edited line".to_string();
    new_lines.insert(501, "inserted line".to_string());
    let new = Document::from_lines(new_lines);
    g.bench_function("diff_1000_lines_local_edit", |bch| {
        bch.iter(|| diff(black_box(&old), black_box(&new), 1))
    });

    // Apply a 50-op patch.
    let ops: Vec<TextOp> = (0..50)
        .map(|i| TextOp::ins(i, format!("l{i}"), 1))
        .collect();
    g.bench_function("apply_50_ops", |bch| {
        bch.iter_batched(
            Document::new,
            |mut d| {
                d.apply_all(black_box(&ops)).unwrap();
                d
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let patch = Patch::new(
        7,
        (0..30)
            .map(|i| TextOp::ins(i, format!("content line {i}"), 7))
            .collect(),
    );
    let encoded = encode_patch(&patch);
    c.bench_function("encode_patch_30_ops", |b| {
        b.iter(|| encode_patch(black_box(&patch)))
    });
    c.bench_function("decode_patch_30_ops", |b| {
        b.iter(|| decode_patch(black_box(&encoded)).unwrap())
    });

    let rec = LogRecord::new("wiki/Main", 42, 7, Bytes::from(encoded.clone()));
    let rec_bytes = rec.encode();
    c.bench_function("log_record_encode", |b| b.iter(|| rec.encode()));
    c.bench_function("log_record_decode_verify", |b| {
        b.iter(|| LogRecord::decode(black_box(&rec_bytes)).unwrap())
    });
}

fn bench_master_stamping(c: &mut Criterion) {
    // The master's grant hot path: validate → fence the next slot →
    // stamp → derive the n log locations (the puts the embedding layer
    // would issue) → publish ack. Fencing is the default mode and each
    // slot's fence is consumed by its publish, so every stamp pays one
    // fence round. 100 sequential stamps on one key, replication n=3.
    use kts::{FenceOutcome, KtsConfig, KtsMaster, MasterAction, PublishOutcome, ReqId};
    use simnet::NodeId;
    let cfg = KtsConfig {
        probe_unknown_keys: false,
        probe_on_promote: false,
        ..KtsConfig::default()
    };
    let user = chord::NodeRef::new(NodeId(1), Id(1000));
    let patch = Bytes::from_static(b"a smallish encoded patch body");
    let doc = p2plog::DocName::new("wiki/Main");
    let publish_req = |acts: &[MasterAction]| {
        acts.iter().find_map(|a| match a {
            MasterAction::BeginPublish { token, ts, .. } => Some((*token, *ts)),
            _ => None,
        })
    };
    c.bench_function("master_stamp_loop_100_n3", |b| {
        b.iter_batched(
            || KtsMaster::new(cfg.clone()),
            |mut m| {
                let key = Id(0x42);
                for i in 0..100u64 {
                    let mut acts = m.on_validate(key, &doc, ReqId(i), i, patch.clone(), user, true);
                    if let Some(ft) = acts.iter().find_map(|a| match a {
                        MasterAction::BeginFence { token, .. } => Some(*token),
                        _ => None,
                    }) {
                        acts = m.fence_done(ft, FenceOutcome::Acked { occupied: false });
                    }
                    let (token, ts) = publish_req(&acts).expect("fenced grant must publish");
                    for loc in p2plog::log_locations_iter(3, "wiki/Main", ts) {
                        black_box(loc);
                    }
                    m.publish_done(token, PublishOutcome::Ok);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sim_event_loop(c: &mut Criterion) {
    // Raw event-loop throughput: two echo processes ping-ponging with
    // constant latency — every iteration is send+deliver bookkeeping only.
    use simnet::{Ctx, Duration, LatencyModel, NetConfig, NodeId, Process, Sim, Time};
    #[derive(Debug)]
    struct Ball(u64);
    struct Paddle;
    impl Process<Ball> for Paddle {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Ball>, from: NodeId, msg: Ball) {
            ctx.send(from, Ball(msg.0 + 1));
        }
    }
    c.bench_function("sim_event_loop_20k_events", |b| {
        b.iter_batched(
            || {
                let mut net = NetConfig::lan();
                net.latency = LatencyModel::Constant(Duration::from_micros(100));
                let mut sim = Sim::new(7, net);
                let a = sim.add_node(Paddle);
                let bb = sim.add_node(Paddle);
                // Four concurrent rallies.
                for _ in 0..4 {
                    sim.send_external(a, Ball(0));
                    sim.send_external(bb, Ball(0));
                }
                sim
            },
            |mut sim| {
                // 8 balls × one hop per 100 µs × 250 ms ≈ 20k deliveries.
                sim.run_until(Time::from_millis(250));
                sim
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_retriever(c: &mut Criterion) {
    // Pure state-machine cost of a 100-ts retrieval (no network).
    let payload = Bytes::from_static(b"some record bytes");
    c.bench_function("retriever_100_ts_in_order", |b| {
        b.iter_batched(
            || Retriever::new("doc", 0, 100, 3, 8),
            |mut r| {
                let mut pending: Vec<p2plog::FetchCmd> = r.start();
                while let Some(cmd) = pending.pop() {
                    let (more, _ev) =
                        r.on_fetch_result(cmd.ts, cmd.hash_idx, Some(payload.clone()));
                    pending.extend(more);
                }
                r
            },
            BatchSize::SmallInput,
        )
    });

    // Window-throughput variant: a wide pipeline over a long range, with
    // every third fetch missing replica h1 (forcing fallback derivation).
    let mut g = c.benchmark_group("retriever");
    g.throughput(Throughput::Elements(512));
    g.bench_function("window32_512_ts", |b| {
        b.iter_batched(
            || Retriever::new("wiki/Main", 0, 512, 3, 32),
            |mut r| {
                let mut pending: Vec<p2plog::FetchCmd> = r.start();
                while let Some(cmd) = pending.pop() {
                    let miss = cmd.ts % 3 == 0 && cmd.hash_idx == 1;
                    let found = if miss { None } else { Some(payload.clone()) };
                    let (more, _ev) = r.on_fetch_result(cmd.ts, cmd.hash_idx, found);
                    pending.extend(more);
                }
                r
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha1,
    bench_id_math,
    bench_ot,
    bench_codecs,
    bench_master_stamping,
    bench_sim_event_loop,
    bench_retriever
);
criterion_main!(benches);
