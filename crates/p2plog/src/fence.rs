//! Fence-side bookkeeping: raise a grant fence at the `n` Log-Peers of
//! the next timestamp slot and decide the outcome from the per-replica
//! acknowledgements.

/// Final verdict of one fence fan-out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FenceVerdict {
    /// A quorum of log locations holds the fence: no record ranked
    /// below this master's epoch can land at the fenced slot anymore.
    Acked {
        /// True when any acked location already held a primary record at
        /// the fenced key — the slot was published before the fence went
        /// up, and the master must re-probe before serving.
        occupied: bool,
    },
    /// Some location already holds a *higher* fence (or an equal fence
    /// from a rival): a newer master epoch is active.
    Superseded {
        /// The winning floor observed.
        current: u64,
    },
    /// A quorum could not be reached.
    Unreachable,
}

/// Per-location response fed into the tracker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FenceResponse {
    /// The floor is in force at this location.
    Acked {
        /// A primary record already occupies the fenced key there.
        occupied: bool,
    },
    /// Rejected: a rival's floor is in force.
    Superseded {
        /// The rival's floor.
        current: u64,
    },
    /// Timed out / unreachable.
    Failed,
}

/// Tracks one in-flight fence across its `n` location ops. Quorum is a
/// strict majority of the replication set, so any two fencing masters
/// must overlap in at least one location — where the strict floor
/// arbitration ([`chord::Storage::raise_fence`]) rejects one of them.
#[derive(Clone, Debug)]
pub struct FenceTracker {
    total: usize,
    required: usize,
    acks: usize,
    failures: usize,
    occupied: bool,
    verdict: Option<FenceVerdict>,
}

impl FenceTracker {
    /// Start tracking a fan-out of `n` fence ops (quorum = ⌊n/2⌋+1).
    pub fn new(n: usize) -> Self {
        FenceTracker {
            total: n,
            required: n / 2 + 1,
            acks: 0,
            failures: 0,
            occupied: false,
            verdict: None,
        }
    }

    /// Feed one location's response; returns the verdict when it becomes
    /// decidable (exactly once).
    pub fn on_response(&mut self, resp: FenceResponse) -> Option<FenceVerdict> {
        if self.verdict.is_some() {
            return None; // already decided; late responses ignored
        }
        match resp {
            FenceResponse::Acked { occupied } => {
                self.acks += 1;
                self.occupied |= occupied;
            }
            FenceResponse::Superseded { current } => {
                // Decisive: a higher epoch holds the fence somewhere.
                self.verdict = Some(FenceVerdict::Superseded { current });
                return self.verdict;
            }
            FenceResponse::Failed => self.failures += 1,
        }
        let outstanding = self.total - self.acks - self.failures;
        let verdict = if self.acks >= self.required {
            Some(FenceVerdict::Acked {
                occupied: self.occupied,
            })
        } else if self.acks + outstanding < self.required {
            Some(FenceVerdict::Unreachable)
        } else {
            None
        };
        if verdict.is_some() {
            self.verdict = verdict;
        }
        verdict
    }

    /// The verdict, if already decided.
    pub fn verdict(&self) -> Option<FenceVerdict> {
        self.verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_ack_decides() {
        let mut t = FenceTracker::new(3);
        assert_eq!(
            t.on_response(FenceResponse::Acked { occupied: false }),
            None
        );
        assert_eq!(
            t.on_response(FenceResponse::Acked { occupied: false }),
            Some(FenceVerdict::Acked { occupied: false })
        );
        // Late responses are swallowed.
        assert_eq!(t.on_response(FenceResponse::Failed), None);
    }

    #[test]
    fn occupied_anywhere_taints_the_ack() {
        let mut t = FenceTracker::new(3);
        t.on_response(FenceResponse::Acked { occupied: true });
        assert_eq!(
            t.on_response(FenceResponse::Acked { occupied: false }),
            Some(FenceVerdict::Acked { occupied: true })
        );
    }

    #[test]
    fn superseded_is_immediately_decisive() {
        let mut t = FenceTracker::new(5);
        t.on_response(FenceResponse::Acked { occupied: false });
        assert_eq!(
            t.on_response(FenceResponse::Superseded { current: 9 }),
            Some(FenceVerdict::Superseded { current: 9 })
        );
        assert_eq!(t.verdict(), Some(FenceVerdict::Superseded { current: 9 }));
    }

    #[test]
    fn unreachable_when_majority_impossible() {
        let mut t = FenceTracker::new(3);
        assert_eq!(t.on_response(FenceResponse::Failed), None);
        assert_eq!(
            t.on_response(FenceResponse::Failed),
            Some(FenceVerdict::Unreachable)
        );
    }

    #[test]
    fn single_location_set_needs_its_only_ack() {
        let mut t = FenceTracker::new(1);
        assert_eq!(
            t.on_response(FenceResponse::Acked { occupied: false }),
            Some(FenceVerdict::Acked { occupied: false })
        );
        let mut t = FenceTracker::new(1);
        assert_eq!(
            t.on_response(FenceResponse::Failed),
            Some(FenceVerdict::Unreachable)
        );
    }
}
