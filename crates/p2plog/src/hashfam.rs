//! The hash-function family of P2P-LTR placement (RR-6497 §2):
//!
//! * `ht` locates the **Master-key peer** of a document;
//! * `Hr = {h1 … hn}` — the pairwise-independent **replication hash
//!   functions** — locate the `n` Log-Peers of each `(document, ts)` record:
//!   `Put(h1(key+ts), patch) … Put(hn(key+ts), patch)`.
//!
//! All are salted SHA-1 truncations: distinct one-byte salts give
//! independent placements (domain separation). The hashed material is
//! `salt ':' doc` for `ht` and `salt ':' doc '#' ts` for `h_i` — the digest
//! layout is **pinned** (see `placement_digests_are_pinned`); changing it
//! moves every record in every deployed ring.
//!
//! Derivation is allocation-free: the timestamp suffix is formatted into a
//! stack buffer and streamed into an incremental hasher, and [`DocHashes`]
//! caches one SHA-1 midstate per `(salt, doc)` so repeated derivations for
//! the same document (a publish fan-out, a retrieval window, a probe) only
//! hash the `#ts` tail.

use chord::sha1::Sha1;
use chord::Id;

use chord::DocName;

/// Salt reserved for the timestamp hash `ht`.
const HT_SALT: u8 = 0;

/// Largest permitted replication index (fits the one-byte salt space,
/// leaving salt 0 for `ht`).
const MAX_HR: usize = 250;

/// Format `#ts` (decimal) into `buf`, returning the used prefix.
/// Matches the old `format!("{doc}#{ts}")` byte-for-byte.
#[inline]
fn ts_suffix(buf: &mut [u8; 21], ts: u64) -> &[u8] {
    buf[0] = b'#';
    let mut digits = [0u8; 20];
    let mut n = 0;
    let mut v = ts;
    loop {
        digits[n] = b'0' + (v % 10) as u8;
        v /= 10;
        n += 1;
        if v == 0 {
            break;
        }
    }
    for i in 0..n {
        buf[1 + i] = digits[n - 1 - i];
    }
    &buf[..1 + n]
}

/// Finish a midstate that has absorbed `salt ':' doc` with the `#ts` tail.
#[inline]
fn finish_with_ts(mut state: Sha1, ts: u64) -> Id {
    let mut buf = [0u8; 21];
    state.update(ts_suffix(&mut buf, ts));
    Id(state.finalize_u64())
}

/// The master-key location of a document: `ht(name)`.
pub fn ht(doc: &str) -> Id {
    Id::hash_salted(HT_SALT, doc.as_bytes())
}

/// The `i`-th replication hash (1-based, `1 ..= n`): `h_i(name # ts)`.
pub fn hr(i: usize, doc: &str, ts: u64) -> Id {
    debug_assert!((1..=MAX_HR).contains(&i), "replication index out of range");
    let mut state = Id::salted_hasher(i as u8);
    state.update(doc.as_bytes());
    finish_with_ts(state, ts)
}

/// All `n` log locations for `(doc, ts)`, in retrieval preference order.
pub fn log_locations(n: usize, doc: &str, ts: u64) -> Vec<Id> {
    log_locations_iter(n, doc, ts).collect()
}

/// Iterator form of [`log_locations`]: stamps `n` replicas without
/// materializing a `Vec` per patch (the master's publish fan-out path).
pub fn log_locations_iter(n: usize, doc: &str, ts: u64) -> impl Iterator<Item = Id> + '_ {
    (1..=n).map(move |i| hr(i, doc, ts))
}

/// Cached SHA-1 midstates for one document: `ht` fully evaluated, and one
/// partial state per replication hash with `salt ':' doc` already absorbed.
/// Deriving `h_i(doc#ts)` is then a ~100-byte state clone plus the `#ts`
/// tail — the document name is never re-hashed.
#[derive(Clone, Debug)]
pub struct DocHashes {
    doc: DocName,
    ht: Id,
    /// `mids[i-1]` is the midstate for replication hash `h_i`.
    mids: Vec<Sha1>,
}

impl DocHashes {
    /// Precompute midstates for `doc` with replication degree `n`.
    pub fn new(doc: impl Into<DocName>, n: usize) -> Self {
        let doc = doc.into();
        assert!((1..=MAX_HR).contains(&n), "replication degree out of range");
        let mids = (1..=n)
            .map(|i| {
                let mut s = Id::salted_hasher(i as u8);
                s.update(doc.as_bytes());
                s
            })
            .collect();
        DocHashes {
            ht: ht(&doc),
            doc,
            mids,
        }
    }

    /// The document this cache belongs to.
    pub fn doc(&self) -> &DocName {
        &self.doc
    }

    /// Replication degree the cache was built for.
    pub fn n(&self) -> usize {
        self.mids.len()
    }

    /// `ht(doc)` (cached).
    pub fn ht(&self) -> Id {
        self.ht
    }

    /// `h_i(doc#ts)` from the cached midstate; `i` is 1-based and must be
    /// `<= n`.
    pub fn hr(&self, i: usize, ts: u64) -> Id {
        finish_with_ts(self.mids[i - 1].clone(), ts)
    }

    /// All `n` log locations for `ts`, in retrieval preference order.
    pub fn locations(&self, ts: u64) -> impl Iterator<Item = Id> + '_ {
        self.mids
            .iter()
            .map(move |mid| finish_with_ts(mid.clone(), ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ht_is_deterministic_and_distinct_per_doc() {
        assert_eq!(ht("a"), ht("a"));
        assert_ne!(ht("a"), ht("b"));
    }

    #[test]
    fn replication_hashes_are_pairwise_distinct() {
        let locs = log_locations(8, "doc", 3);
        let set: HashSet<_> = locs.iter().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn hashes_differ_from_ht() {
        // The log locations must not collide with the master location.
        let master = ht("doc");
        for id in log_locations(8, "doc", 1) {
            assert_ne!(id, master);
        }
    }

    #[test]
    fn each_ts_gets_fresh_locations() {
        let a = log_locations(3, "doc", 1);
        let b = log_locations(3, "doc", 2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_ne!(x, y);
        }
    }

    #[test]
    fn doc_ts_separator_prevents_aliasing() {
        // ("doc#1", ts=2) must not alias ("doc#12", ts=...) etc.
        assert_ne!(hr(1, "doc#1", 2), hr(1, "doc", 12));
        assert_ne!(hr(1, "doc1", 2), hr(1, "doc", 12));
    }

    /// Placement digests pinned to their values as of the first release
    /// (independently recomputed with Python's hashlib over the same
    /// `salt ':' doc ['#' ts]` construction). Any change to `hr`/`ht` —
    /// including midstate caching or encoding tweaks — moves every record
    /// in every deployed ring, so these must never change.
    #[test]
    fn placement_digests_are_pinned() {
        assert_eq!(ht("wiki/Main"), Id(0x56e34f51d6fa31be));
        assert_eq!(ht("doc"), Id(0x64bb0a26fbb26e49));
        assert_eq!(hr(1, "wiki/Main", 42), Id(0xdd388e923a0c98a3));
        assert_eq!(hr(2, "wiki/Main", 42), Id(0x05a2f359989d0a91));
        assert_eq!(hr(3, "wiki/Main", 42), Id(0xe0f544466c49d146));
        assert_eq!(hr(1, "doc", 1), Id(0x598a70a808d47d54));
        assert_eq!(hr(7, "doc", 184467), Id(0x48791d7a9a7d0a33));
        assert_eq!(hr(1, "doc", 0), Id(0x07014d8b60960331));
        assert_eq!(hr(250, "d", u64::MAX), Id(0x6f539dca31d90c1c));
    }

    #[test]
    fn ts_suffix_matches_format_macro() {
        for ts in [0u64, 1, 9, 10, 42, 184467, u64::MAX - 1, u64::MAX] {
            let mut buf = [0u8; 21];
            assert_eq!(ts_suffix(&mut buf, ts), format!("#{ts}").as_bytes());
        }
    }

    #[test]
    fn midstate_cache_matches_direct_derivation() {
        let h = DocHashes::new("wiki/Some/Long/Page", 5);
        assert_eq!(h.ht(), ht("wiki/Some/Long/Page"));
        for ts in [0u64, 1, 42, 1_000_000, u64::MAX] {
            for i in 1..=5 {
                assert_eq!(h.hr(i, ts), hr(i, "wiki/Some/Long/Page", ts));
            }
            let via_iter: Vec<Id> = h.locations(ts).collect();
            assert_eq!(via_iter, log_locations(5, "wiki/Some/Long/Page", ts));
        }
    }

    #[test]
    fn iter_matches_vec_variant() {
        let v = log_locations(4, "doc", 7);
        let it: Vec<Id> = log_locations_iter(4, "doc", 7).collect();
        assert_eq!(v, it);
    }

    #[test]
    fn placement_is_uniformish() {
        // 400 locations over the top-nibble buckets: no bucket empty, none
        // holding more than a quarter (very loose uniformity sanity check).
        let mut buckets = [0usize; 16];
        for ts in 0..100u64 {
            for id in log_locations(4, "balance-doc", ts) {
                buckets[(id.raw() >> 60) as usize] += 1;
            }
        }
        assert!(buckets.iter().all(|&c| c > 0));
        assert!(buckets.iter().all(|&c| c < 100));
    }
}
