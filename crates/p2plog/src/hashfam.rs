//! The hash-function family of P2P-LTR placement (RR-6497 §2):
//!
//! * `ht` locates the **Master-key peer** of a document;
//! * `Hr = {h1 … hn}` — the pairwise-independent **replication hash
//!   functions** — locate the `n` Log-Peers of each `(document, ts)` record:
//!   `Put(h1(key+ts), patch) … Put(hn(key+ts), patch)`.
//!
//! All are salted SHA-1 truncations: distinct one-byte salts give
//! independent placements (domain separation).

use chord::Id;

/// Salt reserved for the timestamp hash `ht`.
const HT_SALT: u8 = 0;

/// The master-key location of a document: `ht(name)`.
pub fn ht(doc: &str) -> Id {
    Id::hash_salted(HT_SALT, doc.as_bytes())
}

/// The `i`-th replication hash (1-based, `1 ..= n`): `h_i(name # ts)`.
pub fn hr(i: usize, doc: &str, ts: u64) -> Id {
    debug_assert!((1..=250).contains(&i), "replication index out of range");
    let material = format!("{doc}#{ts}");
    Id::hash_salted(i as u8, material.as_bytes())
}

/// All `n` log locations for `(doc, ts)`, in retrieval preference order.
pub fn log_locations(n: usize, doc: &str, ts: u64) -> Vec<Id> {
    (1..=n).map(|i| hr(i, doc, ts)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ht_is_deterministic_and_distinct_per_doc() {
        assert_eq!(ht("a"), ht("a"));
        assert_ne!(ht("a"), ht("b"));
    }

    #[test]
    fn replication_hashes_are_pairwise_distinct() {
        let locs = log_locations(8, "doc", 3);
        let set: HashSet<_> = locs.iter().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn hashes_differ_from_ht() {
        // The log locations must not collide with the master location.
        let master = ht("doc");
        for id in log_locations(8, "doc", 1) {
            assert_ne!(id, master);
        }
    }

    #[test]
    fn each_ts_gets_fresh_locations() {
        let a = log_locations(3, "doc", 1);
        let b = log_locations(3, "doc", 2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_ne!(x, y);
        }
    }

    #[test]
    fn doc_ts_separator_prevents_aliasing() {
        // ("doc#1", ts=2) must not alias ("doc#12", ts=...) etc.
        assert_ne!(hr(1, "doc#1", 2), hr(1, "doc", 12));
        assert_ne!(hr(1, "doc1", 2), hr(1, "doc", 12));
    }

    #[test]
    fn placement_is_uniformish() {
        // 400 locations over the top-nibble buckets: no bucket empty, none
        // holding more than a quarter (very loose uniformity sanity check).
        let mut buckets = [0usize; 16];
        for ts in 0..100u64 {
            for id in log_locations(4, "balance-doc", ts) {
                buckets[(id.raw() >> 60) as usize] += 1;
            }
        }
        assert!(buckets.iter().all(|&c| c > 0));
        assert!(buckets.iter().all(|&c| c < 100));
    }
}
