//! The unit stored in the P2P-Log: one timestamped patch, self-verifying.

use bytes::Bytes;

/// A timestamped patch as stored at the Log-Peers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Document name (the reconciliation key).
    pub doc: String,
    /// The continuous timestamp assigned by the Master-key peer.
    pub ts: u64,
    /// Author site id.
    pub author: u64,
    /// The encoded patch body (see `ot::encode_patch`).
    pub patch: Bytes,
    /// The master epoch the grant was issued under (0 = legacy,
    /// pre-fencing record; encodes to the exact legacy byte layout).
    pub epoch: u64,
}

/// Errors decoding a log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// Byte stream too short / malformed.
    Truncated,
    /// Checksum mismatch (corruption or tampering).
    BadChecksum,
    /// Document name is not UTF-8.
    BadName,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "truncated log record"),
            RecordError::BadChecksum => write!(f, "log record checksum mismatch"),
            RecordError::BadName => write!(f, "log record document name not utf-8"),
        }
    }
}

impl std::error::Error for RecordError {}

fn fnv64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0xff; // chunk separator
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl LogRecord {
    /// Build a legacy (epoch-0) record.
    pub fn new(doc: impl Into<String>, ts: u64, author: u64, patch: Bytes) -> Self {
        LogRecord {
            doc: doc.into(),
            ts,
            author,
            patch,
            epoch: 0,
        }
    }

    /// Stamp the record with the granting master's epoch (fenced mode).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    fn checksum(&self) -> u64 {
        // The epoch chunk participates only when present on the wire
        // (epoch > 0) so epoch-0 records keep their legacy checksums.
        let ts_le = self.ts.to_le_bytes();
        let author_le = self.author.to_le_bytes();
        let epoch_le = self.epoch.to_le_bytes();
        let mut chunks: Vec<&[u8]> = vec![self.doc.as_bytes(), &ts_le, &author_le, &self.patch];
        if self.epoch > 0 {
            chunks.push(&epoch_le);
        }
        fnv64(&chunks)
    }

    /// Serialize with a trailing checksum.
    ///
    /// Legacy layout (epoch 0): u32 doc_len | doc | u64 ts | u64 author |
    /// u32 patch_len | patch | u64 checksum (all little-endian).
    ///
    /// Epoch-stamped layout (epoch > 0): [`chord::RANK_MAGIC`] | u64 epoch
    /// | legacy body — the epoch prefix doubles as the storage-arbitration
    /// rank ([`chord::value_rank`]), and the checksum additionally covers
    /// the epoch.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.doc.len() + self.patch.len() + 52);
        if self.epoch > 0 {
            out.extend_from_slice(&chord::RANK_MAGIC);
            out.extend_from_slice(&self.epoch.to_le_bytes());
        }
        out.extend_from_slice(&(self.doc.len() as u32).to_le_bytes());
        out.extend_from_slice(self.doc.as_bytes());
        out.extend_from_slice(&self.ts.to_le_bytes());
        out.extend_from_slice(&self.author.to_le_bytes());
        out.extend_from_slice(&(self.patch.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.patch);
        out.extend_from_slice(&self.checksum().to_le_bytes());
        Bytes::from(out)
    }

    /// Parse and verify a record (either layout).
    pub fn decode(buf: &[u8]) -> Result<LogRecord, RecordError> {
        let (epoch, buf) = if buf.len() >= 12 && buf[..4] == chord::RANK_MAGIC {
            let epoch = u64::from_le_bytes(buf[4..12].try_into().expect("4..12 is 8 bytes"));
            (epoch, &buf[12..])
        } else {
            (0, buf)
        };
        let need = |at: usize, n: usize| -> Result<(), RecordError> {
            if at + n > buf.len() {
                Err(RecordError::Truncated)
            } else {
                Ok(())
            }
        };
        let mut at = 0usize;
        need(at, 4)?;
        let doc_len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        need(at, doc_len)?;
        let doc = std::str::from_utf8(&buf[at..at + doc_len])
            .map_err(|_| RecordError::BadName)?
            .to_owned();
        at += doc_len;
        need(at, 8)?;
        let ts = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        at += 8;
        need(at, 8)?;
        let author = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        at += 8;
        need(at, 4)?;
        let patch_len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        need(at, patch_len)?;
        let patch = Bytes::copy_from_slice(&buf[at..at + patch_len]);
        at += patch_len;
        need(at, 8)?;
        let stored_sum = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        at += 8;
        if at != buf.len() {
            return Err(RecordError::Truncated);
        }
        let rec = LogRecord {
            doc,
            ts,
            author,
            patch,
            epoch,
        };
        if rec.checksum() != stored_sum {
            return Err(RecordError::BadChecksum);
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogRecord {
        LogRecord::new("wiki/Main", 42, 7, Bytes::from_static(b"patchbytes"))
    }

    #[test]
    fn roundtrip() {
        let r = sample();
        assert_eq!(LogRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn detects_corruption_anywhere() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x01;
            assert!(
                LogRecord::decode(&bad).is_err(),
                "bit flip at {i} undetected"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(LogRecord::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn empty_patch_ok() {
        let r = LogRecord::new("d", 1, 1, Bytes::new());
        assert_eq!(LogRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn unicode_doc_name() {
        let r = LogRecord::new("página/Ωλ", 1, 1, Bytes::from_static(b"x"));
        assert_eq!(LogRecord::decode(&r.encode()).unwrap().doc, "página/Ωλ");
    }

    #[test]
    fn epoch_roundtrips_and_ranks() {
        let r = sample().with_epoch(5);
        let bytes = r.encode();
        assert_eq!(chord::value_rank(&bytes), 5);
        assert_eq!(LogRecord::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn epoch_zero_is_byte_identical_to_legacy() {
        let r = sample();
        let bytes = r.encode();
        assert_eq!(chord::value_rank(&bytes), 0);
        assert!(!bytes.starts_with(&chord::RANK_MAGIC));
        // The with_epoch(0) spelling changes nothing.
        assert_eq!(sample().with_epoch(0).encode(), bytes);
    }

    #[test]
    fn epoch_record_detects_corruption_anywhere() {
        let bytes = sample().with_epoch(9).encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x01;
            assert!(
                LogRecord::decode(&bad).is_err(),
                "bit flip at {i} undetected"
            );
        }
        for cut in 0..bytes.len() {
            assert!(LogRecord::decode(&bytes[..cut]).is_err());
        }
    }
}
