//! The retrieval algorithm: fetch missing patches **in total (continuous
//! timestamp) order**, trying the replication hashes in sequence when a
//! Log-Peer misses or is unreachable (RR-6497 §3: `get(h_i(key+ts))`).
//!
//! Fetches for different timestamps are pipelined up to a window, but
//! records are *delivered* strictly in ascending timestamp order — the
//! property Figure 5 of the paper demonstrates.

use std::collections::BTreeMap;

use bytes::Bytes;

use chord::Id;

use crate::hashfam::DocHashes;
use chord::DocName;

/// A fetch the embedding layer must perform (a DHT get at `key`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchCmd {
    /// Timestamp being fetched.
    pub ts: u64,
    /// Which replication hash (1-based).
    pub hash_idx: usize,
    /// The DHT key `h_i(doc + ts)`.
    pub key: Id,
}

/// Ordered outputs of the retriever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetrieveEvent {
    /// The next record, in continuous order.
    Deliver {
        /// Its timestamp (always previous + 1).
        ts: u64,
        /// The stored bytes (a `LogRecord` encoding).
        bytes: Bytes,
    },
    /// All replicas missed for `ts`: retrieval cannot proceed past it.
    Failed {
        /// The unfetchable timestamp.
        ts: u64,
    },
    /// The whole range was delivered.
    Done,
}

#[derive(Clone, Debug)]
enum TsState {
    /// Waiting for the fetch of replica `hash_idx` to come back.
    InFlight { hash_idx: usize },
    /// Fetched, awaiting in-order delivery.
    Ready(Bytes),
    /// All replicas exhausted.
    Exhausted,
}

/// Sans-IO retrieval state machine for one `(doc, from..=to]` range.
///
/// Holds a [`DocHashes`] midstate cache: every fetch in the window derives
/// its key from the cached per-document SHA-1 state instead of re-hashing
/// the document name.
#[derive(Clone, Debug)]
pub struct Retriever {
    hashes: DocHashes,
    window: usize,
    next_emit: u64,
    next_issue: u64,
    to: u64,
    states: BTreeMap<u64, TsState>,
    finished: bool,
}

impl Retriever {
    /// Retrieve timestamps `(from, to]` of `doc` with replication degree
    /// `n`, pipelining up to `window` timestamps.
    pub fn new(doc: impl Into<DocName>, from: u64, to: u64, n: usize, window: usize) -> Self {
        assert!(from <= to, "empty or inverted range");
        assert!(n >= 1 && window >= 1);
        Retriever {
            hashes: DocHashes::new(doc, n),
            window,
            next_emit: from + 1,
            next_issue: from + 1,
            to,
            states: BTreeMap::new(),
            finished: from == to,
        }
    }

    /// True once `Done` or `Failed` has been emitted.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The range end (can be raised if the master reports a newer last-ts
    /// while we retrieve).
    pub fn extend_to(&mut self, new_to: u64) {
        if new_to > self.to {
            self.to = new_to;
            self.finished = false;
        }
    }

    /// Initial fetches (fills the pipeline window).
    pub fn start(&mut self) -> Vec<FetchCmd> {
        self.refill()
    }

    fn refill(&mut self) -> Vec<FetchCmd> {
        let mut cmds = Vec::new();
        while self.next_issue <= self.to && (self.next_issue - self.next_emit) < self.window as u64
        {
            let ts = self.next_issue;
            self.states.insert(ts, TsState::InFlight { hash_idx: 1 });
            cmds.push(FetchCmd {
                ts,
                hash_idx: 1,
                key: self.hashes.hr(1, ts),
            });
            self.next_issue += 1;
        }
        cmds
    }

    /// The currently in-flight fetch for `ts`, if any — used by callers
    /// that need to *re-issue* a fetch whose transport failed without
    /// reaching the replica. An operational failure is not a miss: only
    /// an authoritative "not present" answer may trigger the replica
    /// fallback (feeding `None` to [`Retriever::on_fetch_result`]), or a
    /// reader can be steered to a non-canonical copy of a timestamp
    /// while the canonical one is merely unreachable.
    pub fn refetch_cmd(&self, ts: u64) -> Option<FetchCmd> {
        if self.finished {
            return None;
        }
        match self.states.get(&ts) {
            Some(TsState::InFlight { hash_idx }) => Some(FetchCmd {
                ts,
                hash_idx: *hash_idx,
                key: self.hashes.hr(*hash_idx, ts),
            }),
            _ => None,
        }
    }

    /// Feed the result of a fetch. `found` must be `None` only on an
    /// authoritative miss (the responsible replica answered "not
    /// present"); a get that *failed* should be re-issued via
    /// [`Retriever::refetch_cmd`] instead. Returns follow-up fetches plus
    /// in-order events.
    pub fn on_fetch_result(
        &mut self,
        ts: u64,
        hash_idx: usize,
        found: Option<Bytes>,
    ) -> (Vec<FetchCmd>, Vec<RetrieveEvent>) {
        let mut cmds = Vec::new();
        let mut events = Vec::new();
        if self.finished {
            return (cmds, events);
        }
        match self.states.get(&ts) {
            Some(TsState::InFlight { hash_idx: cur }) if *cur == hash_idx => {}
            _ => return (cmds, events), // stale or duplicate result
        }
        match found {
            Some(bytes) => {
                self.states.insert(ts, TsState::Ready(bytes));
            }
            None => {
                if hash_idx < self.hashes.n() {
                    let next = hash_idx + 1;
                    self.states.insert(ts, TsState::InFlight { hash_idx: next });
                    cmds.push(FetchCmd {
                        ts,
                        hash_idx: next,
                        key: self.hashes.hr(next, ts),
                    });
                } else {
                    self.states.insert(ts, TsState::Exhausted);
                }
            }
        }
        // Drain in-order deliveries.
        loop {
            match self.states.get(&self.next_emit) {
                Some(TsState::Ready(_)) => {
                    // Just observed Ready above; the other arms cannot hit.
                    let Some(TsState::Ready(bytes)) = self.states.remove(&self.next_emit) else {
                        break;
                    };
                    events.push(RetrieveEvent::Deliver {
                        ts: self.next_emit,
                        bytes,
                    });
                    self.next_emit += 1;
                }
                Some(TsState::Exhausted) => {
                    events.push(RetrieveEvent::Failed { ts: self.next_emit });
                    self.finished = true;
                    return (Vec::new(), events);
                }
                _ => break,
            }
        }
        if self.next_emit > self.to {
            events.push(RetrieveEvent::Done);
            self.finished = true;
            return (Vec::new(), events);
        }
        cmds.extend(self.refill());
        (cmds, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashfam::hr;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn in_order_delivery_with_out_of_order_arrival() {
        let mut r = Retriever::new("doc", 0, 3, 2, 4);
        let cmds = r.start();
        assert_eq!(cmds.len(), 3, "window covers the whole range");
        // ts=2 arrives first: no delivery yet.
        let (_, ev) = r.on_fetch_result(2, 1, Some(b("p2")));
        assert!(ev.is_empty());
        // ts=1 arrives: 1 and 2 delivered in order.
        let (_, ev) = r.on_fetch_result(1, 1, Some(b("p1")));
        assert_eq!(
            ev,
            vec![
                RetrieveEvent::Deliver {
                    ts: 1,
                    bytes: b("p1")
                },
                RetrieveEvent::Deliver {
                    ts: 2,
                    bytes: b("p2")
                },
            ]
        );
        // ts=3 completes the range.
        let (_, ev) = r.on_fetch_result(3, 1, Some(b("p3")));
        assert_eq!(
            ev,
            vec![
                RetrieveEvent::Deliver {
                    ts: 3,
                    bytes: b("p3")
                },
                RetrieveEvent::Done,
            ]
        );
        assert!(r.is_finished());
    }

    #[test]
    fn falls_back_across_replicas() {
        let mut r = Retriever::new("doc", 0, 1, 3, 1);
        let cmds = r.start();
        assert_eq!(cmds[0].hash_idx, 1);
        // h1 misses -> h2 requested.
        let (cmds, ev) = r.on_fetch_result(1, 1, None);
        assert!(ev.is_empty());
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].hash_idx, 2);
        // h2 misses -> h3.
        let (cmds, _) = r.on_fetch_result(1, 2, None);
        assert_eq!(cmds[0].hash_idx, 3);
        // h3 hits.
        let (_, ev) = r.on_fetch_result(1, 3, Some(b("p")));
        assert_eq!(ev.len(), 2); // Deliver + Done
    }

    #[test]
    fn exhausting_all_replicas_fails() {
        let mut r = Retriever::new("doc", 0, 2, 2, 2);
        r.start();
        r.on_fetch_result(1, 1, None);
        let (_, ev) = r.on_fetch_result(1, 2, None);
        assert_eq!(ev, vec![RetrieveEvent::Failed { ts: 1 }]);
        assert!(r.is_finished());
    }

    #[test]
    fn window_limits_outstanding() {
        let mut r = Retriever::new("doc", 0, 10, 1, 3);
        let cmds = r.start();
        assert_eq!(cmds.len(), 3);
        // Completing ts=1 lets ts=4 issue.
        let (cmds, ev) = r.on_fetch_result(1, 1, Some(b("p")));
        assert_eq!(ev.len(), 1);
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].ts, 4);
    }

    #[test]
    fn stale_results_ignored() {
        let mut r = Retriever::new("doc", 0, 1, 2, 1);
        r.start();
        // Result for the wrong replica index is dropped.
        let (cmds, ev) = r.on_fetch_result(1, 2, Some(b("x")));
        assert!(cmds.is_empty() && ev.is_empty());
        // Result for an unknown ts is dropped.
        let (cmds, ev) = r.on_fetch_result(9, 1, Some(b("x")));
        assert!(cmds.is_empty() && ev.is_empty());
    }

    #[test]
    fn empty_range_is_immediately_finished() {
        let mut r = Retriever::new("doc", 5, 5, 2, 2);
        assert!(r.is_finished());
        assert!(r.start().is_empty());
    }

    #[test]
    fn extend_to_continues_retrieval() {
        let mut r = Retriever::new("doc", 0, 1, 1, 2);
        r.start();
        let (_, ev) = r.on_fetch_result(1, 1, Some(b("p1")));
        assert!(matches!(ev.last(), Some(RetrieveEvent::Done)));
        // Master reports more patches appeared meanwhile.
        r.extend_to(2);
        assert!(!r.is_finished());
        let cmds = r.start();
        assert_eq!(cmds.len(), 1);
        assert_eq!(cmds[0].ts, 2);
    }

    #[test]
    fn commands_use_the_right_hash_keys() {
        let mut r = Retriever::new("mydoc", 0, 1, 2, 1);
        let cmds = r.start();
        assert_eq!(cmds[0].key, hr(1, "mydoc", 1));
        let (cmds, _) = r.on_fetch_result(1, 1, None);
        assert_eq!(cmds[0].key, hr(2, "mydoc", 1));
    }
}
