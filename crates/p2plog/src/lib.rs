//! # ltr-p2plog — the highly-available P2P log of P2P-LTR
//!
//! Timestamped patches are stored at `n` **Log-Peers** located by the
//! replication hash family `Hr = {h1 … hn}`:
//! `Put(h1(key+ts), patch) … Put(hn(key+ts), patch)` (RR-6497 §2–3). This
//! crate provides the log machinery as sans-IO components the `p2p-ltr`
//! crate drives over Chord:
//!
//! * [`hashfam`] — `ht` (master placement) and `h1..hn` (log placement);
//! * [`record::LogRecord`] — checksummed, self-verifying stored unit;
//! * [`publish::PublishTracker`] — fan-out bookkeeping with All/Quorum ack
//!   policies; a single first-writer conflict is decisive (duelling-master
//!   arbitration);
//! * [`fence::FenceTracker`] — quorum bookkeeping for the grant fence a
//!   fenced-mode master raises at the next slot's Log-Peers before
//!   serving (master-epoch hardening, see ARCHITECTURE.md);
//! * [`retrieval::Retriever`] — the paper's retrieval algorithm: pipelined
//!   fetches, replica fallback (`h1`, then `h2`, …), strictly in-order
//!   delivery of continuous timestamps;
//! * [`probe::LogProbe`] — gallop + binary-search recovery of `last_ts`
//!   from the log (double-failure path, extension);
//! * [`index::LogIndex`] — per-node record index for watermark GC
//!   (extension).

#![warn(missing_docs)]

pub mod config;
pub mod fence;
pub mod hashfam;
pub mod index;
pub mod probe;
pub mod publish;
pub mod record;
pub mod retrieval;

pub use chord::DocName;
pub use config::{AckPolicy, LogConfig};
pub use fence::{FenceResponse, FenceTracker, FenceVerdict};
pub use hashfam::{hr, ht, log_locations, log_locations_iter, DocHashes};
pub use index::LogIndex;
pub use probe::{LogProbe, ProbeCmd};
pub use publish::{PublishTracker, PublishVerdict, ReplicaResponse};
pub use record::{LogRecord, RecordError};
pub use retrieval::{FetchCmd, RetrieveEvent, Retriever};
