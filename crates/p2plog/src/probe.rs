//! Log probing: recover `last_ts(key)` from the log itself by galloping
//! upward and binary-searching the first missing timestamp.
//!
//! Correctness rests on the continuity invariant: the log of a document
//! contains exactly the timestamps `1..=last_ts`, so "present" is monotone
//! and binary search is sound. This is the recovery path when both the
//! Master-key and its successor are lost (extension over the paper,
//! DESIGN.md §6).

use chord::Id;

use crate::hashfam::DocHashes;
use chord::DocName;

/// One probe the embedder must run (a DHT get; "present" = any bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeCmd {
    /// Timestamp under test.
    pub ts: u64,
    /// Replication hash index (1-based).
    pub hash_idx: usize,
    /// DHT key.
    pub key: Id,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    /// Galloping upward; `probing` is the ts under test, `step` doubles.
    Gallop { probing: u64, step: u64 },
    /// Binary search in `(lo, hi)`: `lo` known present, `hi` known absent.
    Binary { lo: u64, hi: u64, probing: u64 },
    /// Finished with the recovered last_ts.
    Done(u64),
}

/// Sans-IO probe state machine (one outstanding request at a time; each
/// timestamp is tested against all `n` replicas before declaring absence).
/// Probe keys derive from a cached [`DocHashes`] midstate.
#[derive(Clone, Debug)]
pub struct LogProbe {
    hashes: DocHashes,
    base: u64,
    highest_hit: u64,
    hash_idx: usize,
    phase: Phase,
}

impl LogProbe {
    /// Probe `doc` starting from known lower bound `base` (usually 0).
    pub fn new(doc: impl Into<DocName>, base: u64, n: usize) -> Self {
        assert!(n >= 1);
        LogProbe {
            hashes: DocHashes::new(doc, n),
            base,
            highest_hit: base,
            hash_idx: 1,
            phase: Phase::Gallop {
                probing: base + 1,
                step: 1,
            },
        }
    }

    /// The recovered `last_ts`, once finished.
    pub fn result(&self) -> Option<u64> {
        match self.phase {
            Phase::Done(v) => Some(v),
            _ => None,
        }
    }

    /// The next probe to run, or `None` when finished.
    pub fn next_cmd(&self) -> Option<ProbeCmd> {
        let ts = match self.phase {
            Phase::Gallop { probing, .. } => probing,
            Phase::Binary { probing, .. } => probing,
            Phase::Done(_) => return None,
        };
        Some(ProbeCmd {
            ts,
            hash_idx: self.hash_idx,
            key: self.hashes.hr(self.hash_idx, ts),
        })
    }

    /// Feed the result of the last [`LogProbe::next_cmd`]: `present` means
    /// the get returned bytes.
    pub fn on_result(&mut self, present: bool) {
        let probing = match self.phase {
            Phase::Gallop { probing, .. } => probing,
            Phase::Binary { probing, .. } => probing,
            Phase::Done(_) => return,
        };
        if !present && self.hash_idx < self.hashes.n() {
            // Try the next replica before declaring the ts absent.
            self.hash_idx += 1;
            return;
        }
        let ts_present = present;
        self.hash_idx = 1;
        match self.phase {
            Phase::Gallop { step, .. } => {
                if ts_present {
                    self.highest_hit = probing;
                    let next_step = step.saturating_mul(2);
                    self.phase = Phase::Gallop {
                        probing: self.base + next_step,
                        step: next_step,
                    };
                } else if probing == self.highest_hit + 1 {
                    // The very next ts is absent: highest hit is the answer.
                    self.phase = Phase::Done(self.highest_hit);
                } else {
                    self.phase = Phase::Binary {
                        lo: self.highest_hit,
                        hi: probing,
                        probing: self.highest_hit + (probing - self.highest_hit) / 2,
                    };
                }
            }
            Phase::Binary { lo, hi, .. } => {
                let (lo, hi) = if ts_present {
                    (probing, hi)
                } else {
                    (lo, probing)
                };
                if hi - lo <= 1 {
                    self.phase = Phase::Done(lo);
                } else {
                    self.phase = Phase::Binary {
                        lo,
                        hi,
                        probing: lo + (hi - lo) / 2,
                    };
                }
            }
            Phase::Done(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a probe against a log that contains 1..=actual.
    fn run(actual: u64, base: u64, n: usize) -> (u64, usize) {
        let mut probe = LogProbe::new("doc", base, n);
        let mut steps = 0;
        while let Some(cmd) = probe.next_cmd() {
            steps += 1;
            assert!(steps < 1000, "probe diverged");
            // Replica 1 always answers truthfully in this model.
            probe.on_result(cmd.ts <= actual);
        }
        (probe.result().unwrap(), steps)
    }

    #[test]
    fn empty_log() {
        assert_eq!(run(0, 0, 3).0, 0);
    }

    #[test]
    fn exact_recovery_small() {
        for actual in 0..20 {
            assert_eq!(run(actual, 0, 2).0, actual, "actual={actual}");
        }
    }

    #[test]
    fn exact_recovery_large_with_log_steps() {
        let (result, steps) = run(1_000_000, 0, 1);
        assert_eq!(result, 1_000_000);
        // Gallop + binary search: O(log n) probes.
        assert!(steps < 50, "took {steps} probes");
    }

    #[test]
    fn base_hint_shortens_probe() {
        let (result, steps_cold) = run(1000, 0, 1);
        assert_eq!(result, 1000);
        let (result, steps_warm) = run(1000, 990, 1);
        assert_eq!(result, 1000);
        assert!(steps_warm < steps_cold);
    }

    #[test]
    fn replica_fallback_before_declaring_absent() {
        // Replica 1 lost everything; replica 2 has the data.
        let mut probe = LogProbe::new("doc", 0, 2);
        let actual = 3u64;
        let mut steps = 0;
        while let Some(cmd) = probe.next_cmd() {
            steps += 1;
            assert!(steps < 100);
            let present = cmd.hash_idx == 2 && cmd.ts <= actual;
            probe.on_result(present);
        }
        assert_eq!(probe.result(), Some(3));
    }

    #[test]
    fn result_none_until_done() {
        let probe = LogProbe::new("doc", 0, 1);
        assert_eq!(probe.result(), None);
        assert!(probe.next_cmd().is_some());
    }
}
