//! Per-node index of the log records it stores, enabling watermark-based
//! garbage collection (an extension: the paper leaves log growth open).

use std::collections::BTreeMap;

use chord::Id;

/// Index kept by every node over the log records in its DHT storage:
/// `doc → ts → storage keys` (a node can hold several replicas of the same
/// record under different `h_i`).
#[derive(Clone, Debug, Default)]
pub struct LogIndex {
    per_doc: BTreeMap<String, BTreeMap<u64, Vec<Id>>>,
}

impl LogIndex {
    /// Fresh empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a stored record.
    pub fn insert(&mut self, doc: &str, ts: u64, key: Id) {
        let slots = self
            .per_doc
            .entry(doc.to_owned())
            .or_default()
            .entry(ts)
            .or_default();
        if !slots.contains(&key) {
            slots.push(key);
        }
    }

    /// Remove records of `doc` with `ts <= watermark`, returning the DHT
    /// storage keys that can now be deleted.
    pub fn prune_below(&mut self, doc: &str, watermark: u64) -> Vec<Id> {
        let mut freed = Vec::new();
        if let Some(by_ts) = self.per_doc.get_mut(doc) {
            let keep = by_ts.split_off(&(watermark + 1));
            for (_, keys) in std::mem::replace(by_ts, keep) {
                freed.extend(keys);
            }
            if by_ts.is_empty() {
                self.per_doc.remove(doc);
            }
        }
        freed
    }

    /// Highest indexed timestamp for `doc`.
    pub fn high_ts(&self, doc: &str) -> Option<u64> {
        self.per_doc
            .get(doc)
            .and_then(|m| m.keys().next_back().copied())
    }

    /// Lowest indexed timestamp for `doc`.
    pub fn low_ts(&self, doc: &str) -> Option<u64> {
        self.per_doc.get(doc).and_then(|m| m.keys().next().copied())
    }

    /// Total records indexed.
    pub fn len(&self) -> usize {
        self.per_doc
            .values()
            .map(|m| m.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.per_doc.is_empty()
    }

    /// Documents present in the index.
    pub fn docs(&self) -> impl Iterator<Item = &str> {
        self.per_doc.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_watermark_prune() {
        let mut idx = LogIndex::new();
        for ts in 1..=10u64 {
            idx.insert("doc", ts, Id(ts * 100));
        }
        assert_eq!(idx.len(), 10);
        assert_eq!(idx.low_ts("doc"), Some(1));
        assert_eq!(idx.high_ts("doc"), Some(10));

        let freed = idx.prune_below("doc", 4);
        assert_eq!(freed.len(), 4);
        assert!(freed.contains(&Id(100)) && freed.contains(&Id(400)));
        assert_eq!(idx.low_ts("doc"), Some(5));
        assert_eq!(idx.len(), 6);
    }

    #[test]
    fn duplicate_keys_not_double_indexed() {
        let mut idx = LogIndex::new();
        idx.insert("doc", 1, Id(5));
        idx.insert("doc", 1, Id(5));
        idx.insert("doc", 1, Id(6));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn prune_everything_clears_doc() {
        let mut idx = LogIndex::new();
        idx.insert("doc", 1, Id(1));
        idx.prune_below("doc", 10);
        assert!(idx.is_empty());
        assert_eq!(idx.high_ts("doc"), None);
    }

    #[test]
    fn docs_are_independent() {
        let mut idx = LogIndex::new();
        idx.insert("a", 1, Id(1));
        idx.insert("b", 2, Id(2));
        idx.prune_below("a", 5);
        assert_eq!(idx.high_ts("b"), Some(2));
        assert_eq!(idx.high_ts("a"), None);
    }
}
