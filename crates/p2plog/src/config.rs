//! Tunables for the P2P-Log.

/// How many Log-Peer acknowledgements a publish needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckPolicy {
    /// Wait for all `n` replicas (the paper's behaviour).
    All,
    /// Wait for `w` of them (latency/durability trade-off, ablation A2).
    Quorum(usize),
}

/// Configuration of the log layer.
#[derive(Clone, Debug)]
pub struct LogConfig {
    /// Replication degree `n = |Hr|` (number of replication hash functions).
    pub replication: usize,
    /// Publish acknowledgement policy.
    pub ack_policy: AckPolicy,
    /// Retrieval pipelining window (timestamps fetched concurrently).
    pub pipeline_window: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            replication: 3,
            ack_policy: AckPolicy::All,
            pipeline_window: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = LogConfig::default();
        assert_eq!(c.replication, 3);
        assert_eq!(c.ack_policy, AckPolicy::All);
        assert!(c.pipeline_window >= 1);
    }
}
