//! Publish-side bookkeeping: fan a record out to the `n` Log-Peers and
//! decide the outcome from the per-replica acknowledgements.

use chord::Id;

use crate::config::AckPolicy;
use crate::hashfam::log_locations;

/// Final verdict of one publish fan-out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PublishVerdict {
    /// Enough replicas stored the record.
    Ok,
    /// Some replica already holds a *different* record under this
    /// `(doc, ts)` — another master granted this timestamp.
    Conflict,
    /// Not enough replicas reachable.
    Unreachable,
}

/// Per-replica response fed into the tracker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaResponse {
    /// Stored (or already held the identical record).
    Acked,
    /// Holds a different record (first-writer-wins rejection).
    Conflicted,
    /// Timed out / unreachable / refused.
    Failed,
}

/// Tracks one in-flight publish across its `n` replica puts.
#[derive(Clone, Debug)]
pub struct PublishTracker {
    total: usize,
    required: usize,
    acks: usize,
    conflicts: usize,
    failures: usize,
    verdict: Option<PublishVerdict>,
}

impl PublishTracker {
    /// Start tracking a fan-out of `n` puts under the given policy.
    pub fn new(n: usize, policy: AckPolicy) -> Self {
        let required = match policy {
            AckPolicy::All => n,
            AckPolicy::Quorum(w) => w.min(n).max(1),
        };
        PublishTracker {
            total: n,
            required,
            acks: 0,
            conflicts: 0,
            failures: 0,
            verdict: None,
        }
    }

    /// The target log locations for this record.
    pub fn locations(n: usize, doc: &str, ts: u64) -> Vec<Id> {
        log_locations(n, doc, ts)
    }

    /// Feed one replica's response; returns the verdict when it becomes
    /// decidable (exactly once).
    pub fn on_response(&mut self, resp: ReplicaResponse) -> Option<PublishVerdict> {
        if self.verdict.is_some() {
            return None; // already decided; late responses ignored
        }
        match resp {
            ReplicaResponse::Acked => self.acks += 1,
            ReplicaResponse::Conflicted => self.conflicts += 1,
            ReplicaResponse::Failed => self.failures += 1,
        }
        let outstanding = self.total - self.acks - self.conflicts - self.failures;
        let verdict = if self.conflicts > 0 {
            // Records are immutable and keyed by (doc, ts): a different
            // value can only come from a competing master. One conflicting
            // replica is decisive.
            Some(PublishVerdict::Conflict)
        } else if self.acks >= self.required {
            Some(PublishVerdict::Ok)
        } else if self.acks + outstanding < self.required {
            Some(PublishVerdict::Unreachable)
        } else {
            None
        };
        if verdict.is_some() {
            self.verdict = verdict;
        }
        verdict
    }

    /// The verdict, if already decided.
    pub fn verdict(&self) -> Option<PublishVerdict> {
        self.verdict
    }

    /// Acks received so far.
    pub fn acks(&self) -> usize {
        self.acks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policy_requires_every_ack() {
        let mut t = PublishTracker::new(3, AckPolicy::All);
        assert_eq!(t.on_response(ReplicaResponse::Acked), None);
        assert_eq!(t.on_response(ReplicaResponse::Acked), None);
        assert_eq!(
            t.on_response(ReplicaResponse::Acked),
            Some(PublishVerdict::Ok)
        );
    }

    #[test]
    fn quorum_policy_decides_early() {
        let mut t = PublishTracker::new(4, AckPolicy::Quorum(2));
        assert_eq!(t.on_response(ReplicaResponse::Acked), None);
        assert_eq!(
            t.on_response(ReplicaResponse::Acked),
            Some(PublishVerdict::Ok)
        );
        // Late responses are swallowed.
        assert_eq!(t.on_response(ReplicaResponse::Failed), None);
    }

    #[test]
    fn single_conflict_is_decisive() {
        let mut t = PublishTracker::new(3, AckPolicy::All);
        assert_eq!(t.on_response(ReplicaResponse::Acked), None);
        assert_eq!(
            t.on_response(ReplicaResponse::Conflicted),
            Some(PublishVerdict::Conflict)
        );
    }

    #[test]
    fn unreachable_when_quorum_impossible() {
        let mut t = PublishTracker::new(3, AckPolicy::All);
        assert_eq!(t.on_response(ReplicaResponse::Acked), None);
        assert_eq!(
            t.on_response(ReplicaResponse::Failed),
            Some(PublishVerdict::Unreachable),
            "one failure under All makes n acks impossible"
        );
    }

    #[test]
    fn quorum_tolerates_failures() {
        let mut t = PublishTracker::new(4, AckPolicy::Quorum(2));
        assert_eq!(t.on_response(ReplicaResponse::Failed), None);
        assert_eq!(t.on_response(ReplicaResponse::Failed), None);
        assert_eq!(t.on_response(ReplicaResponse::Acked), None);
        assert_eq!(
            t.on_response(ReplicaResponse::Acked),
            Some(PublishVerdict::Ok)
        );
    }

    #[test]
    fn quorum_unreachable_when_too_many_fail() {
        let mut t = PublishTracker::new(3, AckPolicy::Quorum(2));
        assert_eq!(t.on_response(ReplicaResponse::Failed), None);
        assert_eq!(
            t.on_response(ReplicaResponse::Failed),
            Some(PublishVerdict::Unreachable)
        );
    }

    #[test]
    fn quorum_clamped_to_n() {
        let mut t = PublishTracker::new(2, AckPolicy::Quorum(5));
        t.on_response(ReplicaResponse::Acked);
        assert_eq!(
            t.on_response(ReplicaResponse::Acked),
            Some(PublishVerdict::Ok)
        );
    }
}
