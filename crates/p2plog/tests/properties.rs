//! Property-based tests of the log machinery: the retriever against random
//! replica-availability matrices, the probe against random log depths, and
//! codec robustness.

use bytes::Bytes;
use p2plog::{FetchCmd, LogProbe, LogRecord, RetrieveEvent, Retriever};
use proptest::prelude::*;

/// Drive a retriever to completion against an availability oracle:
/// `available(ts, hash_idx) -> bool`. Returns the delivered timestamps (in
/// delivery order) and whether retrieval failed.
fn drive_retriever(
    from: u64,
    to: u64,
    n: usize,
    window: usize,
    available: impl Fn(u64, usize) -> bool,
) -> (Vec<u64>, bool) {
    let mut r = Retriever::new("doc", from, to, n, window);
    let mut queue: Vec<FetchCmd> = r.start();
    let mut delivered = Vec::new();
    let mut failed = false;
    let mut guard = 0;
    while let Some(cmd) = queue.pop() {
        guard += 1;
        assert!(guard < 100_000, "retriever diverged");
        let found = if available(cmd.ts, cmd.hash_idx) {
            Some(Bytes::from(format!("rec-{}", cmd.ts).into_bytes()))
        } else {
            None
        };
        let (more, events) = r.on_fetch_result(cmd.ts, cmd.hash_idx, found);
        queue.extend(more);
        for ev in events {
            match ev {
                RetrieveEvent::Deliver { ts, bytes } => {
                    assert_eq!(bytes, Bytes::from(format!("rec-{ts}").into_bytes()));
                    delivered.push(ts);
                }
                RetrieveEvent::Failed { .. } => failed = true,
                RetrieveEvent::Done => {}
            }
        }
    }
    (delivered, failed)
}

proptest! {
    /// If every timestamp survives on at least one replica, retrieval
    /// delivers the entire range strictly in order, regardless of which
    /// replicas are missing and of the pipeline window.
    #[test]
    fn full_delivery_when_one_replica_survives(
        to in 1u64..60,
        n in 1usize..5,
        window in 1usize..8,
        seed in 0u64..10_000,
    ) {
        // Deterministic availability: each (ts, idx) flips a hash-based
        // coin, but the designated survivor index for each ts always hits.
        let survivor = |ts: u64| -> usize { ((ts.wrapping_mul(seed | 1)) % n as u64) as usize + 1 };
        let available = move |ts: u64, idx: usize| -> bool {
            idx == survivor(ts)
                || (ts.wrapping_mul(0x9E37).wrapping_add(idx as u64).wrapping_mul(seed | 1)) % 3 == 0
        };
        let (delivered, failed) = drive_retriever(0, to, n, window, available);
        prop_assert!(!failed);
        prop_assert_eq!(delivered, (1..=to).collect::<Vec<_>>());
    }

    /// If some timestamp is lost on *all* replicas, retrieval fails at
    /// exactly the first lost timestamp and never delivers past it.
    #[test]
    fn failure_stops_exactly_at_first_hole(
        to in 2u64..40,
        n in 1usize..4,
        window in 1usize..6,
        hole_seed in 0u64..1000,
    ) {
        let hole = (hole_seed % to) + 1;
        let available = move |ts: u64, _idx: usize| ts != hole;
        let (delivered, failed) = drive_retriever(0, to, n, window, available);
        prop_assert!(failed);
        prop_assert_eq!(delivered, (1..hole).collect::<Vec<_>>());
    }

    /// The probe recovers the exact log depth for any depth/base/replica
    /// count, when replica 1 answers truthfully.
    #[test]
    fn probe_recovers_exact_depth(actual in 0u64..5000, base_frac in 0u64..100, n in 1usize..4) {
        let base = actual * base_frac / 100;
        let mut probe = LogProbe::new("doc", base, n);
        let mut steps = 0;
        while let Some(cmd) = probe.next_cmd() {
            steps += 1;
            prop_assert!(steps < 500, "too many probes");
            probe.on_result(cmd.hash_idx == 1 && cmd.ts <= actual);
        }
        prop_assert_eq!(probe.result(), Some(actual));
    }

    /// Probe correctness when an adversarial subset of replicas lost their
    /// records (any record still lives on its designated survivor).
    #[test]
    fn probe_with_partial_replica_loss(actual in 0u64..500, seed in 0u64..1000) {
        let n = 3usize;
        let survivor = |ts: u64| ((ts.wrapping_mul(seed | 1)) % n as u64) as usize + 1;
        let mut probe = LogProbe::new("doc", 0, n);
        let mut steps = 0;
        while let Some(cmd) = probe.next_cmd() {
            steps += 1;
            prop_assert!(steps < 2000);
            let present = cmd.ts <= actual && cmd.hash_idx == survivor(cmd.ts);
            probe.on_result(present);
        }
        prop_assert_eq!(probe.result(), Some(actual));
    }

    /// Log-record codec: roundtrip for arbitrary contents; any single-byte
    /// corruption is detected.
    #[test]
    fn record_roundtrip_and_corruption_detection(
        doc in "[a-zA-Z0-9/_-]{1,40}",
        ts in 0u64..u64::MAX,
        author in 0u64..u64::MAX,
        patch in prop::collection::vec(any::<u8>(), 0..200),
        flip in 0usize..1000,
    ) {
        let rec = LogRecord::new(doc, ts, author, Bytes::from(patch));
        let bytes = rec.encode();
        prop_assert_eq!(LogRecord::decode(&bytes).unwrap(), rec);
        let pos = flip % bytes.len();
        let mut bad = bytes.to_vec();
        bad[pos] ^= 0x40;
        prop_assert!(LogRecord::decode(&bad).is_err(), "corruption at {} undetected", pos);
    }
}

#[test]
fn retriever_window_never_exceeded() {
    // Count in-flight fetches at every step; they must respect the window.
    let window = 3usize;
    let mut r = Retriever::new("doc", 0, 30, 2, window);
    let mut queue: Vec<FetchCmd> = r.start();
    let mut outstanding: std::collections::HashSet<u64> = queue.iter().map(|c| c.ts).collect();
    assert!(outstanding.len() <= window);
    while let Some(cmd) = queue.pop() {
        let (more, events) =
            r.on_fetch_result(cmd.ts, cmd.hash_idx, Some(Bytes::from_static(b"x")));
        for ev in &events {
            if let RetrieveEvent::Deliver { ts, .. } = ev {
                outstanding.remove(ts);
            }
        }
        for c in &more {
            outstanding.insert(c.ts);
        }
        assert!(
            outstanding.len() <= window,
            "window violated: {outstanding:?}"
        );
        queue.extend(more);
    }
}
