//! # simnet — deterministic discrete-event network simulator
//!
//! The substrate under the P2P-LTR reproduction. The original prototype
//! (Tlili et al., RR-6497) ran Java objects over RMI and a GUI harness that
//! could "specify the number of peers or network latencies, or provoke
//! failures". This crate provides the same capabilities as a deterministic,
//! seedable discrete-event simulator:
//!
//! * **virtual time** ([`Time`], [`Duration`]) in microseconds;
//! * **nodes** implementing [`Process`]: message + timer driven state
//!   machines receiving a capability handle ([`Ctx`]);
//! * **network model** ([`NetConfig`]): constant / uniform / log-normal
//!   latency, Bernoulli loss, pairwise partitions;
//! * **fault injection** ([`FaultPlan`], [`Sim::set_fault_plan`]): seeded
//!   per-link-class message drop / duplicate / reorder / delay,
//!   directional link cuts, scheduled crashes — decisions draw from a
//!   dedicated RNG, so the zero-fault event stream is untouched;
//! * **churn**: crash-stop ([`Sim::crash`]), crash-with-disk restart
//!   ([`Sim::restart_node`] — a replacement process, typically rebuilt
//!   from a durable store, resumes at the same address with the dead
//!   incarnation's timers suppressed), graceful departure
//!   ([`Sim::remove`]) and scripted control events ([`Sim::schedule_at`]);
//! * **observability**: a [`Metrics`] registry (counters + exact-quantile
//!   histograms) and optional message tracing;
//! * **determinism**: a self-contained xoshiro256++ RNG ([`Rng64`]) and a
//!   strictly ordered event queue, so every experiment is reproducible from
//!   its seed.
//!
//! ## Example
//!
//! ```
//! use simnet::{Ctx, NetConfig, NodeId, Process, Sim, Duration, Time};
//!
//! #[derive(Debug)]
//! struct Hello(&'static str);
//!
//! struct Greeter;
//! impl Process<Hello> for Greeter {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Hello>, from: NodeId, msg: Hello) {
//!         if msg.0 == "hi" {
//!             ctx.send(from, Hello("hello back"));
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(1, NetConfig::lan());
//! let a = sim.add_node(Greeter);
//! sim.send_external(a, Hello("hi"));
//! sim.run_until(Time::from_millis(10));
//! assert_eq!(sim.metrics().counter("sim.msgs_delivered"), 2);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod metrics;
pub mod net;
pub mod process;
pub mod rng;
pub mod sim;
pub mod time;

pub use fault::{FaultPlan, LinkFaults, ScheduledCrash, ScheduledCut};
pub use metrics::{CounterId, Histogram, Metrics, Summary};
pub use net::{LatencyModel, MsgMeta, NetConfig};
pub use process::{Ctx, Effects, Process, TimerId};
pub use rng::{Rng64, Zipf};
pub use sim::{ControlFn, MsgCloner, NodeState, ProcessAny, Sim, WireMeter};
pub use time::{Duration, Time};

/// Identifies a node in the simulation (an index into the node table).
///
/// This is the *transport address*; protocol-level identities (e.g. Chord
/// ring positions) are layered on top by the protocol crates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}
