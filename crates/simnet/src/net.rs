//! Network model: per-message latency sampling, loss, and partitions.
//!
//! The paper's prototype let the operator "specify the number of peers or
//! network latencies, or provoke failures"; this module is that knob set.

use std::collections::BTreeSet;

use crate::rng::Rng64;
use crate::time::Duration;
use crate::NodeId;

/// How one-way message latency is sampled.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Fixed one-way delay.
    Constant(Duration),
    /// Uniform in `[min, max]`.
    Uniform(Duration, Duration),
    /// Log-normal with the given median and shape `sigma`, clamped below by
    /// `floor`. This is the standard WAN model (heavy right tail).
    LogNormal {
        /// Median one-way delay.
        median: Duration,
        /// Log-space standard deviation (0.3–0.6 is WAN-like).
        sigma: f64,
        /// Hard lower bound (propagation floor).
        floor: Duration,
    },
}

impl LatencyModel {
    /// Convenience: a LAN-ish uniform 0.5–2 ms model.
    pub fn lan() -> Self {
        LatencyModel::Uniform(Duration::from_micros(500), Duration::from_millis(2))
    }

    /// Convenience: a WAN-ish log-normal model with 40 ms median.
    pub fn wan() -> Self {
        LatencyModel::LogNormal {
            median: Duration::from_millis(40),
            sigma: 0.35,
            floor: Duration::from_millis(5),
        }
    }

    /// Sample a one-way delay.
    pub fn sample(&self, rng: &mut Rng64) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform(lo, hi) => {
                debug_assert!(lo <= hi);
                Duration::from_micros(rng.gen_range(lo.as_micros(), hi.as_micros()))
            }
            LatencyModel::LogNormal {
                median,
                sigma,
                floor,
            } => {
                let us = rng.log_normal_median(median.as_micros() as f64, sigma);
                let us = us.max(floor.as_micros() as f64).min(1e12);
                Duration::from_micros(us as u64)
            }
        }
    }
}

/// Metadata one message contributes to wire accounting: its encoded size
/// and a coarse class label (used to dimension the per-class byte
/// counters). Produced by the meter installed with
/// [`Sim::set_wire_meter`](crate::Sim::set_wire_meter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgMeta {
    /// Encoded size on the wire, in bytes (frame overhead included).
    pub bytes: usize,
    /// Message class, e.g. `"chord.find_successor"` or `"kts.validate"`.
    pub class: &'static str,
}

/// The full network configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Latency model for remote messages.
    pub latency: LatencyModel,
    /// Extra delay applied to a node sending to itself (local dispatch).
    pub local_delay: Duration,
    /// Independent per-message drop probability (0.0 = reliable).
    pub loss: f64,
    /// Per-link transmit rate in **bytes per second**. `None` (the default)
    /// reproduces the historical behaviour: latency is independent of
    /// message size. When set — and a wire meter is installed on the
    /// simulator so encoded sizes are known — every remote message is
    /// additionally charged its serialization delay `bytes / bandwidth`,
    /// opening bandwidth-constrained scenarios.
    pub bandwidth: Option<u64>,
    /// Blocked unordered pairs (network partition edges).
    partitions: BTreeSet<(NodeId, NodeId)>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: LatencyModel::lan(),
            local_delay: Duration::from_micros(10),
            loss: 0.0,
            bandwidth: None,
            partitions: BTreeSet::new(),
        }
    }
}

impl NetConfig {
    /// LAN defaults (uniform 0.5–2 ms, lossless).
    pub fn lan() -> Self {
        Self::default()
    }

    /// WAN defaults (log-normal 40 ms median, lossless).
    pub fn wan() -> Self {
        NetConfig {
            latency: LatencyModel::wan(),
            ..Self::default()
        }
    }

    fn edge(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Block all traffic between `a` and `b` (both directions).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert(Self::edge(a, b));
    }

    /// Restore traffic between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&Self::edge(a, b));
    }

    /// Remove all partitions.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Is the link currently cut?
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions.contains(&Self::edge(a, b))
    }

    /// Decide the fate of a message: `None` = dropped, `Some(delay)` =
    /// delivered after `delay`.
    pub fn route(&self, rng: &mut Rng64, from: NodeId, to: NodeId) -> Option<Duration> {
        self.route_sized(rng, from, to, 0)
    }

    /// Size-aware [`NetConfig::route`]: remote messages additionally pay
    /// the serialization delay of `bytes` at the configured [`bandwidth`]
    /// (zero extra when the bandwidth is unset or `bytes` is 0). Local
    /// dispatch never serializes.
    ///
    /// [`bandwidth`]: NetConfig::bandwidth
    pub fn route_sized(
        &self,
        rng: &mut Rng64,
        from: NodeId,
        to: NodeId,
        bytes: usize,
    ) -> Option<Duration> {
        if from == to {
            return Some(self.local_delay);
        }
        if self.is_partitioned(from, to) {
            return None;
        }
        if self.loss > 0.0 && rng.chance(self.loss) {
            return None;
        }
        Some(self.latency.sample(rng) + self.transmit_delay(bytes))
    }

    /// Serialization delay of a `bytes`-sized message at the configured
    /// bandwidth (zero when unlimited).
    pub fn transmit_delay(&self, bytes: usize) -> Duration {
        match self.bandwidth {
            Some(bw) if bw > 0 && bytes > 0 => {
                // ceil(bytes * 1e6 / bw) microseconds.
                let us = (bytes as u128 * 1_000_000).div_ceil(bw as u128);
                Duration::from_micros(us.min(u64::MAX as u128) as u64)
            }
            _ => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn constant_latency() {
        let mut rng = Rng64::new(1);
        let m = LatencyModel::Constant(Duration::from_millis(3));
        assert_eq!(m.sample(&mut rng), Duration::from_millis(3));
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let mut rng = Rng64::new(2);
        let lo = Duration::from_micros(100);
        let hi = Duration::from_micros(500);
        let m = LatencyModel::Uniform(lo, hi);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn lognormal_respects_floor() {
        let mut rng = Rng64::new(3);
        let m = LatencyModel::LogNormal {
            median: Duration::from_millis(10),
            sigma: 1.5,
            floor: Duration::from_millis(2),
        };
        for _ in 0..2000 {
            assert!(m.sample(&mut rng) >= Duration::from_millis(2));
        }
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut cfg = NetConfig::lan();
        let mut rng = Rng64::new(4);
        cfg.partition(n(1), n(2));
        assert!(cfg.route(&mut rng, n(1), n(2)).is_none());
        assert!(cfg.route(&mut rng, n(2), n(1)).is_none());
        assert!(cfg.route(&mut rng, n(1), n(3)).is_some());
        cfg.heal(n(2), n(1));
        assert!(cfg.route(&mut rng, n(1), n(2)).is_some());
    }

    #[test]
    fn loss_rate_approximate() {
        let mut cfg = NetConfig::lan();
        cfg.loss = 0.25;
        let mut rng = Rng64::new(5);
        let delivered = (0..10_000)
            .filter(|_| cfg.route(&mut rng, n(1), n(2)).is_some())
            .count();
        assert!((7000..8000).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn transmit_delay_charges_bytes_at_bandwidth() {
        let mut cfg = NetConfig::lan();
        // Unset bandwidth: size never matters (the historical behaviour).
        assert_eq!(cfg.transmit_delay(1_000_000), Duration::ZERO);
        cfg.bandwidth = Some(1_000_000); // 1 MB/s = 1 us per byte
        assert_eq!(cfg.transmit_delay(0), Duration::ZERO);
        assert_eq!(cfg.transmit_delay(1), Duration::from_micros(1));
        assert_eq!(cfg.transmit_delay(1500), Duration::from_micros(1500));
        // Rounds up: 1 byte at 3 MB/s is still a whole microsecond.
        cfg.bandwidth = Some(3_000_000);
        assert_eq!(cfg.transmit_delay(1), Duration::from_micros(1));
    }

    #[test]
    fn route_sized_adds_serialization_to_remote_only() {
        let mut cfg = NetConfig::lan();
        cfg.latency = LatencyModel::Constant(Duration::from_millis(2));
        cfg.bandwidth = Some(1_000_000);
        let mut rng = Rng64::new(8);
        assert_eq!(
            cfg.route_sized(&mut rng, n(1), n(2), 500),
            Some(Duration::from_micros(2_500))
        );
        // Self-sends dispatch locally without serializing.
        assert_eq!(
            cfg.route_sized(&mut rng, n(1), n(1), 500),
            Some(cfg.local_delay)
        );
        // Size 0 (or no meter) keeps the pure latency sample.
        assert_eq!(
            cfg.route_sized(&mut rng, n(1), n(2), 0),
            Some(Duration::from_millis(2))
        );
    }

    #[test]
    fn self_send_uses_local_delay_and_ignores_loss() {
        let mut cfg = NetConfig::lan();
        cfg.loss = 1.0;
        let mut rng = Rng64::new(6);
        assert_eq!(cfg.route(&mut rng, n(7), n(7)), Some(cfg.local_delay));
    }
}
