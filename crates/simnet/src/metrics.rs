//! Lightweight metrics registry: counters and raw-sample histograms.
//!
//! Experiments run at modest scale (thousands–millions of samples), so
//! histograms keep raw `f64` samples and compute exact quantiles on demand
//! (amortized through a sorted cache). Counters come in two flavours:
//!
//! * **pre-registered handles** ([`CounterId`]): the name is resolved to a
//!   dense array slot once at setup; each increment is a single indexed
//!   add. The simulator's per-event counters use these — they fire on
//!   every message send, delivery and timer, so a by-name map lookup per
//!   event is a measurable tax.
//! * **string-keyed** ([`Metrics::incr`]): a thin compatibility layer over
//!   the same slots, kept for dimensioned experiment metrics like
//!   `"validate.rtt.n=64"` that are built dynamically and fire rarely.
//!
//! Both flavours share one namespace: `incr("x")` and
//! `incr_id(register_counter("x"))` hit the same slot, and reporting
//! iterates names in deterministic (sorted) order either way.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

use crate::time::Duration;

/// Pre-registered handle to a named counter: increments through it are a
/// single array-indexed add, no name lookup. Obtain via
/// [`Metrics::register_counter`]; valid for the registry that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Lazily sorted copy of a histogram's samples. `record` only marks it
/// stale, so a report-time quantile sweep (p50/p95/p99/min/max) costs one
/// sort total instead of one clone+sort per quantile.
#[derive(Clone, Debug, Default)]
struct SortedCache {
    sorted: Vec<f64>,
    valid: bool,
}

/// A histogram over raw samples with exact quantiles.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    cache: RefCell<SortedCache>,
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.cache.get_mut().valid = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Run `f` over the sorted samples, (re)building the cache if stale.
    fn with_sorted<R>(&self, f: impl FnOnce(&[f64]) -> R) -> R {
        let mut cache = self.cache.borrow_mut();
        if !cache.valid {
            cache.sorted.clone_from(&self.samples);
            cache
                .sorted
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            cache.valid = true;
        }
        f(&cache.sorted)
    }

    /// Exact quantile by nearest-rank; `q` in `[0,1]`. 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.with_sorted(|sorted| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        })
    }

    /// Minimum sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.with_sorted(|sorted| sorted[0])
        }
    }

    /// Maximum sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.with_sorted(|sorted| sorted[sorted.len() - 1])
        }
    }

    /// Condensed summary for reports (one sort for all five statistics).
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: self.min(),
            max: self.max(),
        }
    }

    /// Borrow the raw samples (for custom analyses in experiments).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Point-in-time condensation of a histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Registry of named counters and histograms.
///
/// Counter values live in a dense `Vec` indexed by [`CounterId`]; the
/// `BTreeMap` maps names to slots, so iteration (reporting) is
/// deterministically name-ordered regardless of registration order.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counter_ids: BTreeMap<String, CounterId>,
    counter_vals: Vec<u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve `name` to a counter handle, creating the slot (at zero) if
    /// new. Idempotent: the same name always yields the same handle.
    pub fn register_counter(&mut self, name: &str) -> CounterId {
        if let Some(id) = self.counter_ids.get(name) {
            return *id;
        }
        let id = CounterId(self.counter_vals.len() as u32);
        self.counter_vals.push(0);
        self.counter_ids.insert(name.to_owned(), id);
        id
    }

    /// Add `delta` to the counter behind a pre-registered handle.
    #[inline]
    pub fn incr_id_by(&mut self, id: CounterId, delta: u64) {
        self.counter_vals[id.0 as usize] += delta;
    }

    /// Increment the counter behind a pre-registered handle by one.
    #[inline]
    pub fn incr_id(&mut self, id: CounterId) {
        self.counter_vals[id.0 as usize] += 1;
    }

    /// Read a counter through its handle.
    #[inline]
    pub fn counter_by_id(&self, id: CounterId) -> u64 {
        self.counter_vals[id.0 as usize]
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn incr_by(&mut self, name: &str, delta: u64) {
        let id = self.register_counter(name);
        self.counter_vals[id.0 as usize] += delta;
    }

    /// Increment the named counter by one.
    #[inline]
    pub fn incr(&mut self, name: &str) {
        self.incr_by(name, 1);
    }

    /// Read a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_ids
            .get(name)
            .map(|id| self.counter_vals[id.0 as usize])
            .unwrap_or(0)
    }

    /// Record a raw sample into the named histogram.
    pub fn record(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::default();
            h.record(v);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Record a duration in **milliseconds** into the named histogram,
    /// the convention used by all latency metrics in this workspace.
    #[inline]
    pub fn record_latency(&mut self, name: &str, d: Duration) {
        self.record(name, d.as_millis_f64());
    }

    /// Borrow a histogram if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Summary of a histogram (default/empty when absent).
    pub fn summary(&self, name: &str) -> Summary {
        self.histograms
            .get(name)
            .map(Histogram::summary)
            .unwrap_or_default()
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_ids
            .iter()
            .map(|(k, id)| (k.as_str(), self.counter_vals[id.0 as usize]))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge another registry into this one (used to aggregate runs).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in other.counters() {
            self.incr_by(k, v);
        }
        for (k, h) in &other.histograms {
            for &s in h.samples() {
                self.record(k, s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msgs");
        m.incr_by("msgs", 4);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn handle_and_name_share_one_slot() {
        let mut m = Metrics::new();
        let id = m.register_counter("msgs");
        m.incr_id(id);
        m.incr("msgs");
        m.incr_id_by(id, 3);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.counter_by_id(id), 5);
        // Re-registration returns the same handle.
        assert_eq!(m.register_counter("msgs"), id);
    }

    #[test]
    fn registered_counter_is_visible_at_zero() {
        let mut m = Metrics::new();
        m.register_counter("armed");
        assert_eq!(m.counter("armed"), 0);
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["armed"]);
    }

    #[test]
    fn histogram_quantiles_exact() {
        let mut h = Histogram::default();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.95), 95.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn sorted_cache_invalidates_on_record() {
        let mut h = Histogram::default();
        h.record(5.0);
        assert_eq!(h.quantile(1.0), 5.0); // builds the cache
        h.record(9.0); // must invalidate it
        assert_eq!(h.quantile(1.0), 9.0);
        assert_eq!(h.min(), 5.0);
        h.record(1.0);
        assert_eq!(h.min(), 1.0);
        // Samples stay in insertion order; only the cache is sorted.
        assert_eq!(h.samples(), &[5.0, 9.0, 1.0]);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn latency_recorded_in_millis() {
        let mut m = Metrics::new();
        m.record_latency("rtt", Duration::from_micros(2_500));
        assert!((m.summary("rtt").mean - 2.5).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.incr("x");
        b.incr_by("x", 2);
        b.record("h", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.summary("h").count, 1);
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn clone_preserves_values_and_slots() {
        let mut m = Metrics::new();
        let id = m.register_counter("x");
        m.incr_id(id);
        let mut c = m.clone();
        c.incr_id(id); // handle remains valid for the clone
        assert_eq!(m.counter("x"), 1);
        assert_eq!(c.counter("x"), 2);
    }
}
