//! Lightweight metrics registry: counters and raw-sample histograms.
//!
//! Experiments run at modest scale (thousands–millions of samples), so
//! histograms keep raw `f64` samples and compute exact quantiles on demand.
//! Keys are `String` so protocol layers can build dimensioned names like
//! `"validate.rtt.n=64"` without a global enum.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Duration;

/// A histogram over raw samples with exact quantiles.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Exact quantile by nearest-rank; `q` in `[0,1]`. 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Minimum sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Condensed summary for reports.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: self.min(),
            max: self.max(),
        }
    }

    /// Borrow the raw samples (for custom analyses in experiments).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Point-in-time condensation of a histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Registry of named counters and histograms.
///
/// Uses `BTreeMap` so iteration (reporting) is deterministically ordered.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn incr_by(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Increment the named counter by one.
    #[inline]
    pub fn incr(&mut self, name: &str) {
        self.incr_by(name, 1);
    }

    /// Read a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a raw sample into the named histogram.
    pub fn record(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::default();
            h.record(v);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Record a duration in **milliseconds** into the named histogram,
    /// the convention used by all latency metrics in this workspace.
    #[inline]
    pub fn record_latency(&mut self, name: &str, d: Duration) {
        self.record(name, d.as_millis_f64());
    }

    /// Borrow a histogram if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Summary of a histogram (default/empty when absent).
    pub fn summary(&self, name: &str) -> Summary {
        self.histograms
            .get(name)
            .map(Histogram::summary)
            .unwrap_or_default()
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge another registry into this one (used to aggregate runs).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            self.incr_by(k, *v);
        }
        for (k, h) in &other.histograms {
            for &s in h.samples() {
                self.record(k, s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msgs");
        m.incr_by("msgs", 4);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_quantiles_exact() {
        let mut h = Histogram::default();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.95), 95.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn latency_recorded_in_millis() {
        let mut m = Metrics::new();
        m.record_latency("rtt", Duration::from_micros(2_500));
        assert!((m.summary("rtt").mean - 2.5).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.incr("x");
        b.incr_by("x", 2);
        b.record("h", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.summary("h").count, 1);
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
