//! Deterministic pseudo-random number generation and the distributions the
//! experiments need.
//!
//! The simulator must be bit-for-bit reproducible from a seed, across crate
//! versions. We therefore ship a self-contained xoshiro256++ generator
//! (seeded through SplitMix64) rather than depending on an external RNG whose
//! stream might change between releases, and implement the handful of
//! distributions used by the latency / workload models: uniform, Bernoulli,
//! exponential, normal (Box–Muller), log-normal and Zipf.

/// SplitMix64 step, used for seeding and as a cheap stateless mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ deterministic generator.
///
/// Public API mirrors the subset of `rand::Rng` the simulator uses, so call
/// sites read naturally without the dependency.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng64 {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            s,
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator (for per-node streams).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be non-zero.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi]` inclusive.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "gen_range: lo > hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, len)`, for indexing.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.gen_below(len as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: true with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal deviate via Box–Muller (cached pair).
    pub fn gauss(&mut self) -> f64 {
        if let Some(g) = self.gauss_spare.take() {
            return g;
        }
        // Rejection-free polar-less form: u1 in (0,1], u2 in [0,1).
        let mut u1 = self.f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gauss()
    }

    /// Log-normal deviate parameterised by the *median* (`exp(mu)`) and
    /// `sigma`. Medians are the natural way to express network latency.
    #[inline]
    pub fn log_normal_median(&mut self, median: f64, sigma: f64) -> f64 {
        (median.ln() + sigma * self.gauss()).exp()
    }

    /// Exponential deviate with the given mean (`1/lambda`).
    pub fn exp_mean(&mut self, mean: f64) -> f64 {
        let mut u = self.f64();
        if u <= f64::MIN_POSITIVE {
            u = f64::MIN_POSITIVE;
        }
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

/// Zipf-distributed ranks in `1..=n` with exponent `s`, via precomputed CDF
/// and binary search. Good for the document-popularity workloads (D is small).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` ranks with skew `s` (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a 0-based index (rank-1), so it can be used directly to index
    /// a document table.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the domain is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn gen_below_is_in_range_and_covers() {
        let mut rng = Rng64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut rng = Rng64::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.gen_range(5, 8);
            assert!((5..=8).contains(&v));
            lo_seen |= v == 5;
            hi_seen |= v == 8;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Rng64::new(3);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gauss_mean_and_var_close() {
        let mut rng = Rng64::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gauss()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exp_mean_close() {
        let mut rng = Rng64::new(13);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exp_mean(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn log_normal_median_close() {
        let mut rng = Rng64::new(17);
        let n = 30_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.log_normal_median(10.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 10.0).abs() < 0.5, "median {median}");
    }

    #[test]
    fn zipf_skew_orders_frequencies() {
        let mut rng = Rng64::new(19);
        let z = Zipf::new(10, 1.0);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
        // All ranks reachable.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn zipf_zero_skew_roughly_uniform() {
        let mut rng = Rng64::new(23);
        let z = Zipf::new(8, 0.0);
        let mut counts = [0usize; 8];
        for _ in 0..16_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1600..2400).contains(&c), "count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left identity (astronomically unlikely)"
        );
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng64::new(31);
        let mut b = a.fork();
        let overlap = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(overlap < 3);
    }
}
