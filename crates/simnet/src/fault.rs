//! Deterministic fault injection: seeded message-level faults
//! (drop / duplicate / reorder / delay), directional link cuts, and
//! scheduled crashes, layered *behind* the network model.
//!
//! Design constraints (the reason this is its own subsystem rather than
//! more knobs on [`NetConfig`](crate::NetConfig)):
//!
//! * **Determinism** — every fault decision draws from a dedicated
//!   [`Rng64`] seeded from the [`FaultPlan`], never from the simulator's
//!   RNG. Installing no plan (or a plan whose rates are all zero) leaves
//!   the zero-fault event stream **byte-identical** to a simulator built
//!   without this module: no extra RNG draws, no extra queue entries, no
//!   changed sequence numbers.
//! * **Replayability** — a plan is pure data; the same plan + the same
//!   simulator seed reproduce the same faulted execution bit for bit.
//! * **Classes, not links** — fault rates attach to *link classes*: a
//!   default class plus per-node overrides (a "laggy master" is a node
//!   override with heavy jitter; "dup-heavy links" is a default class
//!   with a duplicate probability). The override of the *sending* node
//!   wins, then the receiving node's, then the default.
//!
//! The hook sits in the simulator's routing path (`Sim::flush`): after
//! the network model has decided a message is deliverable and sampled its
//! latency, the fault layer may veto it (cut, drop), delay it (jitter,
//! reorder spike) or duplicate it. Timer faults are expressed through the
//! crash schedule instead: timers of a crashed incarnation are suppressed
//! by the epoch stamp (see `Sim::restart_node`), which the fault engine
//! exercises constantly.

use std::collections::{BTreeMap, BTreeSet};

use crate::metrics::{CounterId, Metrics};
use crate::rng::Rng64;
use crate::time::Duration;
use crate::NodeId;

/// Per-link-class fault rates. All probabilities are independent
/// per-message Bernoulli trials; `0.0` disables the corresponding draw
/// entirely (no RNG consumption), so an all-zero `LinkFaults` is inert.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a deliverable message is silently dropped.
    pub drop: f64,
    /// Probability a deliverable message is delivered *twice* (the copy
    /// arrives after an extra delay in `(0, reorder_spike]`).
    pub duplicate: f64,
    /// Probability a message is held back by an extra delay in
    /// `(0, reorder_spike]`, letting later sends overtake it.
    pub reorder: f64,
    /// Scale of the reorder/duplicate extra delay.
    pub reorder_spike: Duration,
    /// Uniform extra delay `[min, max]` added to *every* message on the
    /// link class (a slow or congested path).
    pub jitter: Option<(Duration, Duration)>,
}

impl LinkFaults {
    /// The inert class: no drops, no duplicates, no reordering, no jitter.
    pub const fn none() -> Self {
        LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_spike: Duration::from_millis(50),
            jitter: None,
        }
    }

    /// True when this class can never perturb a message.
    pub fn is_inert(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.reorder <= 0.0 && self.jitter.is_none()
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self::none()
    }
}

/// A scheduled link cut between two node groups (every pair `a×b`),
/// optionally healing itself after `heal_after`.
#[derive(Clone, Debug)]
pub struct ScheduledCut {
    /// When the cut starts, relative to plan installation.
    pub at: Duration,
    /// When (relative to `at`) the cut heals; `None` = stays cut until
    /// [`Sim::fault_heal_all`](crate::Sim::fault_heal_all).
    pub heal_after: Option<Duration>,
    /// One side of the cut.
    pub a: Vec<NodeId>,
    /// The other side.
    pub b: Vec<NodeId>,
    /// `true` cuts only `a → b` traffic (asymmetric partition); `false`
    /// cuts both directions.
    pub oneway: bool,
}

/// A scheduled crash-stop, relative to plan installation. Recovery (with
/// or without an on-disk store) is the harness/scenario layer's job — the
/// simulator cannot rebuild a process from a journal by itself.
#[derive(Clone, Debug)]
pub struct ScheduledCrash {
    /// When the node crash-stops.
    pub at: Duration,
    /// The victim.
    pub node: NodeId,
}

/// A complete, seeded fault schedule: pure data, replayable bit for bit.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG (independent of the simulator seed).
    pub seed: u64,
    /// Fault rates of the default link class.
    pub default: LinkFaults,
    /// Per-node overrides: messages *sent by* (first) or *to* (second) an
    /// overridden node use that node's class instead of the default.
    pub node_overrides: BTreeMap<NodeId, LinkFaults>,
    /// Scheduled (and optionally self-healing) link cuts.
    pub cuts: Vec<ScheduledCut>,
    /// Scheduled crash-stops.
    pub crashes: Vec<ScheduledCrash>,
}

impl FaultPlan {
    /// An empty plan with the given fault-RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Set the default link class.
    pub fn with_default(mut self, faults: LinkFaults) -> Self {
        self.default = faults;
        self
    }

    /// Override the link class of one node (both directions).
    pub fn with_node(mut self, node: NodeId, faults: LinkFaults) -> Self {
        self.node_overrides.insert(node, faults);
        self
    }

    /// Schedule a cut between every pair in `a × b`.
    pub fn with_cut(mut self, cut: ScheduledCut) -> Self {
        self.cuts.push(cut);
        self
    }

    /// Schedule a crash-stop.
    pub fn with_crash(mut self, at: Duration, node: NodeId) -> Self {
        self.crashes.push(ScheduledCrash { at, node });
        self
    }
}

/// Pre-registered counters for each fault kind (`faults.*`).
struct FaultCounters {
    dropped: CounterId,
    duplicated: CounterId,
    reordered: CounterId,
    delayed: CounterId,
    cut: CounterId,
}

/// What the fault layer decided for one deliverable message.
pub(crate) enum Verdict {
    /// The message crosses a cut link: never delivered.
    Cut,
    /// The message is dropped by the link class.
    Drop,
    /// Deliver after `extra` additional delay; `duplicate_extra` is
    /// `Some(d)` when a second copy must be enqueued `d` after the
    /// original's (already extra-delayed) arrival.
    Deliver {
        extra: Duration,
        duplicate_extra: Option<Duration>,
    },
}

/// Installed fault state: the plan's link classes, the dedicated RNG, and
/// the live cut set. Owned by the simulator; mutated through `Sim`
/// helpers and scheduled plan actions.
pub(crate) struct FaultState {
    default: LinkFaults,
    overrides: BTreeMap<NodeId, LinkFaults>,
    rng: Rng64,
    /// Directional cut edges `(from, to)`.
    cut: BTreeSet<(NodeId, NodeId)>,
    counters: FaultCounters,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan, metrics: &mut Metrics) -> Self {
        FaultState {
            default: plan.default.clone(),
            overrides: plan.node_overrides.clone(),
            rng: Rng64::new(plan.seed),
            cut: BTreeSet::new(),
            counters: FaultCounters {
                dropped: metrics.register_counter("faults.dropped"),
                duplicated: metrics.register_counter("faults.duplicated"),
                reordered: metrics.register_counter("faults.reordered"),
                delayed: metrics.register_counter("faults.delayed"),
                cut: metrics.register_counter("faults.cut"),
            },
        }
    }

    pub(crate) fn cut_link(&mut self, from: NodeId, to: NodeId, oneway: bool) {
        self.cut.insert((from, to));
        if !oneway {
            self.cut.insert((to, from));
        }
    }

    pub(crate) fn heal_link(&mut self, a: NodeId, b: NodeId) {
        self.cut.remove(&(a, b));
        self.cut.remove(&(b, a));
    }

    pub(crate) fn heal_all(&mut self) {
        self.cut.clear();
    }

    pub(crate) fn set_class(&mut self, node: Option<NodeId>, faults: LinkFaults) {
        match node {
            Some(n) => {
                self.overrides.insert(n, faults);
            }
            None => self.default = faults,
        }
    }

    /// The link class governing a `from → to` message.
    fn class(&self, from: NodeId, to: NodeId) -> &LinkFaults {
        self.overrides
            .get(&from)
            .or_else(|| self.overrides.get(&to))
            .unwrap_or(&self.default)
    }

    /// Extra delay uniform in `(0, spike]` — never zero, so the
    /// perturbation is guaranteed to move the message.
    fn spike(&mut self, spike: Duration) -> Duration {
        let us = spike.as_micros().max(1);
        Duration::from_micros(self.rng.gen_range(1, us))
    }

    /// Decide the fate of one deliverable remote message. Draws from the
    /// dedicated fault RNG only, and only for non-zero rates — an inert
    /// class consumes no randomness at all.
    pub(crate) fn judge(&mut self, metrics: &mut Metrics, from: NodeId, to: NodeId) -> Verdict {
        if self.cut.contains(&(from, to)) {
            metrics.incr_id(self.counters.cut);
            return Verdict::Cut;
        }
        let lf = self.class(from, to).clone();
        if lf.drop > 0.0 && self.rng.chance(lf.drop) {
            metrics.incr_id(self.counters.dropped);
            return Verdict::Drop;
        }
        let mut extra = Duration::ZERO;
        if let Some((lo, hi)) = lf.jitter {
            extra += Duration::from_micros(self.rng.gen_range(lo.as_micros(), hi.as_micros()));
            metrics.incr_id(self.counters.delayed);
        }
        if lf.reorder > 0.0 && self.rng.chance(lf.reorder) {
            extra += self.spike(lf.reorder_spike);
            metrics.incr_id(self.counters.reordered);
        }
        let duplicate_extra = if lf.duplicate > 0.0 && self.rng.chance(lf.duplicate) {
            metrics.incr_id(self.counters.duplicated);
            Some(self.spike(lf.reorder_spike))
        } else {
            None
        };
        Verdict::Deliver {
            extra,
            duplicate_extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_class_is_detected() {
        assert!(LinkFaults::none().is_inert());
        let mut lf = LinkFaults::none();
        lf.duplicate = 0.1;
        assert!(!lf.is_inert());
        let mut lf = LinkFaults::none();
        lf.jitter = Some((Duration::ZERO, Duration::from_millis(1)));
        assert!(!lf.is_inert());
    }

    #[test]
    fn class_resolution_prefers_sender_then_receiver() {
        let mut plan = FaultPlan::new(1);
        let mut laggy = LinkFaults::none();
        laggy.reorder = 0.5;
        let mut lossy = LinkFaults::none();
        lossy.drop = 0.5;
        plan.node_overrides.insert(NodeId(1), laggy.clone());
        plan.node_overrides.insert(NodeId(2), lossy.clone());
        let mut m = Metrics::new();
        let st = FaultState::new(&plan, &mut m);
        assert_eq!(st.class(NodeId(1), NodeId(2)), &laggy);
        assert_eq!(st.class(NodeId(2), NodeId(1)), &lossy);
        assert_eq!(st.class(NodeId(0), NodeId(2)), &lossy);
        assert_eq!(st.class(NodeId(0), NodeId(3)), &LinkFaults::none());
    }

    #[test]
    fn directional_cut_blocks_one_way_only() {
        let mut m = Metrics::new();
        let mut st = FaultState::new(&FaultPlan::new(2), &mut m);
        st.cut_link(NodeId(1), NodeId(2), true);
        assert!(matches!(
            st.judge(&mut m, NodeId(1), NodeId(2)),
            Verdict::Cut
        ));
        assert!(matches!(
            st.judge(&mut m, NodeId(2), NodeId(1)),
            Verdict::Deliver { .. }
        ));
        st.heal_link(NodeId(1), NodeId(2));
        assert!(matches!(
            st.judge(&mut m, NodeId(1), NodeId(2)),
            Verdict::Deliver { .. }
        ));
        assert_eq!(m.counter("faults.cut"), 1);
    }

    #[test]
    fn symmetric_cut_blocks_both_ways_and_heal_all_clears() {
        let mut m = Metrics::new();
        let mut st = FaultState::new(&FaultPlan::new(3), &mut m);
        st.cut_link(NodeId(4), NodeId(5), false);
        assert!(matches!(
            st.judge(&mut m, NodeId(4), NodeId(5)),
            Verdict::Cut
        ));
        assert!(matches!(
            st.judge(&mut m, NodeId(5), NodeId(4)),
            Verdict::Cut
        ));
        st.heal_all();
        assert!(matches!(
            st.judge(&mut m, NodeId(4), NodeId(5)),
            Verdict::Deliver { .. }
        ));
    }

    #[test]
    fn inert_judgement_consumes_no_randomness() {
        let mut m = Metrics::new();
        let mut st = FaultState::new(&FaultPlan::new(7), &mut m);
        let before = st.rng.clone().next_u64();
        for _ in 0..100 {
            assert!(matches!(
                st.judge(&mut m, NodeId(0), NodeId(1)),
                Verdict::Deliver {
                    extra: Duration::ZERO,
                    duplicate_extra: None
                }
            ));
        }
        assert_eq!(st.rng.clone().next_u64(), before, "fault RNG advanced");
    }

    #[test]
    fn rates_fire_at_roughly_the_configured_frequency() {
        let mut plan = FaultPlan::new(11);
        plan.default.drop = 0.2;
        plan.default.duplicate = 0.3;
        let mut m = Metrics::new();
        let mut st = FaultState::new(&plan, &mut m);
        let mut drops = 0;
        let mut dups = 0;
        for _ in 0..10_000 {
            match st.judge(&mut m, NodeId(0), NodeId(1)) {
                Verdict::Drop => drops += 1,
                Verdict::Deliver {
                    duplicate_extra: Some(_),
                    ..
                } => dups += 1,
                _ => {}
            }
        }
        assert!((1700..2300).contains(&drops), "drops {drops}");
        // Duplicates are judged on the ~8000 non-dropped messages.
        assert!((2100..2700).contains(&dups), "dups {dups}");
        assert_eq!(m.counter("faults.dropped"), drops);
        assert_eq!(m.counter("faults.duplicated"), dups);
    }

    #[test]
    fn same_seed_same_verdict_stream() {
        let run = |seed| {
            let mut plan = FaultPlan::new(seed);
            plan.default.drop = 0.1;
            plan.default.reorder = 0.2;
            plan.default.jitter = Some((Duration::from_micros(10), Duration::from_millis(2)));
            let mut m = Metrics::new();
            let mut st = FaultState::new(&plan, &mut m);
            let mut log = Vec::new();
            for i in 0..500u32 {
                match st.judge(&mut m, NodeId(i % 5), NodeId((i + 1) % 5)) {
                    Verdict::Cut => log.push((i, 0, 0)),
                    Verdict::Drop => log.push((i, 1, 0)),
                    Verdict::Deliver { extra, .. } => log.push((i, 2, extra.as_micros())),
                }
            }
            log
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
