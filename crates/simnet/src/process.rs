//! The interface between protocol code and the simulator: [`Process`] is the
//! node behaviour, [`Ctx`] is the capability handle it receives on every
//! upcall (send messages, arm timers, read the clock, record metrics).
//!
//! `Ctx` buffers outputs; the simulator flushes them after the upcall
//! returns. This keeps protocol handlers free of simulator borrows and makes
//! them unit-testable with a synthetic `Ctx`.

use crate::metrics::Metrics;
use crate::rng::Rng64;
use crate::time::{Duration, Time};
use crate::NodeId;

/// Identifies an armed timer so it can be cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// Buffered effects produced by one upcall.
#[derive(Debug, Default)]
pub(crate) struct Outbox<M> {
    pub msgs: Vec<(NodeId, M)>,
    pub timers: Vec<(TimerId, Duration, u64)>,
    pub cancels: Vec<TimerId>,
    pub halt: bool,
}

impl<M> Outbox<M> {
    pub(crate) fn new() -> Self {
        Outbox {
            msgs: Vec::new(),
            timers: Vec::new(),
            cancels: Vec::new(),
            halt: false,
        }
    }
}

/// The buffered outputs of one upcall, handed back to an external driver.
///
/// Inside the simulator the [`Sim`](crate::Sim) event loop consumes these
/// directly; real transports (e.g. the `wire` crate's TCP runner) obtain
/// them via [`Ctx::detached`] + [`Ctx::take_effects`] and execute them
/// against sockets and a real-time timer wheel.
#[derive(Debug)]
pub struct Effects<M> {
    /// Messages to deliver, in send order.
    pub msgs: Vec<(NodeId, M)>,
    /// Timers armed: `(id, delay, tag)`.
    pub timers: Vec<(TimerId, Duration, u64)>,
    /// Timers cancelled.
    pub cancels: Vec<TimerId>,
    /// The node asked to stop itself.
    pub halt: bool,
}

/// Capability handle passed to every [`Process`] upcall.
pub struct Ctx<'a, M> {
    pub(crate) now: Time,
    pub(crate) self_id: NodeId,
    pub(crate) rng: &'a mut Rng64,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) timer_seq: &'a mut u64,
    pub(crate) out: Outbox<M>,
}

impl<'a, M> Ctx<'a, M> {
    /// Build a context detached from any simulator, for driving a
    /// [`Process`] over a real transport (see the `wire` crate). The caller
    /// owns the RNG, metrics registry and timer sequence per node and
    /// executes the buffered [`Effects`] after the upcall returns.
    pub fn detached(
        now: Time,
        self_id: NodeId,
        rng: &'a mut Rng64,
        metrics: &'a mut Metrics,
        timer_seq: &'a mut u64,
    ) -> Self {
        Ctx {
            now,
            self_id,
            rng,
            metrics,
            timer_seq,
            out: Outbox::new(),
        }
    }

    /// Consume the context, returning the effects buffered during the
    /// upcall (companion to [`Ctx::detached`]).
    pub fn take_effects(self) -> Effects<M> {
        Effects {
            msgs: self.out.msgs,
            timers: self.out.timers,
            cancels: self.out.cancels,
            halt: self.out.halt,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The node this upcall runs on.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Deterministic RNG (shared stream, stable given the event order).
    #[inline]
    pub fn rng(&mut self) -> &mut Rng64 {
        self.rng
    }

    /// Shared metrics registry.
    #[inline]
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Send `msg` to `to` (may be `self`). Delivery time and loss are decided
    /// by the network model when the simulator flushes the outbox.
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.msgs.push((to, msg));
    }

    /// Arm a one-shot timer firing after `delay`, carrying the opaque `tag`
    /// back to [`Process::on_timer`]. Returns an id usable with
    /// [`Ctx::cancel_timer`].
    pub fn set_timer(&mut self, delay: Duration, tag: u64) -> TimerId {
        *self.timer_seq += 1;
        let id = TimerId(*self.timer_seq);
        self.out.timers.push((id, delay, tag));
        id
    }

    /// Cancel a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.out.cancels.push(id);
    }

    /// Request the simulator to stop this node after the upcall (used by
    /// graceful-leave logic once goodbyes are sent).
    pub fn halt_self(&mut self) {
        self.out.halt = true;
    }
}

/// A node behaviour: a deterministic state machine driven by messages and
/// timers.
///
/// All methods get a [`Ctx`] whose buffered effects are applied after the
/// call returns; re-entrancy is impossible by construction.
pub trait Process<M> {
    /// Called once when the node is added to the simulation.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// A message arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// A timer armed via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// The node is being removed gracefully (leave, not crash): last chance
    /// to send goodbyes. Messages sent here are still delivered; timers armed
    /// here are discarded.
    fn on_stop(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_effects() {
        let mut rng = Rng64::new(1);
        let mut metrics = Metrics::new();
        let mut seq = 0u64;
        let mut ctx: Ctx<'_, &'static str> = Ctx {
            now: Time::from_millis(1),
            self_id: NodeId(3),
            rng: &mut rng,
            metrics: &mut metrics,
            timer_seq: &mut seq,
            out: Outbox::new(),
        };
        ctx.send(NodeId(4), "hello");
        let t1 = ctx.set_timer(Duration::from_millis(10), 7);
        let t2 = ctx.set_timer(Duration::from_millis(20), 8);
        ctx.cancel_timer(t1);
        assert_ne!(t1, t2);
        assert_eq!(ctx.out.msgs.len(), 1);
        assert_eq!(ctx.out.timers.len(), 2);
        assert_eq!(ctx.out.cancels, vec![t1]);
        assert_eq!(ctx.now().as_millis(), 1);
        assert_eq!(ctx.self_id(), NodeId(3));
    }

    #[test]
    fn detached_ctx_hands_back_effects() {
        let mut rng = Rng64::new(9);
        let mut metrics = Metrics::new();
        let mut seq = 0u64;
        let mut ctx: Ctx<'_, u32> = Ctx::detached(
            Time::from_millis(7),
            NodeId(1),
            &mut rng,
            &mut metrics,
            &mut seq,
        );
        ctx.send(NodeId(2), 42);
        let t = ctx.set_timer(Duration::from_millis(3), 5);
        ctx.cancel_timer(t);
        ctx.halt_self();
        let eff = ctx.take_effects();
        assert_eq!(eff.msgs, vec![(NodeId(2), 42)]);
        assert_eq!(eff.timers, vec![(t, Duration::from_millis(3), 5)]);
        assert_eq!(eff.cancels, vec![t]);
        assert!(eff.halt);
    }

    #[test]
    fn timer_ids_are_unique_across_ctxs() {
        let mut rng = Rng64::new(1);
        let mut metrics = Metrics::new();
        let mut seq = 0u64;
        let id_a = {
            let mut ctx: Ctx<'_, ()> = Ctx {
                now: Time::ZERO,
                self_id: NodeId(0),
                rng: &mut rng,
                metrics: &mut metrics,
                timer_seq: &mut seq,
                out: Outbox::new(),
            };
            ctx.set_timer(Duration::from_millis(1), 0)
        };
        let id_b = {
            let mut ctx: Ctx<'_, ()> = Ctx {
                now: Time::ZERO,
                self_id: NodeId(0),
                rng: &mut rng,
                metrics: &mut metrics,
                timer_seq: &mut seq,
                out: Outbox::new(),
            };
            ctx.set_timer(Duration::from_millis(1), 0)
        };
        assert_ne!(id_a, id_b);
    }
}
