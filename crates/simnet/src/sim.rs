//! The discrete-event simulation driver.
//!
//! A [`Sim`] owns a set of nodes (each a boxed [`Process`]), a priority queue
//! of pending events (message deliveries, timer firings, scripted control
//! actions), a [`NetConfig`] deciding per-message latency/loss, a seeded
//! deterministic RNG, and a [`Metrics`] registry. Executions are totally
//! deterministic given the seed and the sequence of API calls: ties in the
//! event queue are broken by insertion sequence number.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::fault::{FaultPlan, FaultState, LinkFaults, Verdict};
use crate::metrics::{CounterId, Metrics};
use crate::net::{MsgMeta, NetConfig};
use crate::process::{Ctx, Outbox, Process, TimerId};
use crate::rng::Rng64;
use crate::time::{Duration, Time};
use crate::NodeId;

/// Lifecycle state of a simulated node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// Running: receives messages and timers.
    Up,
    /// Crash-stopped: silently drops everything (fail-stop model).
    Crashed,
    /// Left gracefully via [`Sim::remove`].
    Departed,
}

/// One scheduled control action (scripted churn, workload steps, …).
pub type ControlFn<M> = Box<dyn FnOnce(&mut Sim<M>)>;

enum EventKind<M> {
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: M,
    },
    Timer {
        node: NodeId,
        id: TimerId,
        tag: u64,
        /// Incarnation of the node that armed the timer: a timer armed
        /// before a crash must not fire into a restarted process.
        epoch: u32,
    },
    Control(ControlFn<M>),
}

struct Entry<M> {
    at: Time,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Object-safe supertrait adding downcasting, so experiments can inspect
/// node state after a run. Blanket-implemented for every `Process + Any`.
pub trait ProcessAny<M>: Process<M> {
    /// Upcast to `&dyn Any` for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any` for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M, T: Process<M> + Any> ProcessAny<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Slot<M> {
    proc: Option<Box<dyn ProcessAny<M>>>,
    state: NodeState,
    /// Incarnation counter, bumped by [`Sim::restart_node`]. Timers are
    /// stamped with it so a restarted process never receives the previous
    /// incarnation's timers (messages still arrive: the network does not
    /// know the process behind an address was replaced).
    epoch: u32,
}

/// Pre-registered handles for the counters the event loop bumps on every
/// message and timer — resolved to array slots once at construction so the
/// hot path never does a by-name map lookup.
struct HotCounters {
    nodes_added: CounterId,
    crashes: CounterId,
    restarts: CounterId,
    departures: CounterId,
    msgs_sent: CounterId,
    msgs_delivered: CounterId,
    msgs_dropped: CounterId,
    msgs_to_dead: CounterId,
    timers_fired: CounterId,
    timers_cancelled: CounterId,
}

impl HotCounters {
    fn register(m: &mut Metrics) -> Self {
        HotCounters {
            nodes_added: m.register_counter("sim.nodes_added"),
            crashes: m.register_counter("sim.crashes"),
            restarts: m.register_counter("sim.restarts"),
            departures: m.register_counter("sim.departures"),
            msgs_sent: m.register_counter("sim.msgs_sent"),
            msgs_delivered: m.register_counter("sim.msgs_delivered"),
            msgs_dropped: m.register_counter("sim.msgs_dropped"),
            msgs_to_dead: m.register_counter("sim.msgs_to_dead"),
            timers_fired: m.register_counter("sim.timers_fired"),
            timers_cancelled: m.register_counter("sim.timers_cancelled"),
        }
    }
}

/// Sizes (and classifies) a message for wire accounting; typically
/// `|m| MsgMeta { bytes: wire-encoded frame length, class: ... }`.
pub type WireMeter<M> = Box<dyn Fn(&M) -> MsgMeta>;

/// Clones a message so the fault layer can duplicate deliveries
/// (installed with [`Sim::set_fault_plan`]; typically `|m| m.clone()`).
/// A function type rather than an `M: Clone` bound so fault injection
/// stays opt-in for message types that are not `Clone`.
pub type MsgCloner<M> = Box<dyn Fn(&M) -> M>;

/// Pre-registered counter pair of one wire message class.
struct WireClassSlot {
    class: &'static str,
    bytes: CounterId,
    msgs: CounterId,
}

/// Per-message wire accounting state (absent unless a meter is installed,
/// so un-metered simulations pay nothing and expose no extra counters).
struct WireAccounting<M> {
    meter: WireMeter<M>,
    total_bytes: CounterId,
    total_msgs: CounterId,
    /// Class -> counter handles; a handful of classes, linear scan.
    classes: Vec<WireClassSlot>,
}

/// The simulator. See the crate docs for the execution model.
pub struct Sim<M> {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Entry<M>>,
    nodes: Vec<Slot<M>>,
    rng: Rng64,
    metrics: Metrics,
    hot: HotCounters,
    events_processed: u64,
    net: NetConfig,
    wire: Option<WireAccounting<M>>,
    /// Fault-injection state + message cloner (absent unless a
    /// [`FaultPlan`] is installed, so un-faulted simulations pay nothing
    /// and their event stream is untouched).
    fault: Option<(FaultState, MsgCloner<M>)>,
    timer_seq: u64,
    cancelled: BTreeSet<TimerId>,
    trace_enabled: bool,
    trace: Vec<String>,
    trace_cap: usize,
}

impl<M: std::fmt::Debug + 'static> Sim<M> {
    /// Create a simulator with the given RNG seed and network model.
    pub fn new(seed: u64, net: NetConfig) -> Self {
        let mut metrics = Metrics::new();
        let hot = HotCounters::register(&mut metrics);
        Sim {
            now: Time::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            rng: Rng64::new(seed),
            metrics,
            hot,
            events_processed: 0,
            net,
            wire: None,
            fault: None,
            timer_seq: 0,
            cancelled: BTreeSet::new(),
            trace_enabled: false,
            trace: Vec::new(),
            trace_cap: 100_000,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Shared metrics registry (read).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Shared metrics registry (write, e.g. to pre-register or record
    /// workload-level metrics). Do not replace the registry wholesale: the
    /// simulator holds pre-registered [`CounterId`] handles into it.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Network configuration (mutable: partitions/loss can change mid-run).
    pub fn net_mut(&mut self) -> &mut NetConfig {
        &mut self.net
    }

    /// The simulator RNG (e.g. for workload decisions in control scripts).
    pub fn rng_mut(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    /// Install a wire meter: from now on every sent message is sized and
    /// classified through `meter`, its bytes counted into
    /// `wire.bytes.total` / `wire.bytes.<class>` (plus `wire.msgs.*`
    /// message counts), and — when [`NetConfig::bandwidth`] is set — its
    /// serialization delay charged on top of the sampled latency.
    ///
    /// Metering alone never changes behaviour: it draws no randomness and
    /// adds no delay unless a bandwidth limit is configured.
    pub fn set_wire_meter(&mut self, meter: WireMeter<M>) {
        let total_bytes = self.metrics.register_counter("wire.bytes.total");
        let total_msgs = self.metrics.register_counter("wire.msgs.total");
        self.wire = Some(WireAccounting {
            meter,
            total_bytes,
            total_msgs,
            classes: Vec::new(),
        });
    }

    /// Size `msg` through the installed meter (if any), bumping the byte
    /// counters; returns the encoded size for the bandwidth charge.
    fn meter_msg(&mut self, msg: &M) -> usize {
        let Some(wire) = &mut self.wire else {
            return 0;
        };
        let meta = (wire.meter)(msg);
        self.metrics.incr_id_by(wire.total_bytes, meta.bytes as u64);
        self.metrics.incr_id(wire.total_msgs);
        let slot = match wire.classes.iter().find(|s| s.class == meta.class) {
            Some(s) => s,
            None => {
                let bytes = self
                    .metrics
                    .register_counter(&format!("wire.bytes.{}", meta.class));
                let msgs = self
                    .metrics
                    .register_counter(&format!("wire.msgs.{}", meta.class));
                wire.classes.push(WireClassSlot {
                    class: meta.class,
                    bytes,
                    msgs,
                });
                wire.classes.last().expect("just pushed")
            }
        };
        let (b, m) = (slot.bytes, slot.msgs);
        self.metrics.incr_id_by(b, meta.bytes as u64);
        self.metrics.incr_id(m);
        meta.bytes
    }

    /// Install a seeded [`FaultPlan`]: from now on every deliverable
    /// remote message passes through the fault layer (drop / duplicate /
    /// reorder / jitter per link class, directional cuts), and the plan's
    /// scheduled cuts and crashes are queued as control events. `cloner`
    /// produces the second copy of duplicated messages.
    ///
    /// Fault decisions draw from a dedicated RNG seeded by the plan, so
    /// installing an inert plan (all rates zero, nothing scheduled)
    /// leaves the simulated event stream identical to not installing one
    /// at all — only the `faults.*` counters (all zero) appear.
    pub fn set_fault_plan(&mut self, plan: FaultPlan, cloner: MsgCloner<M>) {
        let state = FaultState::new(&plan, &mut self.metrics);
        self.fault = Some((state, cloner));
        for cut in &plan.cuts {
            let (a, b, oneway) = (cut.a.clone(), cut.b.clone(), cut.oneway);
            self.schedule_in(
                cut.at,
                Box::new(move |s: &mut Sim<M>| {
                    for &x in &a {
                        for &y in &b {
                            s.fault_cut(x, y, oneway);
                        }
                    }
                }),
            );
            if let Some(heal_after) = cut.heal_after {
                let (a, b) = (cut.a.clone(), cut.b.clone());
                self.schedule_in(
                    cut.at + heal_after,
                    Box::new(move |s: &mut Sim<M>| {
                        for &x in &a {
                            for &y in &b {
                                s.fault_heal(x, y);
                            }
                        }
                    }),
                );
            }
        }
        for crash in &plan.crashes {
            let node = crash.node;
            self.schedule_in(crash.at, Box::new(move |s: &mut Sim<M>| s.crash(node)));
        }
    }

    /// True when a [`FaultPlan`] is installed.
    pub fn has_fault_plan(&self) -> bool {
        self.fault.is_some()
    }

    fn fault_state_mut(&mut self) -> &mut FaultState {
        &mut self
            .fault
            .as_mut()
            .expect("install a FaultPlan first (Sim::set_fault_plan)")
            .0
    }

    /// Cut the `a → b` link (and `b → a` unless `oneway`) at the fault
    /// layer. Unlike [`NetConfig::partition`], cuts can be asymmetric and
    /// are bookkept by the fault engine (`faults.cut` counts vetoed
    /// messages). Requires an installed plan.
    pub fn fault_cut(&mut self, a: NodeId, b: NodeId, oneway: bool) {
        self.fault_state_mut().cut_link(a, b, oneway);
    }

    /// Heal a fault-layer cut (both directions). Requires an installed plan.
    pub fn fault_heal(&mut self, a: NodeId, b: NodeId) {
        self.fault_state_mut().heal_link(a, b);
    }

    /// Heal every fault-layer cut. Requires an installed plan.
    pub fn fault_heal_all(&mut self) {
        self.fault_state_mut().heal_all();
    }

    /// Replace the fault class of one node (`Some`) or the default class
    /// (`None`) mid-run. Requires an installed plan.
    pub fn set_link_faults(&mut self, node: Option<NodeId>, faults: LinkFaults) {
        self.fault_state_mut().set_class(node, faults);
    }

    /// Enable/disable message tracing (debug aid; capped buffer).
    pub fn set_trace(&mut self, on: bool) {
        self.trace_enabled = on;
    }

    /// Drain the trace buffer.
    pub fn take_trace(&mut self) -> Vec<String> {
        std::mem::take(&mut self.trace)
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Total events executed so far (deliveries, timers, control actions,
    /// drops — everything popped by [`Sim::step`]). The perf harness
    /// divides this by wall-clock time for a sim-events/sec figure.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Add a node and invoke its `on_start` immediately (at the current time).
    pub fn add_node<P: Process<M> + Any>(&mut self, proc: P) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Slot {
            proc: Some(Box::new(proc)),
            state: NodeState::Up,
            epoch: 0,
        });
        self.metrics.incr_id(self.hot.nodes_added);
        self.dispatch(id, |p, ctx| p.on_start(ctx));
        id
    }

    /// Lifecycle state of a node.
    pub fn node_state(&self, id: NodeId) -> NodeState {
        self.nodes[id.0 as usize].state
    }

    /// Ids of all nodes currently `Up`.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.nodes[n.0 as usize].state == NodeState::Up)
            .collect()
    }

    /// Total number of node slots ever created.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Downcast a node's process state for inspection.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id.0 as usize]
            .proc
            .as_ref()
            .and_then(|p| p.as_any().downcast_ref::<T>())
    }

    /// Downcast a node's process state for mutation (test/debug only).
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.0 as usize]
            .proc
            .as_mut()
            .and_then(|p| p.as_any_mut().downcast_mut::<T>())
    }

    /// Crash-stop a node: it silently drops all future messages and timers.
    pub fn crash(&mut self, id: NodeId) {
        let slot = &mut self.nodes[id.0 as usize];
        if slot.state == NodeState::Up {
            slot.state = NodeState::Crashed;
            self.metrics.incr_id(self.hot.crashes);
        }
    }

    /// Restart a crashed node with a replacement process at the same
    /// address — the crash-with-disk scenario: the caller builds `proc`
    /// from whatever the dead incarnation persisted (see the `store`
    /// crate) and the node rejoins the network locally instead of relying
    /// on peer-side takeover alone.
    ///
    /// The previous incarnation's pending timers are suppressed (they
    /// belong to the dead process); in-flight *messages* to the address
    /// are still delivered, exactly as a real network would. `on_start`
    /// runs at the current simulated time. Panics if the node is not
    /// crashed.
    pub fn restart_node<P: Process<M> + Any>(&mut self, id: NodeId, proc: P) {
        let slot = &mut self.nodes[id.0 as usize];
        assert_eq!(
            slot.state,
            NodeState::Crashed,
            "only crashed nodes can be restarted"
        );
        slot.proc = Some(Box::new(proc));
        slot.state = NodeState::Up;
        slot.epoch += 1;
        self.metrics.incr_id(self.hot.restarts);
        self.dispatch(id, |p, ctx| p.on_start(ctx));
    }

    /// Gracefully remove a node: `on_stop` runs first (its goodbye messages
    /// are delivered; timers it arms are discarded), then the node stops.
    pub fn remove(&mut self, id: NodeId) {
        if self.nodes[id.0 as usize].state != NodeState::Up {
            return;
        }
        self.dispatch_stop(id);
        self.nodes[id.0 as usize].state = NodeState::Departed;
        self.metrics.incr_id(self.hot.departures);
    }

    /// Inject a message "from outside the network" (e.g. a user action).
    /// Delivered after the local-delay latency.
    pub fn send_external(&mut self, to: NodeId, msg: M) {
        // Metered like any other traffic (a real client crosses the wire
        // too) but never bandwidth-charged: local dispatch.
        self.meter_msg(&msg);
        let at = self.now + self.net.local_delay;
        let seq = self.next_seq();
        self.queue.push(Entry {
            at,
            seq,
            kind: EventKind::Deliver { to, from: to, msg },
        });
    }

    /// Schedule a control closure to run at absolute time `at`.
    pub fn schedule_at(&mut self, at: Time, f: ControlFn<M>) {
        assert!(at >= self.now, "scheduling in the past");
        let seq = self.next_seq();
        self.queue.push(Entry {
            at,
            seq,
            kind: EventKind::Control(f),
        });
    }

    /// Schedule a control closure to run after `delay`.
    pub fn schedule_in(&mut self, delay: Duration, f: ControlFn<M>) {
        self.schedule_at(self.now + delay, f);
    }

    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn ProcessAny<M>, &mut Ctx<'_, M>),
    {
        let mut proc = match self.nodes[node.0 as usize].proc.take() {
            Some(p) => p,
            None => return, // re-entrant dispatch is impossible; defensive
        };
        let mut ctx = Ctx {
            now: self.now,
            self_id: node,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            timer_seq: &mut self.timer_seq,
            out: Outbox::new(),
        };
        f(proc.as_mut(), &mut ctx);
        let out = ctx.out;
        self.nodes[node.0 as usize].proc = Some(proc);
        self.flush(node, out, true);
    }

    fn dispatch_stop(&mut self, node: NodeId) {
        let mut proc = match self.nodes[node.0 as usize].proc.take() {
            Some(p) => p,
            None => return,
        };
        let mut ctx = Ctx {
            now: self.now,
            self_id: node,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            timer_seq: &mut self.timer_seq,
            out: Outbox::new(),
        };
        proc.on_stop(&mut ctx);
        let out = ctx.out;
        self.nodes[node.0 as usize].proc = Some(proc);
        // Goodbye messages fly; timers from a departing node are meaningless.
        self.flush(node, out, false);
    }

    fn flush(&mut self, from: NodeId, out: Outbox<M>, allow_timers: bool) {
        for (to, msg) in out.msgs {
            self.metrics.incr_id(self.hot.msgs_sent);
            let bytes = self.meter_msg(&msg);
            match self.net.route_sized(&mut self.rng, from, to, bytes) {
                Some(mut delay) => {
                    // Fault layer: may veto, delay or duplicate the
                    // deliverable message. Draws only from the plan's own
                    // RNG; absent a plan this is a single `None` check.
                    let mut duplicate: Option<(M, Duration)> = None;
                    if from != to {
                        if let Some((fault, cloner)) = self.fault.as_mut() {
                            match fault.judge(&mut self.metrics, from, to) {
                                Verdict::Cut | Verdict::Drop => {
                                    self.metrics.incr_id(self.hot.msgs_dropped);
                                    continue;
                                }
                                Verdict::Deliver {
                                    extra,
                                    duplicate_extra,
                                } => {
                                    delay += extra;
                                    if let Some(d) = duplicate_extra {
                                        duplicate = Some((cloner(&msg), delay + d));
                                    }
                                }
                            }
                        }
                    }
                    if self.trace_enabled && self.trace.len() < self.trace_cap {
                        self.trace.push(format!(
                            "{} {:?} -> {:?} (+{}) {:?}",
                            self.now, from, to, delay, msg
                        ));
                    }
                    let at = self.now + delay;
                    let seq = self.next_seq();
                    self.queue.push(Entry {
                        at,
                        seq,
                        kind: EventKind::Deliver { to, from, msg },
                    });
                    if let Some((copy, dup_delay)) = duplicate {
                        // The duplicate crosses the wire too: meter it and
                        // deliver it after its extra delay.
                        self.meter_msg(&copy);
                        let at = self.now + dup_delay;
                        let seq = self.next_seq();
                        self.queue.push(Entry {
                            at,
                            seq,
                            kind: EventKind::Deliver {
                                to,
                                from,
                                msg: copy,
                            },
                        });
                    }
                }
                None => {
                    self.metrics.incr_id(self.hot.msgs_dropped);
                }
            }
        }
        if allow_timers {
            let epoch = self.nodes[from.0 as usize].epoch;
            for (id, delay, tag) in out.timers {
                let at = self.now + delay;
                let seq = self.next_seq();
                self.queue.push(Entry {
                    at,
                    seq,
                    kind: EventKind::Timer {
                        node: from,
                        id,
                        tag,
                        epoch,
                    },
                });
            }
        }
        for id in out.cancels {
            self.cancelled.insert(id);
        }
        if out.halt {
            // Node asked to stop itself (after a graceful handoff).
            let slot = &mut self.nodes[from.0 as usize];
            if slot.state == NodeState::Up {
                slot.state = NodeState::Departed;
                self.metrics.incr_id(self.hot.departures);
            }
        }
    }

    /// Execute the single earliest pending event. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let entry = match self.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        self.events_processed += 1;
        match entry.kind {
            EventKind::Deliver { to, from, msg } => {
                if self.nodes[to.0 as usize].state == NodeState::Up {
                    self.metrics.incr_id(self.hot.msgs_delivered);
                    self.dispatch(to, |p, ctx| p.on_message(ctx, from, msg));
                } else {
                    self.metrics.incr_id(self.hot.msgs_to_dead);
                }
            }
            EventKind::Timer {
                node,
                id,
                tag,
                epoch,
            } => {
                let slot = &self.nodes[node.0 as usize];
                if self.cancelled.remove(&id) {
                    self.metrics.incr_id(self.hot.timers_cancelled);
                } else if slot.state == NodeState::Up && slot.epoch == epoch {
                    self.metrics.incr_id(self.hot.timers_fired);
                    self.dispatch(node, |p, ctx| p.on_timer(ctx, tag));
                }
            }
            EventKind::Control(f) => {
                f(self);
            }
        }
        true
    }

    /// Run all events with `time <= until`, then set the clock to `until`.
    pub fn run_until(&mut self, until: Time) {
        while let Some(head) = self.queue.peek() {
            if head.at > until {
                break;
            }
            self.step();
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Run for `d` more simulated time.
    pub fn run_for(&mut self, d: Duration) {
        let target = self.now + d;
        self.run_until(target);
    }

    /// Run until the event queue is completely empty or `horizon` is hit.
    /// Only safe when no recurring timers are armed; mainly for unit tests.
    pub fn run_to_quiescence(&mut self, horizon: Time) {
        while let Some(head) = self.queue.peek() {
            if head.at > horizon {
                break;
            }
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(#[allow(dead_code)] u32),
    }

    /// Test process: replies to pings, counts pongs, re-arms a periodic timer.
    struct Echo {
        pongs: u32,
        ticks: u32,
        peer: Option<NodeId>,
    }

    impl Process<Msg> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.set_timer(Duration::from_millis(10), 1);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(n) => ctx.send(from, Msg::Pong(n)),
                Msg::Pong(_) => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
            if tag == 1 {
                self.ticks += 1;
                if let Some(peer) = self.peer {
                    ctx.send(peer, Msg::Ping(self.ticks));
                }
                if self.ticks < 5 {
                    ctx.set_timer(Duration::from_millis(10), 1);
                }
            }
        }
    }

    fn new_sim() -> Sim<Msg> {
        let mut net = NetConfig::lan();
        net.latency = crate::net::LatencyModel::Constant(Duration::from_millis(1));
        Sim::new(42, net)
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut sim = new_sim();
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let _a = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        // b has no peer so only a sends pings: 5 ticks -> 5 pongs back to a.
        sim.run_until(Time::from_secs(1));
        let a_state = sim.node_as::<Echo>(_a).unwrap();
        assert_eq!(a_state.pongs, 5);
        assert_eq!(a_state.ticks, 5);
        assert_eq!(sim.metrics().counter("sim.msgs_delivered"), 10);
    }

    #[test]
    fn crash_stops_message_and_timer_delivery() {
        let mut sim = new_sim();
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let a = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        sim.run_until(Time::from_millis(15)); // one tick happened
        sim.crash(b);
        sim.run_until(Time::from_secs(1));
        let a_state = sim.node_as::<Echo>(a).unwrap();
        assert_eq!(a_state.ticks, 5, "a keeps ticking");
        assert_eq!(a_state.pongs, 1, "only the pre-crash ping was answered");
        assert_eq!(sim.node_state(b), NodeState::Crashed);
        assert!(sim.metrics().counter("sim.msgs_to_dead") >= 4);
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let run = |seed: u64| {
            let mut net = NetConfig::lan();
            net.loss = 0.1;
            let mut sim: Sim<Msg> = Sim::new(seed, net);
            let b = sim.add_node(Echo {
                pongs: 0,
                ticks: 0,
                peer: None,
            });
            let _a = sim.add_node(Echo {
                pongs: 0,
                ticks: 0,
                peer: Some(b),
            });
            sim.run_until(Time::from_secs(2));
            (
                sim.metrics().counter("sim.msgs_delivered"),
                sim.metrics().counter("sim.msgs_dropped"),
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn restart_replaces_process_and_suppresses_stale_timers() {
        let mut sim = new_sim();
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let a = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        sim.run_until(Time::from_millis(15)); // one tick; next timer armed
        sim.crash(a);
        sim.restart_node(
            a,
            Echo {
                pongs: 0,
                ticks: 0,
                peer: Some(b),
            },
        );
        sim.run_until(Time::from_secs(1));
        let st = sim.node_as::<Echo>(a).unwrap();
        // Exactly the fresh incarnation's 5 ticks/pings: a leaked timer
        // from the dead incarnation would produce a 6th ping.
        assert_eq!(st.ticks, 5);
        assert_eq!(st.pongs, 5);
        assert_eq!(sim.node_state(a), NodeState::Up);
        assert_eq!(sim.metrics().counter("sim.restarts"), 1);
        assert_eq!(sim.metrics().counter("sim.crashes"), 1);
    }

    #[test]
    #[should_panic(expected = "only crashed nodes")]
    fn restart_of_a_live_node_panics() {
        let mut sim = new_sim();
        let a = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        sim.restart_node(
            a,
            Echo {
                pongs: 0,
                ticks: 0,
                peer: None,
            },
        );
    }

    #[test]
    fn control_events_run_at_scheduled_time() {
        let mut sim = new_sim();
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        sim.schedule_at(
            Time::from_millis(25),
            Box::new(move |s: &mut Sim<Msg>| {
                s.crash(b);
                assert_eq!(s.now().as_millis(), 25);
            }),
        );
        sim.run_until(Time::from_secs(1));
        assert_eq!(sim.node_state(b), NodeState::Crashed);
    }

    #[test]
    fn graceful_remove_delivers_goodbyes() {
        struct Goodbye {
            target: NodeId,
        }
        impl Process<Msg> for Goodbye {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {}
            fn on_stop(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.send(self.target, Msg::Ping(99));
            }
        }
        let mut sim = new_sim();
        let receiver = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let leaver = sim.add_node(Goodbye { target: receiver });
        sim.run_until(Time::from_millis(5));
        sim.remove(leaver);
        sim.run_until(Time::from_millis(100));
        assert_eq!(sim.node_state(leaver), NodeState::Departed);
        // The goodbye ping was delivered (receiver replied to a dead node).
        assert!(sim.metrics().counter("sim.msgs_to_dead") >= 1);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct Canceller {
            fired: bool,
        }
        impl Process<Msg> for Canceller {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                let id = ctx.set_timer(Duration::from_millis(10), 1);
                ctx.cancel_timer(id);
                ctx.set_timer(Duration::from_millis(20), 2);
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _f: NodeId, _m: Msg) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, tag: u64) {
                assert_eq!(tag, 2, "cancelled timer fired");
                self.fired = true;
            }
        }
        let mut sim = new_sim();
        let n = sim.add_node(Canceller { fired: false });
        sim.run_until(Time::from_millis(100));
        assert!(sim.node_as::<Canceller>(n).unwrap().fired);
        assert_eq!(sim.metrics().counter("sim.timers_cancelled"), 1);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = new_sim();
        sim.run_until(Time::from_secs(5));
        assert_eq!(sim.now(), Time::from_secs(5));
    }

    #[test]
    fn wire_meter_counts_bytes_and_charges_bandwidth() {
        use crate::net::MsgMeta;
        let run = |metered: bool, bandwidth: Option<u64>| {
            let mut net = NetConfig::lan();
            net.latency = crate::net::LatencyModel::Constant(Duration::from_millis(1));
            net.bandwidth = bandwidth;
            let mut sim: Sim<Msg> = Sim::new(42, net);
            if metered {
                sim.set_wire_meter(Box::new(|m| match m {
                    Msg::Ping(_) => MsgMeta {
                        bytes: 100,
                        class: "ping",
                    },
                    Msg::Pong(_) => MsgMeta {
                        bytes: 10,
                        class: "pong",
                    },
                }));
            }
            let b = sim.add_node(Echo {
                pongs: 0,
                ticks: 0,
                peer: None,
            });
            let _a = sim.add_node(Echo {
                pongs: 0,
                ticks: 0,
                peer: Some(b),
            });
            sim.run_until(Time::from_secs(1));
            (
                sim.metrics().counter("wire.bytes.total"),
                sim.metrics().counter("wire.bytes.ping"),
                sim.metrics().counter("wire.msgs.pong"),
                sim.metrics().counter("sim.msgs_delivered"),
            )
        };
        // Metering alone: counters filled, behaviour identical.
        let (total, ping_bytes, pong_msgs, delivered) = run(true, None);
        assert_eq!(delivered, run(false, None).3);
        assert_eq!(total, 5 * 100 + 5 * 10);
        assert_eq!(ping_bytes, 500);
        assert_eq!(pong_msgs, 5);
        // A crawling link (100 bytes/s => 1 s per ping) delays pongs past
        // the horizon.
        let (_, _, _, delivered_slow) = run(true, Some(100));
        assert!(delivered_slow < delivered, "{delivered_slow} < {delivered}");
        // Un-metered simulations expose no wire counters at all.
        let mut names = Vec::new();
        {
            let mut sim: Sim<Msg> = Sim::new(1, NetConfig::lan());
            sim.add_node(Echo {
                pongs: 0,
                ticks: 0,
                peer: None,
            });
            sim.run_until(Time::from_millis(50));
            for (k, _) in sim.metrics().counters() {
                names.push(k.to_string());
            }
        }
        assert!(names.iter().all(|n| !n.starts_with("wire.")), "{names:?}");
    }

    #[test]
    fn timer_armed_in_the_kill_tick_never_fires_for_the_dead_incarnation() {
        // The fault engine schedules kills as control events, so a timer
        // armed by a delivery or timer upcall in the *same tick* as the
        // kill is common. Whatever the (time, seq) interleaving, a timer
        // armed by incarnation e must never fire into incarnation e+1.
        //
        // Interleaving A: the kill control was scheduled first (lower
        // seq), so at the shared tick it runs BEFORE the delivery that
        // would have armed a timer — the delivery hits a crashed node.
        // Interleaving B: the timer event fires first (lower seq), arms
        // its successor timer, and the kill+restart control runs second
        // in the same tick — the successor timer belongs to the dead
        // incarnation and must be suppressed.
        let mut sim = new_sim();
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let a = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        // Echo ticks at 10, 20, 30, … (armed in on_start / re-armed in
        // on_timer). Run past the first tick so the 20 ms timer is armed
        // with a seq LOWER than the control we schedule now.
        sim.run_until(Time::from_millis(15));
        sim.schedule_at(
            Time::from_millis(20),
            Box::new(move |s: &mut Sim<Msg>| {
                // Interleaving B: the 20 ms tick (seq below ours) already
                // fired in this very tick and re-armed the 30 ms timer.
                assert_eq!(s.node_as::<Echo>(a).unwrap().ticks, 2);
                s.crash(a);
                s.restart_node(
                    a,
                    Echo {
                        pongs: 0,
                        ticks: 0,
                        peer: Some(b),
                    },
                );
            }),
        );
        sim.run_until(Time::from_secs(1));
        let st = sim.node_as::<Echo>(a).unwrap();
        // Exactly the fresh incarnation's 5 ticks: had the dead
        // incarnation's 30 ms timer leaked, a 6th tick would appear.
        assert_eq!(st.ticks, 5, "stale timer fired into the new incarnation");
        // 5 pongs answer the new incarnation's pings, plus exactly one
        // in-flight pong answering the ping the dead incarnation sent at
        // its final tick: messages (unlike timers) still arrive after a
        // restart — the network does not know the process was replaced.
        assert_eq!(st.pongs, 6);

        // Interleaving A: schedule the kill control BEFORE the node ever
        // runs, timed exactly on a tick boundary. The control (lower seq)
        // runs first, so the tick delivery lands on a crashed node and
        // the restarted incarnation starts from a clean slate.
        let mut sim = new_sim();
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        sim.schedule_at(
            Time::from_millis(10),
            Box::new(move |s: &mut Sim<Msg>| {
                s.crash(b);
                s.restart_node(
                    b,
                    Echo {
                        pongs: 0,
                        ticks: 0,
                        peer: None,
                    },
                );
            }),
        );
        let _a = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        sim.run_until(Time::from_secs(1));
        // b's first incarnation armed its 10 ms tick at t=0; the control
        // at t=10 ms (earlier seq) killed+restarted it first, so that
        // timer is epoch-suppressed and only the new incarnation ticks.
        assert_eq!(sim.node_as::<Echo>(b).unwrap().ticks, 5);
        assert_eq!(sim.metrics().counter("sim.restarts"), 1);
    }

    #[test]
    fn repeated_same_tick_kill_restart_cycles_keep_epochs_straight() {
        // The master-crash-storm scenario kills and restarts the same
        // node several times; each incarnation's timers must be isolated.
        let mut sim = new_sim();
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let a = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        for k in 1..=3u64 {
            sim.schedule_at(
                Time::from_millis(20 * k),
                Box::new(move |s: &mut Sim<Msg>| {
                    s.crash(a);
                    s.restart_node(
                        a,
                        Echo {
                            pongs: 0,
                            ticks: 0,
                            peer: Some(b),
                        },
                    );
                }),
            );
        }
        sim.run_until(Time::from_secs(1));
        // Only the final incarnation's 5 ticks survive; any epoch mixup
        // would add ticks from the three dead incarnations.
        assert_eq!(sim.node_as::<Echo>(a).unwrap().ticks, 5);
        assert_eq!(sim.metrics().counter("sim.restarts"), 3);
    }

    #[test]
    fn fault_plan_drops_and_duplicates_messages() {
        use crate::fault::{FaultPlan, LinkFaults};
        let run = |drop: f64, dup: f64| {
            let mut sim = new_sim();
            let mut lf = LinkFaults::none();
            lf.drop = drop;
            lf.duplicate = dup;
            sim.set_fault_plan(
                FaultPlan::new(99).with_default(lf),
                Box::new(|m: &Msg| match m {
                    Msg::Ping(n) => Msg::Ping(*n),
                    Msg::Pong(n) => Msg::Pong(*n),
                }),
            );
            let b = sim.add_node(Echo {
                pongs: 0,
                ticks: 0,
                peer: None,
            });
            let _a = sim.add_node(Echo {
                pongs: 0,
                ticks: 0,
                peer: Some(b),
            });
            sim.run_until(Time::from_secs(1));
            (
                sim.metrics().counter("sim.msgs_delivered"),
                sim.metrics().counter("faults.dropped"),
                sim.metrics().counter("faults.duplicated"),
            )
        };
        // Certain drop: every remote ping vanishes (5 sent, 0 delivered).
        let (delivered, dropped, _) = run(1.0, 0.0);
        assert_eq!(delivered, 0);
        assert_eq!(dropped, 5);
        // Certain duplication: every remote message is delivered twice
        // (5 pings + their 10 pongs, each doubled → 10 pings, pongs vary
        // because each duplicated ping is answered too).
        let (delivered, _, duplicated) = run(0.0, 1.0);
        assert!(duplicated >= 10, "duplicated {duplicated}");
        assert_eq!(delivered, 2 * duplicated);
    }

    #[test]
    fn fault_cut_blocks_until_healed_and_oneway_is_asymmetric() {
        use crate::fault::FaultPlan;
        let mut sim = new_sim();
        sim.set_fault_plan(
            FaultPlan::new(5),
            Box::new(|m: &Msg| match m {
                Msg::Ping(n) => Msg::Ping(*n),
                Msg::Pong(n) => Msg::Pong(*n),
            }),
        );
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let a = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        // Cut only a → b: pings vanish, so no pongs either.
        sim.fault_cut(a, b, true);
        sim.run_until(Time::from_millis(25));
        assert_eq!(sim.node_as::<Echo>(a).unwrap().pongs, 0);
        assert!(sim.metrics().counter("faults.cut") >= 2);
        // Heal: the remaining ticks' pings flow and are answered (the
        // b → a direction was never cut).
        sim.fault_heal(a, b);
        sim.run_until(Time::from_secs(1));
        assert_eq!(sim.node_as::<Echo>(a).unwrap().pongs, 3);
    }

    #[test]
    fn scheduled_plan_cut_heals_itself_and_crash_fires() {
        use crate::fault::{FaultPlan, ScheduledCut};
        let mut sim = new_sim();
        let b_id = NodeId(0);
        let a_id = NodeId(1);
        sim.set_fault_plan(
            FaultPlan::new(6)
                .with_cut(ScheduledCut {
                    at: Duration::from_millis(5),
                    heal_after: Some(Duration::from_millis(30)),
                    a: vec![a_id],
                    b: vec![b_id],
                    oneway: false,
                })
                .with_crash(Duration::from_millis(45), a_id),
            Box::new(|m: &Msg| match m {
                Msg::Ping(n) => Msg::Ping(*n),
                Msg::Pong(n) => Msg::Pong(*n),
            }),
        );
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        let a = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: Some(b),
        });
        assert_eq!((a, b), (a_id, b_id));
        sim.run_until(Time::from_secs(1));
        // Ticks at 10/20/30 fell inside the cut window (5..35); the 40 ms
        // ping got through before the crash at 45 ms killed a.
        assert_eq!(sim.node_as::<Echo>(a).unwrap().pongs, 1);
        assert_eq!(sim.node_state(a), NodeState::Crashed);
        assert_eq!(sim.metrics().counter("sim.crashes"), 1);
        assert_eq!(sim.metrics().counter("faults.cut"), 3);
    }

    #[test]
    fn external_send_reaches_node() {
        let mut sim = new_sim();
        let b = sim.add_node(Echo {
            pongs: 0,
            ticks: 0,
            peer: None,
        });
        sim.send_external(b, Msg::Pong(1));
        sim.run_until(Time::from_millis(1));
        assert_eq!(sim.node_as::<Echo>(b).unwrap().pongs, 1);
    }
}
