//! Virtual time for the discrete-event simulator.
//!
//! The simulator clock counts **microseconds** since simulation start in a
//! `u64`, which comfortably covers > 500,000 years of simulated time. All
//! protocol timeouts and latency models are expressed in [`Duration`].

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);

    /// Largest representable instant; used as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float, for reporting.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds as a float, the unit used in experiment reports.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True for the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_millis(5);
        let d = Duration::from_micros(250);
        assert_eq!((t + d).as_micros(), 5_250);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(Time::ZERO).as_millis(), 5);
    }

    #[test]
    fn since_saturates() {
        let early = Time::from_secs(1);
        let late = Time::from_secs(2);
        assert_eq!(early.since(late), Duration::ZERO);
        assert_eq!(late.since(early), Duration::from_secs(1));
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_millis(10);
        assert_eq!((d * 3).as_millis(), 30);
        assert_eq!((d / 2).as_millis(), 5);
        assert_eq!(d.saturating_sub(Duration::from_secs(1)), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{}", Time::from_millis(2500)), "2.500s");
    }
}
