//! Simulator-level guarantees the protocol stack relies on: deterministic
//! event ordering, FIFO-per-latency behaviour, partition semantics under
//! in-flight traffic, and timer/crash interactions.

use simnet::{Ctx, Duration, LatencyModel, NetConfig, NodeId, Process, Sim, Time};

/// Records every delivery with its arrival time.
struct Recorder {
    log: Vec<(Time, u32)>,
}

#[derive(Debug)]
struct Tagged(u32);

impl Process<Tagged> for Recorder {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Tagged>, _from: NodeId, msg: Tagged) {
        self.log.push((ctx.now(), msg.0));
    }
}

/// Emits a burst of tagged messages to a target on start.
struct Burst {
    target: NodeId,
    count: u32,
}

impl Process<Tagged> for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Tagged>) {
        for i in 0..self.count {
            ctx.send(self.target, Tagged(i));
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Tagged>, _from: NodeId, _msg: Tagged) {}
}

#[test]
fn constant_latency_preserves_send_order() {
    let mut net = NetConfig::lan();
    net.latency = LatencyModel::Constant(Duration::from_millis(5));
    let mut sim: Sim<Tagged> = Sim::new(1, net);
    let rec = sim.add_node(Recorder { log: Vec::new() });
    sim.add_node(Burst {
        target: rec,
        count: 50,
    });
    sim.run_until(Time::from_secs(1));
    let log = &sim.node_as::<Recorder>(rec).unwrap().log;
    assert_eq!(log.len(), 50);
    // Same send time + same latency ⇒ delivery in send order (seq ties).
    let tags: Vec<u32> = log.iter().map(|(_, t)| *t).collect();
    assert_eq!(tags, (0..50).collect::<Vec<_>>());
    // All delivered at the same instant.
    assert!(log.iter().all(|(at, _)| *at == log[0].0));
}

#[test]
fn variable_latency_can_reorder_but_is_deterministic() {
    let run = |seed: u64| -> Vec<u32> {
        let mut net = NetConfig::lan();
        net.latency = LatencyModel::Uniform(Duration::from_millis(1), Duration::from_millis(50));
        let mut sim: Sim<Tagged> = Sim::new(seed, net);
        let rec = sim.add_node(Recorder { log: Vec::new() });
        sim.add_node(Burst {
            target: rec,
            count: 30,
        });
        sim.run_until(Time::from_secs(1));
        sim.node_as::<Recorder>(rec)
            .unwrap()
            .log
            .iter()
            .map(|(_, t)| *t)
            .collect()
    };
    let a = run(7);
    assert_eq!(a, run(7), "same seed must replay identically");
    assert_ne!(a, (0..30).collect::<Vec<_>>(), "uniform latency reorders");
    let mut sorted = a.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..30).collect::<Vec<_>>(), "nothing lost");
}

#[test]
fn partition_mid_flight_only_blocks_future_sends() {
    // Messages already in flight when a partition appears still arrive
    // (the cut blocks the *link decision* at send time, as in real routers
    // dropping subsequent packets).
    let mut net = NetConfig::lan();
    net.latency = LatencyModel::Constant(Duration::from_millis(20));
    let mut sim: Sim<Tagged> = Sim::new(3, net);
    let rec = sim.add_node(Recorder { log: Vec::new() });
    let burst = sim.add_node(Burst {
        target: rec,
        count: 5,
    });
    // The burst was sent at t≈0 with 20ms latency; cut the link at 10ms.
    sim.run_until(Time::from_millis(10));
    sim.net_mut().partition(burst, rec);
    sim.run_until(Time::from_millis(100));
    assert_eq!(
        sim.node_as::<Recorder>(rec).unwrap().log.len(),
        5,
        "in-flight messages survive the cut"
    );
    // New sends are blocked.
    sim.send_external(burst, Tagged(99)); // wakes the burst node (no-op handler)
    sim.run_until(Time::from_millis(200));
    assert_eq!(sim.node_as::<Recorder>(rec).unwrap().log.len(), 5);
}

#[test]
fn crashed_node_timers_never_fire() {
    struct TickBomb {
        fired: bool,
    }
    impl Process<Tagged> for TickBomb {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Tagged>) {
            ctx.set_timer(Duration::from_millis(100), 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Tagged>, _f: NodeId, _m: Tagged) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Tagged>, _tag: u64) {
            self.fired = true;
        }
    }
    let mut sim: Sim<Tagged> = Sim::new(4, NetConfig::lan());
    let bomb = sim.add_node(TickBomb { fired: false });
    sim.run_until(Time::from_millis(50));
    sim.crash(bomb);
    sim.run_until(Time::from_secs(1));
    assert!(!sim.node_as::<TickBomb>(bomb).unwrap().fired);
}

#[test]
fn control_events_interleave_with_traffic_deterministically() {
    let run = |seed: u64| -> (usize, u64) {
        let mut sim: Sim<Tagged> = Sim::new(seed, NetConfig::lan());
        let rec = sim.add_node(Recorder { log: Vec::new() });
        for i in 0..10 {
            let at = Time::from_millis(i * 10);
            sim.schedule_at(
                at,
                Box::new(move |s: &mut Sim<Tagged>| {
                    s.send_external(rec, Tagged(i as u32));
                }),
            );
        }
        sim.run_until(Time::from_secs(1));
        (
            sim.node_as::<Recorder>(rec).unwrap().log.len(),
            sim.metrics().counter("sim.msgs_delivered"),
        )
    };
    assert_eq!(run(5), run(5));
    assert_eq!(run(5).0, 10);
}

#[test]
fn self_messages_always_deliver_even_under_partition_and_loss() {
    let mut net = NetConfig::lan();
    net.loss = 1.0; // all remote traffic dies
    let mut sim: Sim<Tagged> = Sim::new(6, net);

    struct SelfTalker {
        heard: u32,
    }
    impl Process<Tagged> for SelfTalker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Tagged>) {
            let me = ctx.self_id();
            ctx.send(me, Tagged(1));
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Tagged>, _f: NodeId, msg: Tagged) {
            self.heard += 1;
            if msg.0 < 3 {
                let me = ctx.self_id();
                ctx.send(me, Tagged(msg.0 + 1));
            }
        }
    }
    let n = sim.add_node(SelfTalker { heard: 0 });
    sim.run_until(Time::from_millis(100));
    assert_eq!(sim.node_as::<SelfTalker>(n).unwrap().heard, 3);
}
