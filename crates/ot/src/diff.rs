//! Line diff: turn "the user saved the document" into a patch (sequence of
//! [`TextOp`]s), as So6's text synchronizer does after each save.
//!
//! Strategy: trim the common prefix/suffix, then run an LCS dynamic program
//! on the (usually tiny) middle section. Edits in collaborative editing are
//! localized, so the trimmed window stays small even for large documents.

use crate::document::Document;
use crate::op::TextOp;

/// Compute a patch transforming `old` into `new`, attributed to `site`.
/// The returned ops apply sequentially (each position is relative to the
/// document state after the previous ops).
pub fn diff(old: &Document, new: &Document, site: u64) -> Vec<TextOp> {
    let a = old.lines();
    let b = new.lines();

    // Trim common prefix.
    let mut prefix = 0;
    while prefix < a.len() && prefix < b.len() && a[prefix] == b[prefix] {
        prefix += 1;
    }
    // Trim common suffix (not overlapping the prefix).
    let mut suffix = 0;
    while suffix < a.len() - prefix
        && suffix < b.len() - prefix
        && a[a.len() - 1 - suffix] == b[b.len() - 1 - suffix]
    {
        suffix += 1;
    }

    let mid_a = &a[prefix..a.len() - suffix];
    let mid_b = &b[prefix..b.len() - suffix];

    // LCS table over the middle.
    let (n, m) = (mid_a.len(), mid_b.len());
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if mid_a[i] == mid_b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }

    // Emit ops walking the alignment; `pos` tracks the position in the
    // evolving document.
    let mut ops = Vec::new();
    let mut pos = prefix;
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if mid_a[i] == mid_b[j] {
            pos += 1;
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push(TextOp::del(pos, mid_a[i].clone(), site));
            i += 1;
        } else {
            ops.push(TextOp::ins(pos, mid_b[j].clone(), site));
            pos += 1;
            j += 1;
        }
    }
    while i < n {
        ops.push(TextOp::del(pos, mid_a[i].clone(), site));
        i += 1;
    }
    while j < m {
        ops.push(TextOp::ins(pos, mid_b[j].clone(), site));
        pos += 1;
        j += 1;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn apply_diff(old: &str, new: &str) -> String {
        let o = Document::from_text(old);
        let n = Document::from_text(new);
        let ops = diff(&o, &n, 1);
        let mut d = o.clone();
        d.apply_all(&ops).expect("diff must apply cleanly");
        d.to_text()
    }

    #[test]
    fn identical_documents_empty_diff() {
        let d = Document::from_text("a\nb");
        assert!(diff(&d, &d, 1).is_empty());
    }

    #[test]
    fn pure_insert() {
        assert_eq!(apply_diff("a\nc", "a\nb\nc"), "a\nb\nc");
    }

    #[test]
    fn pure_delete() {
        assert_eq!(apply_diff("a\nb\nc", "a\nc"), "a\nc");
    }

    #[test]
    fn replace_line() {
        let o = Document::from_text("a\nOLD\nc");
        let n = Document::from_text("a\nNEW\nc");
        let ops = diff(&o, &n, 1);
        assert_eq!(ops.len(), 2, "replace = del + ins, got {ops:?}");
        assert_eq!(apply_diff("a\nOLD\nc", "a\nNEW\nc"), "a\nNEW\nc");
    }

    #[test]
    fn from_empty_and_to_empty() {
        assert_eq!(apply_diff("", "x\ny"), "x\ny");
        assert_eq!(apply_diff("x\ny", ""), "");
    }

    #[test]
    fn repeated_lines() {
        assert_eq!(apply_diff("a\na\na", "a\na"), "a\na");
        assert_eq!(apply_diff("a\nb\na", "a\na\nb\na"), "a\na\nb\na");
    }

    #[test]
    fn diff_is_minimal_for_single_edit() {
        let o = Document::from_text("1\n2\n3\n4\n5\n6\n7\n8");
        let n = Document::from_text("1\n2\n3\nX\n4\n5\n6\n7\n8");
        assert_eq!(diff(&o, &n, 1).len(), 1);
    }

    proptest! {
        /// diff(a, b) applied to a always yields exactly b.
        #[test]
        fn diff_apply_roundtrip(
            a in prop::collection::vec(prop::sample::select(vec!["x", "y", "z", "w"]), 0..12),
            b in prop::collection::vec(prop::sample::select(vec!["x", "y", "z", "w"]), 0..12),
        ) {
            let old = Document::from_lines(a.iter().map(|s| s.to_string()).collect());
            let new = Document::from_lines(b.iter().map(|s| s.to_string()).collect());
            let ops = diff(&old, &new, 42);
            let mut d = old.clone();
            d.apply_all(&ops).unwrap();
            prop_assert_eq!(d.lines(), new.lines());
            // Every op is attributed to the requested site.
            prop_assert!(ops.iter().all(|o| o.site() == 42));
        }
    }
}
