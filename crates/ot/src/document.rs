//! The replicated artifact: a line-based text document (an XWiki page in the
//! paper's motivating application).

use crate::op::{OtError, TextOp};

/// A text document as a sequence of lines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Document {
    lines: Vec<String>,
}

impl Document {
    /// Empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from owned lines.
    pub fn from_lines(lines: Vec<String>) -> Self {
        Document { lines }
    }

    /// Build from text, splitting on `\n`. An empty string is the empty
    /// document (zero lines).
    pub fn from_text(text: &str) -> Self {
        if text.is_empty() {
            Self::new()
        } else {
            Document {
                lines: text.split('\n').map(str::to_owned).collect(),
            }
        }
    }

    /// Join lines with `\n`.
    pub fn to_text(&self) -> String {
        self.lines.join("\n")
    }

    /// Borrow the lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Line at `pos`, if in bounds.
    pub fn line(&self, pos: usize) -> Option<&str> {
        self.lines.get(pos).map(String::as_str)
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when the document has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Apply a single operation, validating bounds and (for deletes) that
    /// the content matches — a mismatch means replicas diverged.
    pub fn apply(&mut self, op: &TextOp) -> Result<(), OtError> {
        match op {
            TextOp::Ins { pos, content, .. } => {
                if *pos > self.lines.len() {
                    return Err(OtError::InsertOutOfBounds {
                        pos: *pos,
                        len: self.lines.len(),
                    });
                }
                self.lines.insert(*pos, content.clone());
                Ok(())
            }
            TextOp::Del { pos, content, .. } => {
                if *pos >= self.lines.len() {
                    return Err(OtError::DeleteOutOfBounds {
                        pos: *pos,
                        len: self.lines.len(),
                    });
                }
                if self.lines[*pos] != *content {
                    return Err(OtError::ContentMismatch {
                        pos: *pos,
                        expected: content.clone(),
                        found: self.lines[*pos].clone(),
                    });
                }
                self.lines.remove(*pos);
                Ok(())
            }
        }
    }

    /// Apply a sequence of operations (a patch body), stopping at the first
    /// error.
    pub fn apply_all(&mut self, ops: &[TextOp]) -> Result<(), OtError> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// 64-bit FNV-1a content hash, used by the consistency checker to
    /// compare replicas cheaply.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for line in &self.lines {
            for &b in line.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= 0x0a; // line separator
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let d = Document::from_text("a\nb\nc");
        assert_eq!(d.len(), 3);
        assert_eq!(d.to_text(), "a\nb\nc");
        assert_eq!(Document::from_text("").len(), 0);
    }

    #[test]
    fn apply_insert_and_delete() {
        let mut d = Document::from_text("a\nc");
        d.apply(&TextOp::ins(1, "b", 1)).unwrap();
        assert_eq!(d.to_text(), "a\nb\nc");
        d.apply(&TextOp::del(0, "a", 1)).unwrap();
        assert_eq!(d.to_text(), "b\nc");
    }

    #[test]
    fn insert_at_end_is_append() {
        let mut d = Document::from_text("a");
        d.apply(&TextOp::ins(1, "b", 1)).unwrap();
        assert_eq!(d.to_text(), "a\nb");
    }

    #[test]
    fn bounds_errors() {
        let mut d = Document::from_text("a");
        assert!(matches!(
            d.apply(&TextOp::ins(5, "x", 1)),
            Err(OtError::InsertOutOfBounds { pos: 5, len: 1 })
        ));
        assert!(matches!(
            d.apply(&TextOp::del(1, "x", 1)),
            Err(OtError::DeleteOutOfBounds { .. })
        ));
    }

    #[test]
    fn delete_verifies_content() {
        let mut d = Document::from_text("actual");
        let err = d.apply(&TextOp::del(0, "expected", 1)).unwrap_err();
        assert!(matches!(err, OtError::ContentMismatch { .. }));
        assert_eq!(d.len(), 1, "failed delete must not mutate");
    }

    #[test]
    fn content_hash_distinguishes_line_boundaries() {
        let a = Document::from_text("ab\nc");
        let b = Document::from_text("a\nbc");
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(
            a.content_hash(),
            Document::from_text("ab\nc").content_hash()
        );
    }

    #[test]
    fn apply_all_stops_on_error() {
        let mut d = Document::from_text("a");
        let ops = vec![TextOp::del(0, "a", 1), TextOp::del(0, "zzz", 1)];
        assert!(d.apply_all(&ops).is_err());
        assert_eq!(d.len(), 0, "first op applied, second failed");
    }
}
