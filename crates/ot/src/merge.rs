//! The SOCT4-style merge engine a user peer runs: integrate remote validated
//! patches (in continuous timestamp order) while carrying a pending local
//! patch forward.
//!
//! This is the reconciliation contract So6 exposes and P2P-LTR plugs into
//! (RR-6497 §3: "previous validated patches … must be integrated in u1's
//! document before, e.g. by using So6 which is based on operational
//! transformation").

use crate::document::Document;
use crate::op::OtError;
use crate::patch::Patch;

/// A replica of one document at one site: the last *validated* global state
/// plus an optional pending (tentative) local patch, already reflected in
/// [`Replica::working`].
#[derive(Clone, Debug)]
pub struct Replica {
    /// Site id of this replica's user.
    pub site: u64,
    /// Timestamp of the last integrated validated patch (0 = initial).
    pub ts: u64,
    /// The validated global state at `ts`.
    base: Document,
    /// `base` plus the pending patch (what the user sees and edits).
    working: Document,
    /// The tentative patch awaiting validation, expressed against `base`.
    pending: Option<Patch>,
}

impl Replica {
    /// Fresh replica of an initial document (timestamp 0).
    pub fn new(site: u64, initial: Document) -> Self {
        Replica {
            site,
            ts: 0,
            working: initial.clone(),
            base: initial,
            pending: None,
        }
    }

    /// The document as the user currently sees it.
    pub fn working(&self) -> &Document {
        &self.working
    }

    /// The last validated global state.
    pub fn base(&self) -> &Document {
        &self.base
    }

    /// The pending tentative patch, if any.
    pub fn pending(&self) -> Option<&Patch> {
        self.pending.as_ref()
    }

    /// The user saved: record the edit as (part of) the pending patch.
    /// Multiple saves before validation accumulate into one tentative patch
    /// (patch composition), exactly like repeated So6 "save" operations.
    pub fn edit(&mut self, new_text: &Document) -> Result<&Patch, OtError> {
        let delta = crate::diff::diff(&self.working, new_text, self.site);
        self.working = new_text.clone();
        match &mut self.pending {
            Some(p) => p.ops.extend(delta),
            None => self.pending = Some(Patch::new(self.site, delta)),
        }
        Ok(self.pending.as_ref().expect("just set"))
    }

    /// Integrate a remote validated patch with timestamp `ts`. Must be the
    /// next timestamp (`self.ts + 1`) — the retrieval procedure guarantees
    /// continuous order. The pending local patch (if any) is rebased.
    pub fn integrate_remote(&mut self, ts: u64, remote: &Patch) -> Result<(), OtError> {
        assert_eq!(
            ts,
            self.ts + 1,
            "retrieval must deliver continuous timestamps (have {}, got {ts})",
            self.ts
        );
        // Advance the validated base.
        self.base.apply_all(&remote.ops)?;
        match self.pending.take() {
            None => {
                self.working.apply_all(&remote.ops)?;
            }
            Some(local) => {
                let (remote_t, local_t) = local.rebase_over(remote);
                // The working copy already contains `local`; apply the
                // transformed remote to it.
                self.working.apply_all(&remote_t.ops)?;
                self.pending = if local_t.is_empty() {
                    None
                } else {
                    Some(local_t)
                };
            }
        }
        self.ts = ts;
        Ok(())
    }

    /// Our own pending patch was validated with timestamp `ts`: it becomes
    /// part of the global state.
    pub fn acknowledge_own(&mut self, ts: u64) -> Result<(), OtError> {
        let len = self.pending.as_ref().map(|p| p.len()).unwrap_or(0);
        self.acknowledge_own_prefix(ts, len)
    }

    /// The first `prefix_len` operations of the pending patch were validated
    /// with timestamp `ts`; any remaining operations (edits saved while the
    /// validation was in flight) stay pending for the next cycle. The
    /// remainder is already expressed against `base ∘ prefix`, because
    /// pending ops are sequential.
    pub fn acknowledge_own_prefix(&mut self, ts: u64, prefix_len: usize) -> Result<(), OtError> {
        assert_eq!(ts, self.ts + 1, "own patch must be the next timestamp");
        if let Some(p) = self.pending.take() {
            let prefix_len = prefix_len.min(p.ops.len());
            self.base.apply_all(&p.ops[..prefix_len])?;
            if prefix_len < p.ops.len() {
                self.pending = Some(Patch::new(p.author, p.ops[prefix_len..].to_vec()));
            }
        }
        if self.pending.is_none() {
            debug_assert_eq!(self.base.lines(), self.working.lines());
        }
        self.ts = ts;
        Ok(())
    }

    /// Take the pending patch for publication (it stays pending until
    /// [`Replica::acknowledge_own`]).
    pub fn tentative_for_publish(&self) -> Option<Patch> {
        self.pending.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::TextOp;

    fn doc(t: &str) -> Document {
        Document::from_text(t)
    }

    #[test]
    fn lone_editor_publishes_and_acks() {
        let mut r = Replica::new(1, doc("hello"));
        r.edit(&doc("hello\nworld")).unwrap();
        assert_eq!(r.pending().unwrap().len(), 1);
        r.acknowledge_own(1).unwrap();
        assert_eq!(r.ts, 1);
        assert!(r.pending().is_none());
        assert_eq!(r.base().to_text(), "hello\nworld");
    }

    #[test]
    fn remote_integration_without_pending() {
        let mut r = Replica::new(2, doc("a"));
        let remote = Patch::new(1, vec![TextOp::ins(1, "b", 1)]);
        r.integrate_remote(1, &remote).unwrap();
        assert_eq!(r.working().to_text(), "a\nb");
        assert_eq!(r.base().to_text(), "a\nb");
        assert_eq!(r.ts, 1);
    }

    #[test]
    fn remote_integration_rebases_pending() {
        // Site 2 edits locally while site 1's patch wins timestamp 1.
        let mut r = Replica::new(2, doc("x\ny"));
        r.edit(&doc("x\ny\nlocal")).unwrap();
        let remote = Patch::new(1, vec![TextOp::ins(0, "remote", 1)]);
        r.integrate_remote(1, &remote).unwrap();
        // Working copy shows both edits.
        assert_eq!(r.working().to_text(), "remote\nx\ny\nlocal");
        // Base shows only the validated patch.
        assert_eq!(r.base().to_text(), "remote\nx\ny");
        // Pending is rebased: inserting "local" at the (shifted) end.
        let pending = r.pending().unwrap().clone();
        let mut check = r.base().clone();
        check.apply_all(&pending.ops).unwrap();
        assert_eq!(check.to_text(), r.working().to_text());
    }

    #[test]
    fn two_replicas_converge_via_total_order() {
        // The core P2P-LTR convergence scenario, run purely in-memory:
        // both sites edit concurrently; site 1 wins ts=1, site 2 must
        // integrate then publish as ts=2.
        let initial = doc("base");
        let mut r1 = Replica::new(1, initial.clone());
        let mut r2 = Replica::new(2, initial.clone());

        r1.edit(&doc("base\none")).unwrap();
        r2.edit(&doc("two\nbase")).unwrap();

        // Site 1 validated first.
        let p1 = r1.tentative_for_publish().unwrap();
        r1.acknowledge_own(1).unwrap();
        r2.integrate_remote(1, &p1).unwrap();

        // Site 2 now publishes its (rebased) pending patch.
        let p2 = r2.tentative_for_publish().unwrap();
        r2.acknowledge_own(2).unwrap();
        r1.integrate_remote(2, &p2).unwrap();

        assert_eq!(r1.working().lines(), r2.working().lines());
        assert_eq!(r1.ts, 2);
        assert_eq!(r2.ts, 2);
        assert_eq!(r1.working().to_text(), "two\nbase\none");
    }

    #[test]
    #[should_panic(expected = "continuous timestamps")]
    fn gap_in_timestamps_panics() {
        let mut r = Replica::new(1, doc("a"));
        let remote = Patch::new(2, vec![TextOp::ins(0, "x", 2)]);
        r.integrate_remote(5, &remote).unwrap();
    }

    #[test]
    fn multiple_saves_accumulate() {
        let mut r = Replica::new(1, doc(""));
        r.edit(&doc("a")).unwrap();
        r.edit(&doc("a\nb")).unwrap();
        assert_eq!(r.pending().unwrap().len(), 2);
        r.acknowledge_own(1).unwrap();
        assert_eq!(r.base().to_text(), "a\nb");
    }

    #[test]
    fn prefix_acknowledge_keeps_remainder_pending() {
        let mut r = Replica::new(1, doc("base"));
        r.edit(&doc("base\none")).unwrap(); // 1 op — gets published
        let published_ops = r.pending().unwrap().len();
        r.edit(&doc("base\none\ntwo")).unwrap(); // 1 more op mid-flight
        assert_eq!(r.pending().unwrap().len(), 2);

        r.acknowledge_own_prefix(1, published_ops).unwrap();
        assert_eq!(r.ts, 1);
        assert_eq!(r.base().to_text(), "base\none", "only the prefix is global");
        let rest = r.pending().expect("remainder stays pending");
        assert_eq!(rest.len(), 1);
        // The remainder still applies cleanly onto the new base.
        let mut check = r.base().clone();
        check.apply_all(&rest.ops).unwrap();
        assert_eq!(check.to_text(), r.working().to_text());
    }

    #[test]
    fn prefix_acknowledge_full_length_equals_acknowledge_own() {
        let mut a = Replica::new(1, doc("x"));
        a.edit(&doc("x\ny")).unwrap();
        let n = a.pending().unwrap().len();
        a.acknowledge_own_prefix(1, n).unwrap();
        assert!(a.pending().is_none());
        assert_eq!(a.base().to_text(), "x\ny");
    }
}
