//! Patches — "a sequence of updates wrapped together" after each document
//! save (RR-6497 §2) — plus a compact self-contained binary codec so they
//! can travel as DHT values.

use crate::op::{OtError, TextOp};
use crate::transform::transform_seqs;

/// A patch: the unit that is timestamped, logged and exchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Patch {
    /// Author site id (used for transformation tie-breaks).
    pub author: u64,
    /// The edit script, sequentially applicable.
    pub ops: Vec<TextOp>,
}

impl Patch {
    /// Build a patch.
    pub fn new(author: u64, ops: Vec<TextOp>) -> Self {
        Patch { author, ops }
    }

    /// An empty patch (no-op).
    pub fn empty(author: u64) -> Self {
        Patch {
            author,
            ops: Vec::new(),
        }
    }

    /// True when there is nothing to apply.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Transform this (pending, local) patch over a concurrent `remote`
    /// patch that won the timestamp race, returning `(remote', self')`:
    /// `remote'` applies to the local document (which already includes
    /// `self`), and `self'` is the rebased pending patch. This is the SOCT4
    /// integration step used during P2P-LTR retrieval.
    pub fn rebase_over(&self, remote: &Patch) -> (Patch, Patch) {
        let (remote_t, self_t) = transform_seqs(&remote.ops, &self.ops);
        (
            Patch::new(remote.author, remote_t),
            Patch::new(self.author, self_t),
        )
    }
}

// ---- binary codec --------------------------------------------------------
//
// Layout (little endian):
//   u64 author | u32 op_count | ops…
// op: u8 tag (0=Ins, 1=Del) | u64 pos | u64 site | u32 len | utf8 bytes

/// Encode a patch to bytes.
pub fn encode_patch(p: &Patch) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + p.ops.len() * 24);
    out.extend_from_slice(&p.author.to_le_bytes());
    out.extend_from_slice(&(p.ops.len() as u32).to_le_bytes());
    for op in &p.ops {
        let (tag, pos, content, site) = match op {
            TextOp::Ins { pos, content, site } => (0u8, pos, content, site),
            TextOp::Del { pos, content, site } => (1u8, pos, content, site),
        };
        out.push(tag);
        out.extend_from_slice(&(*pos as u64).to_le_bytes());
        out.extend_from_slice(&site.to_le_bytes());
        out.extend_from_slice(&(content.len() as u32).to_le_bytes());
        out.extend_from_slice(content.as_bytes());
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], OtError> {
        if self.at + n > self.buf.len() {
            return Err(OtError::Codec(format!(
                "truncated: need {n} bytes at offset {}",
                self.at
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, OtError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, OtError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, OtError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Decode a patch from bytes produced by [`encode_patch`].
pub fn decode_patch(buf: &[u8]) -> Result<Patch, OtError> {
    let mut r = Reader { buf, at: 0 };
    let author = r.u64()?;
    let count = r.u32()? as usize;
    if count > 1_000_000 {
        return Err(OtError::Codec(format!("implausible op count {count}")));
    }
    let mut ops = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let tag = r.u8()?;
        let pos = r.u64()? as usize;
        let site = r.u64()?;
        let len = r.u32()? as usize;
        let content = std::str::from_utf8(r.take(len)?)
            .map_err(|e| OtError::Codec(format!("bad utf8: {e}")))?
            .to_owned();
        ops.push(match tag {
            0 => TextOp::Ins { pos, content, site },
            1 => TextOp::Del { pos, content, site },
            t => return Err(OtError::Codec(format!("unknown op tag {t}"))),
        });
    }
    if r.at != buf.len() {
        return Err(OtError::Codec(format!(
            "{} trailing bytes",
            buf.len() - r.at
        )));
    }
    Ok(Patch { author, ops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let p = Patch::new(
            7,
            vec![TextOp::ins(0, "hello", 7), TextOp::del(3, "bye", 7)],
        );
        assert_eq!(decode_patch(&encode_patch(&p)).unwrap(), p);
    }

    #[test]
    fn roundtrip_empty() {
        let p = Patch::empty(1);
        assert_eq!(decode_patch(&encode_patch(&p)).unwrap(), p);
    }

    #[test]
    fn decode_rejects_truncation() {
        let p = Patch::new(1, vec![TextOp::ins(0, "x", 1)]);
        let bytes = encode_patch(&p);
        for cut in 1..bytes.len() {
            assert!(
                decode_patch(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let p = Patch::empty(1);
        let mut bytes = encode_patch(&p);
        bytes.push(0);
        assert!(decode_patch(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let p = Patch::new(1, vec![TextOp::ins(0, "x", 1)]);
        let mut bytes = encode_patch(&p);
        bytes[12] = 9; // op tag offset: 8 (author) + 4 (count)
        assert!(decode_patch(&bytes).is_err());
    }

    #[test]
    fn rebase_over_remote() {
        // Local pending: insert at head. Remote won ts: delete line 0.
        let base = Document::from_text("a\nb");
        let local = Patch::new(2, vec![TextOp::ins(0, "local", 2)]);
        let remote = Patch::new(1, vec![TextOp::del(0, "a", 1)]);
        let (remote_t, local_t) = local.rebase_over(&remote);

        // Local doc (base ∘ local) then remote'.
        let mut mine = base.clone();
        mine.apply_all(&local.ops).unwrap();
        mine.apply_all(&remote_t.ops).unwrap();

        // Global order: base ∘ remote ∘ local'.
        let mut global = base.clone();
        global.apply_all(&remote.ops).unwrap();
        global.apply_all(&local_t.ops).unwrap();

        assert_eq!(mine.lines(), global.lines());
        assert_eq!(mine.to_text(), "local\nb");
    }

    proptest! {
        #[test]
        fn codec_roundtrip_random(
            author in 0u64..u64::MAX,
            ops in prop::collection::vec(
                (prop::bool::ANY, 0usize..1000, ".*", 0u64..50).prop_map(|(ins, pos, content, site)| {
                    if ins { TextOp::ins(pos, content, site) } else { TextOp::del(pos, content, site) }
                }),
                0..20
            )
        ) {
            let p = Patch::new(author, ops);
            prop_assert_eq!(decode_patch(&encode_patch(&p)).unwrap(), p);
        }
    }
}
