//! # ltr-ot — operational transformation engine (So6/SOCT4-style)
//!
//! The reconciliation substrate P2P-LTR plugs its total order into. The
//! paper integrates the So6 synchronizer (Molli et al., GROUP'03), which is
//! line-based operational transformation over a *continuous* global order of
//! patches — the SOCT4 approach, where a timestamper serializes patches and
//! sites only ever transform their own pending work forward.
//!
//! Provided here, all from scratch:
//!
//! * [`op::TextOp`] — line insert/delete operations with content-carrying
//!   deletes (divergence becomes a loud [`op::OtError::ContentMismatch`]);
//! * [`transform`] — inclusion transformation with the TP1 property
//!   (property-tested), and sequence⨯sequence transforms;
//! * [`mod@diff`] — prefix/suffix-trimmed LCS line diff, turning saves into
//!   patches;
//! * [`patch::Patch`] + a compact binary codec (DHT value payloads);
//! * [`merge::Replica`] — the per-site engine: edit, integrate remote
//!   validated patches in timestamp order, rebase pending work (SOCT4).
//!
//! TP2 is deliberately *not* required: P2P-LTR's continuous timestamps mean
//! every site integrates validated patches in the identical order.

#![warn(missing_docs)]

pub mod diff;
pub mod document;
pub mod merge;
pub mod op;
pub mod patch;
pub mod transform;

pub use diff::diff;
pub use document::Document;
pub use merge::Replica;
pub use op::{OtError, TextOp};
pub use patch::{decode_patch, encode_patch, Patch};
pub use transform::{transform_op, transform_op_seq, transform_seqs};
