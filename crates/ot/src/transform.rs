//! Inclusion transformation (IT) for line operations, with the TP1
//! convergence property, plus the sequence-level transforms the SOCT4-style
//! merge needs.
//!
//! P2P-LTR's continuous total order means TP2 is never required: every site
//! integrates *validated* patches in the identical timestamp order, and only
//! its own pending operations are ever transformed forward (So6 inherits the
//! same property from its central timestamper, SOCT4's key insight).

use crate::op::TextOp;

/// Transform `a` against a concurrent `b` (both defined on the same state),
/// producing the operation that applies *after* `b`. Returns `None` when `a`
/// is annihilated (both deleted the same line).
pub fn transform_op(a: &TextOp, b: &TextOp) -> Option<TextOp> {
    use TextOp::*;
    let out = match (a, b) {
        (
            Ins {
                pos: p1,
                content: c1,
                site: s1,
            },
            Ins {
                pos: p2,
                content: c2,
                site: s2,
            },
        ) => {
            // Ties at the same position break on (site, content) so the two
            // sides order the duplicates identically (TP1). Identical ops
            // may both keep their position: the results coincide anyway.
            let new_pos = if p1 < p2 {
                *p1
            } else if p1 > p2 {
                p1 + 1
            } else if (s1, c1) <= (s2, c2) {
                *p1
            } else {
                p1 + 1
            };
            Ins {
                pos: new_pos,
                content: c1.clone(),
                site: *s1,
            }
        }
        (
            Ins {
                pos: p1,
                content,
                site,
            },
            Del { pos: p2, .. },
        ) => {
            let new_pos = if p1 <= p2 { *p1 } else { p1 - 1 };
            Ins {
                pos: new_pos,
                content: content.clone(),
                site: *site,
            }
        }
        (
            Del {
                pos: p1,
                content,
                site,
            },
            Ins { pos: p2, .. },
        ) => {
            let new_pos = if p1 < p2 { *p1 } else { p1 + 1 };
            Del {
                pos: new_pos,
                content: content.clone(),
                site: *site,
            }
        }
        (
            Del {
                pos: p1,
                content,
                site,
            },
            Del { pos: p2, .. },
        ) => {
            if p1 == p2 {
                // Both removed the same line: nothing left to do.
                return None;
            }
            let new_pos = if p1 < p2 { *p1 } else { p1 - 1 };
            Del {
                pos: new_pos,
                content: content.clone(),
                site: *site,
            }
        }
    };
    Some(out)
}

/// Transform a single op against a *sequence* (each element of `seq` is
/// defined on the state left by its predecessor — i.e. `seq` is a patch).
pub fn transform_op_seq(a: &TextOp, seq: &[TextOp]) -> Option<TextOp> {
    let mut cur = a.clone();
    for b in seq {
        cur = transform_op(&cur, b)?;
    }
    Some(cur)
}

/// Symmetrically transform two concurrent *sequences* defined on the same
/// base state. Returns `(a', b')` such that `base ∘ b ∘ a' == base ∘ a ∘ b'`
/// (sequence-level TP1, property-tested in this module).
pub fn transform_seqs(a: &[TextOp], b: &[TextOp]) -> (Vec<TextOp>, Vec<TextOp>) {
    // b_cur: `b` progressively transformed over the prefix of `a` processed
    // so far. Each op of `a` is transformed over b_cur to emit a'.
    let mut b_cur: Vec<TextOp> = b.to_vec();
    let mut a_out: Vec<TextOp> = Vec::with_capacity(a.len());
    for op_a in a {
        // Transform op_a over the whole b_cur (a patch), while updating
        // b_cur against op_a.
        let mut x = Some(op_a.clone());
        let mut b_next: Vec<TextOp> = Vec::with_capacity(b_cur.len());
        for op_b in &b_cur {
            match x {
                Some(ref xa) => {
                    let b_t = transform_op(op_b, xa);
                    let x_t = transform_op(xa, op_b);
                    if let Some(bt) = b_t {
                        b_next.push(bt);
                    }
                    x = x_t;
                }
                None => b_next.push(op_b.clone()),
            }
        }
        if let Some(xa) = x {
            a_out.push(xa);
        }
        b_cur = b_next;
    }
    (a_out, b_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;
    use crate::op::TextOp;
    use proptest::prelude::*;

    fn doc(lines: &[&str]) -> Document {
        Document::from_lines(lines.iter().map(|s| s.to_string()).collect())
    }

    // --- unit cases for every transform branch -------------------------

    #[test]
    fn ins_ins_independent() {
        let a = TextOp::ins(1, "a", 1);
        let b = TextOp::ins(3, "b", 2);
        assert_eq!(transform_op(&a, &b), Some(TextOp::ins(1, "a", 1)));
        assert_eq!(transform_op(&b, &a), Some(TextOp::ins(4, "b", 2)));
    }

    #[test]
    fn ins_ins_same_pos_site_tiebreak() {
        let a = TextOp::ins(2, "low-site", 1);
        let b = TextOp::ins(2, "high-site", 9);
        // Lower site keeps position; higher site shifts.
        assert_eq!(transform_op(&a, &b), Some(TextOp::ins(2, "low-site", 1)));
        assert_eq!(transform_op(&b, &a), Some(TextOp::ins(3, "high-site", 9)));
    }

    #[test]
    fn ins_del_before_and_after() {
        let ins = TextOp::ins(2, "x", 1);
        assert_eq!(
            transform_op(&ins, &TextOp::del(5, "y", 2)),
            Some(TextOp::ins(2, "x", 1))
        );
        assert_eq!(
            transform_op(&ins, &TextOp::del(0, "y", 2)),
            Some(TextOp::ins(1, "x", 1))
        );
        // Delete at exactly the insert position: insert stays.
        assert_eq!(
            transform_op(&ins, &TextOp::del(2, "y", 2)),
            Some(TextOp::ins(2, "x", 1))
        );
    }

    #[test]
    fn del_ins_shifts() {
        let del = TextOp::del(2, "x", 1);
        assert_eq!(
            transform_op(&del, &TextOp::ins(5, "y", 2)),
            Some(TextOp::del(2, "x", 1))
        );
        assert_eq!(
            transform_op(&del, &TextOp::ins(0, "y", 2)),
            Some(TextOp::del(3, "x", 1))
        );
        // Insert at the delete position pushes the target down.
        assert_eq!(
            transform_op(&del, &TextOp::ins(2, "y", 2)),
            Some(TextOp::del(3, "x", 1))
        );
    }

    #[test]
    fn del_del_same_line_annihilates() {
        let a = TextOp::del(2, "x", 1);
        let b = TextOp::del(2, "x", 2);
        assert_eq!(transform_op(&a, &b), None);
    }

    #[test]
    fn del_del_distinct() {
        let a = TextOp::del(4, "x", 1);
        assert_eq!(
            transform_op(&a, &TextOp::del(1, "y", 2)),
            Some(TextOp::del(3, "x", 1))
        );
        assert_eq!(
            transform_op(&a, &TextOp::del(6, "y", 2)),
            Some(TextOp::del(4, "x", 1))
        );
    }

    // --- TP1 ------------------------------------------------------------

    /// Apply helper: base ∘ first ∘ IT(second, first).
    fn converge(base: &Document, x: &TextOp, y: &TextOp) -> Document {
        let mut d = base.clone();
        d.apply(x).unwrap();
        if let Some(y2) = transform_op(y, x) {
            d.apply(&y2).unwrap();
        }
        d
    }

    #[test]
    fn tp1_concrete_cases() {
        let base = doc(&["l0", "l1", "l2", "l3"]);
        let cases = vec![
            (TextOp::ins(1, "A", 1), TextOp::ins(1, "B", 2)),
            (TextOp::ins(1, "A", 2), TextOp::ins(1, "B", 1)),
            (TextOp::ins(2, "A", 1), TextOp::del(2, "l2", 2)),
            (TextOp::del(1, "l1", 1), TextOp::del(1, "l1", 2)),
            (TextOp::del(0, "l0", 1), TextOp::del(3, "l3", 2)),
            (TextOp::ins(4, "A", 1), TextOp::del(0, "l0", 2)),
        ];
        for (a, b) in cases {
            let left = converge(&base, &a, &b);
            let right = converge(&base, &b, &a);
            assert_eq!(
                left.lines(),
                right.lines(),
                "TP1 violated for a={a:?} b={b:?}"
            );
        }
    }

    fn arb_op(max_pos: usize) -> impl Strategy<Value = TextOp> {
        (
            0..=max_pos,
            prop::sample::select(vec!["alpha", "beta", "gamma"]),
            1u64..5,
            prop::bool::ANY,
        )
            .prop_map(move |(pos, content, site, is_ins)| {
                if is_ins {
                    TextOp::ins(pos, content, site)
                } else {
                    TextOp::del(pos.min(max_pos.saturating_sub(1)), content, site)
                }
            })
    }

    proptest! {
        /// TP1 over random op pairs on a 6-line document. Deletes must name
        /// the actual line content to apply cleanly, so we rewrite content.
        #[test]
        fn tp1_random_pairs(a in arb_op(6), b in arb_op(6)) {
            let base = doc(&["l0", "l1", "l2", "l3", "l4", "l5"]);
            let fix = |op: TextOp| -> TextOp {
                match op {
                    TextOp::Del { pos, site, .. } => {
                        TextOp::del(pos, format!("l{pos}"), site)
                    }
                    other => other,
                }
            };
            let a = fix(a);
            let b = fix(b);
            let left = converge(&base, &a, &b);
            let right = converge(&base, &b, &a);
            prop_assert_eq!(left.lines(), right.lines());
        }

        /// Sequence-level TP1: base ∘ a ∘ b' == base ∘ b ∘ a'.
        #[test]
        fn tp1_sequences(seed_a in 0u64..1000, seed_b in 0u64..1000, len_a in 0usize..5, len_b in 0usize..5) {
            let base = doc(&["l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7"]);
            // Build two valid patches by applying random ops to clones.
            let gen = |seed: u64, len: usize, site: u64| -> Vec<TextOp> {
                let mut d = base.clone();
                let mut ops = Vec::new();
                let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(site);
                for i in 0..len {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let r = (s >> 33) as usize;
                    let op = if r % 2 == 0 || d.len() == 0 {
                        TextOp::ins(r % (d.len() + 1), format!("s{site}-{i}"), site)
                    } else {
                        let pos = r % d.len();
                        TextOp::del(pos, d.line(pos).unwrap().to_string(), site)
                    };
                    d.apply(&op).unwrap();
                    ops.push(op);
                }
                ops
            };
            let a = gen(seed_a, len_a, 1);
            let b = gen(seed_b, len_b, 2);
            let (a2, b2) = transform_seqs(&a, &b);

            let mut left = base.clone();
            for op in a.iter().chain(b2.iter()) {
                left.apply(op).unwrap();
            }
            let mut right = base.clone();
            for op in b.iter().chain(a2.iter()) {
                right.apply(op).unwrap();
            }
            prop_assert_eq!(left.lines(), right.lines());
        }
    }

    #[test]
    fn transform_op_seq_folds() {
        let a = TextOp::ins(5, "x", 1);
        let seq = vec![TextOp::del(0, "a", 2), TextOp::del(0, "b", 2)];
        assert_eq!(transform_op_seq(&a, &seq), Some(TextOp::ins(3, "x", 1)));
    }

    #[test]
    fn transform_seqs_with_annihilation() {
        // Both sides delete line 1; a also inserts afterwards.
        let a = vec![TextOp::del(1, "l1", 1), TextOp::ins(1, "new", 1)];
        let b = vec![TextOp::del(1, "l1", 2)];
        let (a2, b2) = transform_seqs(&a, &b);
        // a's delete is annihilated; its insert survives.
        assert_eq!(a2, vec![TextOp::ins(1, "new", 1)]);
        // b's delete is annihilated against a's delete.
        assert_eq!(b2, Vec::<TextOp>::new());

        let base = doc(&["l0", "l1", "l2"]);
        let mut left = base.clone();
        for op in a.iter().chain(b2.iter()) {
            left.apply(op).unwrap();
        }
        let mut right = base.clone();
        for op in b.iter().chain(a2.iter()) {
            right.apply(op).unwrap();
        }
        assert_eq!(left.lines(), right.lines());
        assert_eq!(left.lines(), &["l0".to_string(), "new".into(), "l2".into()]);
    }
}
