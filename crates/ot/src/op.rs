//! Line-level text operations, the unit the So6 reconciliation engine works
//! with (Molli et al., GROUP'03: a synchronizer over line-based `AddTxt` /
//! `DelTxt` operations).

use std::fmt;

/// One line-granularity edit.
///
/// `Del` carries the expected line content: applying it verifies the content
/// matches, turning any transformation bug into a loud error instead of
/// silent divergence (So6 does the same for safety).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum TextOp {
    /// Insert `content` so that it becomes line number `pos` (0-based).
    Ins {
        /// Target line index after insertion.
        pos: usize,
        /// The inserted line.
        content: String,
        /// Site (author) id — tie-breaker for concurrent same-position
        /// inserts; gives the transformation its TP1 property.
        site: u64,
    },
    /// Delete line `pos`, which must currently read `content`.
    Del {
        /// Line index to remove.
        pos: usize,
        /// Expected current content of that line.
        content: String,
        /// Site (author) id.
        site: u64,
    },
}

impl TextOp {
    /// The line index this op targets.
    pub fn pos(&self) -> usize {
        match self {
            TextOp::Ins { pos, .. } | TextOp::Del { pos, .. } => *pos,
        }
    }

    /// The line content carried by the op.
    pub fn content(&self) -> &str {
        match self {
            TextOp::Ins { content, .. } | TextOp::Del { content, .. } => content,
        }
    }

    /// The originating site id.
    pub fn site(&self) -> u64 {
        match self {
            TextOp::Ins { site, .. } | TextOp::Del { site, .. } => *site,
        }
    }

    /// Convenience constructor.
    pub fn ins(pos: usize, content: impl Into<String>, site: u64) -> Self {
        TextOp::Ins {
            pos,
            content: content.into(),
            site,
        }
    }

    /// Convenience constructor.
    pub fn del(pos: usize, content: impl Into<String>, site: u64) -> Self {
        TextOp::Del {
            pos,
            content: content.into(),
            site,
        }
    }

    /// The inverse operation (for undo / invertibility tests).
    pub fn invert(&self) -> TextOp {
        match self {
            TextOp::Ins { pos, content, site } => TextOp::Del {
                pos: *pos,
                content: content.clone(),
                site: *site,
            },
            TextOp::Del { pos, content, site } => TextOp::Ins {
                pos: *pos,
                content: content.clone(),
                site: *site,
            },
        }
    }
}

impl fmt::Debug for TextOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextOp::Ins { pos, content, site } => write!(f, "Ins({pos}, {content:?}, s{site})"),
            TextOp::Del { pos, content, site } => write!(f, "Del({pos}, {content:?}, s{site})"),
        }
    }
}

/// Errors surfaced when applying operations to a document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OtError {
    /// Insert position beyond end of document.
    InsertOutOfBounds {
        /// Requested position.
        pos: usize,
        /// Document length.
        len: usize,
    },
    /// Delete position beyond end of document.
    DeleteOutOfBounds {
        /// Requested position.
        pos: usize,
        /// Document length.
        len: usize,
    },
    /// Delete expected different content — indicates divergence or a
    /// transformation bug.
    ContentMismatch {
        /// Position of the mismatch.
        pos: usize,
        /// What the op expected.
        expected: String,
        /// What the document held.
        found: String,
    },
    /// A patch failed to decode from its wire form.
    Codec(String),
}

impl fmt::Display for OtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OtError::InsertOutOfBounds { pos, len } => {
                write!(f, "insert at {pos} beyond document length {len}")
            }
            OtError::DeleteOutOfBounds { pos, len } => {
                write!(f, "delete at {pos} beyond document length {len}")
            }
            OtError::ContentMismatch {
                pos,
                expected,
                found,
            } => write!(
                f,
                "content mismatch at line {pos}: expected {expected:?}, found {found:?}"
            ),
            OtError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for OtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let op = TextOp::ins(3, "hello", 7);
        assert_eq!(op.pos(), 3);
        assert_eq!(op.content(), "hello");
        assert_eq!(op.site(), 7);
    }

    #[test]
    fn invert_roundtrips() {
        let op = TextOp::del(2, "x", 1);
        assert_eq!(op.invert().invert(), op);
        assert!(matches!(op.invert(), TextOp::Ins { pos: 2, .. }));
    }

    #[test]
    fn error_display() {
        let e = OtError::ContentMismatch {
            pos: 1,
            expected: "a".into(),
            found: "b".into(),
        };
        assert!(e.to_string().contains("mismatch"));
    }
}
