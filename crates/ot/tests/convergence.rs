//! OT-level convergence: simulate the P2P-LTR reconciliation contract
//! purely in memory — K sites edit concurrently, a virtual timestamper
//! serializes publications, everyone integrates in total order — and
//! assert all sites converge, for randomized schedules.

use ot::{Document, Patch, Replica, TextOp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A virtual master: the continuous timestamp log.
struct VirtualLog {
    patches: Vec<Patch>, // patches[i] has ts i+1
}

impl VirtualLog {
    fn new() -> Self {
        VirtualLog {
            patches: Vec::new(),
        }
    }
    fn last_ts(&self) -> u64 {
        self.patches.len() as u64
    }
    /// The paper's validation: grant only if the site is current.
    fn try_publish(&mut self, site: &mut Replica) -> bool {
        if site.ts == self.last_ts() {
            if let Some(p) = site.tentative_for_publish() {
                self.patches.push(p);
                site.acknowledge_own(self.last_ts()).unwrap();
                return true;
            }
        }
        false
    }
    /// The retrieval procedure: integrate everything the site misses.
    fn catch_up(&self, site: &mut Replica) {
        while site.ts < self.last_ts() {
            let ts = site.ts + 1;
            site.integrate_remote(ts, &self.patches[(ts - 1) as usize])
                .expect("continuous integration");
        }
    }
}

fn random_edit(rng: &mut StdRng, site: u64, doc: &Document, tag: usize) -> Document {
    let mut lines = doc.lines().to_vec();
    match rng.random_range(0..3) {
        0 => {
            let pos = rng.random_range(0..=lines.len());
            lines.insert(pos, format!("s{site}-{tag}"));
        }
        1 if !lines.is_empty() => {
            let pos = rng.random_range(0..lines.len());
            lines.remove(pos);
        }
        _ => {
            if lines.is_empty() {
                lines.push(format!("s{site}-{tag}"));
            } else {
                let pos = rng.random_range(0..lines.len());
                lines[pos] = format!("s{site}-{tag}");
            }
        }
    }
    Document::from_lines(lines)
}

/// Run a full randomized session and assert convergence.
fn run_session(seed: u64, sites_n: usize, rounds: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = Document::from_text("alpha\nbeta\ngamma");
    let mut log = VirtualLog::new();
    let mut sites: Vec<Replica> = (1..=sites_n as u64)
        .map(|s| Replica::new(s, initial.clone()))
        .collect();

    for round in 0..rounds {
        // Random subset of sites edits concurrently.
        for i in 0..sites_n {
            if rng.random_bool(0.6) {
                let target = random_edit(&mut rng, sites[i].site, sites[i].working(), round);
                sites[i].edit(&target).unwrap();
            }
        }
        // Publication attempts in random order; behind sites catch up and
        // retry — exactly the paper's validate/retrieve loop.
        let mut order: Vec<usize> = (0..sites_n).collect();
        for k in (1..order.len()).rev() {
            let j = rng.random_range(0..=k);
            order.swap(k, j);
        }
        for &i in &order {
            while sites[i].pending().is_some() {
                if !log.try_publish(&mut sites[i]) {
                    log.catch_up(&mut sites[i]);
                }
            }
        }
    }
    // Everyone pulls the full log.
    for s in sites.iter_mut() {
        log.catch_up(s);
    }
    let reference = sites[0].working().to_text();
    for s in &sites {
        assert_eq!(
            s.working().to_text(),
            reference,
            "site {} diverged (seed {seed})",
            s.site
        );
        assert_eq!(s.ts, log.last_ts());
        assert!(s.pending().is_none());
    }
}

#[test]
fn three_sites_ten_rounds() {
    run_session(1, 3, 10);
}

#[test]
fn five_sites_deep_session() {
    run_session(2, 5, 25);
}

#[test]
fn two_sites_always_conflicting() {
    // Both sites edit every round: maximal contention.
    let initial = Document::from_text("x");
    let mut log = VirtualLog::new();
    let mut a = Replica::new(1, initial.clone());
    let mut b = Replica::new(2, initial);
    for round in 0..15 {
        let ta = Document::from_text(&format!("{}\na{round}", a.working().to_text()));
        a.edit(&ta).unwrap();
        let tb = Document::from_text(&format!("b{round}\n{}", b.working().to_text()));
        b.edit(&tb).unwrap();
        while a.pending().is_some() {
            if !log.try_publish(&mut a) {
                log.catch_up(&mut a);
            }
        }
        while b.pending().is_some() {
            if !log.try_publish(&mut b) {
                log.catch_up(&mut b);
            }
        }
    }
    log.catch_up(&mut a);
    log.catch_up(&mut b);
    assert_eq!(a.working().to_text(), b.working().to_text());
    // No edit lost: all 30 lines plus the original.
    assert_eq!(a.working().len(), 31);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    /// Randomized sessions across seeds, site counts and depths.
    #[test]
    fn randomized_sessions_converge(seed in 0u64..5000, sites in 2usize..6, rounds in 1usize..12) {
        run_session(seed, sites, rounds);
    }
}

#[test]
fn op_inversion_undoes() {
    let mut doc = Document::from_text("a\nb\nc");
    let op = TextOp::ins(1, "x", 1);
    doc.apply(&op).unwrap();
    doc.apply(&op.invert()).unwrap();
    assert_eq!(doc.to_text(), "a\nb\nc");

    let op = TextOp::del(2, "c", 1);
    let mut doc2 = Document::from_text("a\nb\nc");
    doc2.apply(&op).unwrap();
    doc2.apply(&op.invert()).unwrap();
    assert_eq!(doc2.to_text(), "a\nb\nc");
}
