//! End-to-end tests for the linter: per-rule positives and negatives over
//! the fixture files, allow/baseline suppression, the masking tripwire
//! (strings, comments, `#[cfg(test)]` must never yield findings), and the
//! WIRE-TAGS freeze — including the canonical "renumbered tag fails the
//! build" demonstration.

use std::fs;
use std::path::{Path, PathBuf};

use detlint::{scan_root, suppress, write_tags, Options};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

fn count(findings: &[detlint::Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

// ---------------------------------------------------------------------------
// Rule positives / negatives (pure scan_file, no filesystem)
// ---------------------------------------------------------------------------

#[test]
fn det_hash_fires_in_det_crates_only() {
    let src = fixture("det_hash_pos.rs");
    // Two declarations + two constructions; the `use` line is exempt.
    let hits = detlint::rules::scan_file("crates/kts/src/bad.rs", &src);
    assert_eq!(count(&hits, "DET-HASH"), 4, "{hits:#?}");

    // Same source outside the deterministic crates: silent.
    let hits = detlint::rules::scan_file("crates/store/src/ok.rs", &src);
    assert_eq!(count(&hits, "DET-HASH"), 0, "{hits:#?}");
}

#[test]
fn masking_tripwire_docs_strings_and_tests_never_fire() {
    let src = fixture("det_hash_neg.rs");
    let hits = detlint::rules::scan_file("crates/kts/src/ok.rs", &src);
    assert!(
        hits.is_empty(),
        "HashMap in doc comments, string literals, raw strings and \
         #[cfg(test)] items must be invisible: {hits:#?}"
    );
}

#[test]
fn det_clock_and_rng_positives() {
    let src = fixture("det_clock_rng_pos.rs");
    let hits = detlint::rules::scan_file("crates/chord/src/bad.rs", &src);
    // Instant::now and SystemTime::now on the same line: two findings.
    assert_eq!(count(&hits, "DET-CLOCK"), 2, "{hits:#?}");
    assert_eq!(count(&hits, "DET-RNG"), 1, "{hits:#?}");

    // The bench crate is exempt from DET-CLOCK but not DET-RNG.
    let hits = detlint::rules::scan_file("crates/bench/src/bad.rs", &src);
    assert_eq!(count(&hits, "DET-CLOCK"), 0, "{hits:#?}");
    assert_eq!(count(&hits, "DET-RNG"), 1, "{hits:#?}");
}

#[test]
fn tot_panic_in_handlers_and_wire_files() {
    let src = fixture("tot_panic_pos.rs");
    // Inside `fn on_message`: literal index, .unwrap(), panic! — three.
    // `helper` is outside any on_* body, so its unwrap_or is silent.
    let hits = detlint::rules::scan_file("crates/core/src/handlers.rs", &src);
    assert_eq!(count(&hits, "TOT-PANIC"), 3, "{hits:#?}");

    // A wire decode-path file is whole-file scope; still three here.
    let hits = detlint::rules::scan_file("crates/wire/src/frame.rs", &src);
    assert_eq!(count(&hits, "TOT-PANIC"), 3, "{hits:#?}");

    // Any other file outside handlers: nothing.
    let hits = detlint::rules::scan_file("crates/wire/src/runner.rs", &src);
    // runner.rs is not a decode-path file, so only the on_* body counts.
    assert_eq!(count(&hits, "TOT-PANIC"), 3, "{hits:#?}");
}

#[test]
fn met_strkey_outside_compat_layer_only() {
    let src = fixture("met_strkey_pos.rs");
    let hits = detlint::rules::scan_file("crates/core/src/bad.rs", &src);
    assert_eq!(count(&hits, "MET-STRKEY"), 2, "{hits:#?}");

    let hits = detlint::rules::scan_file("crates/simnet/src/metrics.rs", &src);
    assert_eq!(count(&hits, "MET-STRKEY"), 0, "{hits:#?}");
}

// ---------------------------------------------------------------------------
// Suppression: inline allows and the baseline
// ---------------------------------------------------------------------------

#[test]
fn allows_suppress_and_malformed_allows_are_findings() {
    let rel = "crates/kts/src/allow.rs";
    let src = fixture("allow_cases.rs");
    let mut raw = detlint::rules::scan_file(rel, &src);
    let mut allows = suppress::parse_allows(rel, &src, &mut raw);
    // Two malformed annotations (missing reason, unknown rule).
    assert_eq!(count(&raw, "ALLOW-SYNTAX"), 2, "{raw:#?}");

    let mut baseline = suppress::Baseline::parse("");
    let surviving = suppress::filter_file(raw, &src, &mut allows, &mut baseline);
    // The covered and trailing-covered findings are gone; the two
    // violations next to malformed allows survive, as do the syntax errors.
    assert_eq!(count(&surviving, "DET-HASH"), 2, "{surviving:#?}");
    assert_eq!(count(&surviving, "ALLOW-SYNTAX"), 2, "{surviving:#?}");
    assert!(allows.iter().all(|a| a.used > 0), "{allows:#?}");
}

/// Build a throwaway mini-workspace under the cargo tmpdir.
fn mini_workspace(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    for (rel, contents) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, contents).unwrap();
    }
    root
}

#[test]
fn baseline_grandfathers_exact_lines_and_flags_stale_entries() {
    let bad = "pub struct S {\n    m: HashMap<u64, u64>,\n}\n";
    let root = mini_workspace(
        "detlint-baseline",
        &[
            ("crates/kts/src/bad.rs", bad),
            (
                "detlint.baseline",
                "DET-HASH\tcrates/kts/src/bad.rs\tm: HashMap<u64, u64>,\n",
            ),
        ],
    );
    let report = scan_root(&root, &Options::default()).unwrap();
    assert!(report.clean(), "{:#?}", report.findings);
    assert_eq!(report.suppressed, 1);

    // A stale entry is an error under --deny.
    fs::write(
        root.join("detlint.baseline"),
        "DET-HASH\tcrates/kts/src/bad.rs\tm: HashMap<u64, u64>,\n\
         DET-HASH\tcrates/kts/src/gone.rs\tnope\n",
    )
    .unwrap();
    let report = scan_root(&root, &Options { deny: true }).unwrap();
    assert_eq!(count(&report.findings, "ALLOW-SYNTAX"), 1, "{report:#?}");

    // Without the baseline, the finding itself comes back.
    fs::write(root.join("detlint.baseline"), "").unwrap();
    let report = scan_root(&root, &Options::default()).unwrap();
    assert_eq!(count(&report.findings, "DET-HASH"), 1, "{report:#?}");
}

#[test]
fn unused_allow_is_an_error_under_deny() {
    let src = "// detlint::allow(DET-HASH, nothing here needs this)\n\
               pub struct S;\n";
    let root = mini_workspace("detlint-unused-allow", &[("crates/kts/src/ok.rs", src)]);
    let report = scan_root(&root, &Options::default()).unwrap();
    assert!(report.clean(), "{:#?}", report.findings);
    let report = scan_root(&root, &Options { deny: true }).unwrap();
    assert_eq!(count(&report.findings, "ALLOW-SYNTAX"), 1, "{report:#?}");
}

// ---------------------------------------------------------------------------
// WIRE-TAGS freeze
// ---------------------------------------------------------------------------

#[test]
fn wire_tags_roundtrip_then_renumber_fails() {
    let proto = fixture("wire_proto_mini.rs");
    let root = mini_workspace(
        "detlint-tags",
        &[("crates/wire/src/proto.rs", proto.as_str())],
    );

    // Freshly generated manifest: scan is clean.
    let text = write_tags(&root).unwrap();
    assert!(text.contains("crates/wire/src/proto.rs | Msg | 0 = Ping"));
    assert!(text.contains("crates/wire/src/proto.rs | Msg | 1 = Pong"));
    let report = scan_root(&root, &Options::default()).unwrap();
    assert!(report.clean(), "{:#?}", report.findings);

    // Deliberately renumber the two variants in the lock: the scan must
    // fail — this is the regression CI is gated on.
    let tampered = text
        .replace("0 = Ping", "0 = Pong")
        .replace("1 = Pong", "1 = Ping");
    fs::write(root.join("crates/wire/TAGS.lock"), &tampered).unwrap();
    let report = scan_root(&root, &Options::default()).unwrap();
    assert_eq!(count(&report.findings, "WIRE-TAGS"), 2, "{report:#?}");
    assert!(!report.clean());

    // A locked tag that vanished from the code is also fatal.
    let grown = format!("{text}crates/wire/src/proto.rs | Msg | 2 = Gone\n");
    fs::write(root.join("crates/wire/TAGS.lock"), &grown).unwrap();
    let report = scan_root(&root, &Options::default()).unwrap();
    assert_eq!(count(&report.findings, "WIRE-TAGS"), 1, "{report:#?}");

    // And a code-side addition without regenerating the lock.
    fs::write(root.join("crates/wire/TAGS.lock"), &text).unwrap();
    let extended = proto.replace(
        "            1 => Ok(Msg::Pong),",
        "            1 => Ok(Msg::Pong),\n            2 => Ok(Msg::Gone),",
    );
    assert_ne!(extended, proto);
    fs::write(root.join("crates/wire/src/proto.rs"), extended).unwrap();
    let report = scan_root(&root, &Options::default()).unwrap();
    // Two findings: the unlocked tag itself, plus the encode/decode
    // cross-check (the encoder still never emits tag 2).
    assert_eq!(count(&report.findings, "WIRE-TAGS"), 2, "{report:#?}");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.msg.contains("not in TAGS.lock")),
        "{report:#?}"
    );

    // Encode/decode cross-check: pushing a tag the decoder never matches.
    let skewed = proto.replace("Msg::Pong => out.push(1)", "Msg::Pong => out.push(9)");
    assert_ne!(skewed, proto);
    fs::write(root.join("crates/wire/src/proto.rs"), skewed).unwrap();
    let report = scan_root(&root, &Options::default()).unwrap();
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "WIRE-TAGS" && f.msg.contains("disagree")),
        "{report:#?}"
    );
}

// ---------------------------------------------------------------------------
// The real tree
// ---------------------------------------------------------------------------

#[test]
fn workspace_is_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/detlint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("detlint.baseline").is_file(),
        "not the repo root?"
    );
    let report = scan_root(&root, &Options { deny: true }).unwrap();
    assert!(
        report.clean(),
        "the committed tree must pass `detlint --deny`:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_has_explain_text() {
    for r in detlint::RULES {
        assert!(!r.summary.is_empty(), "{}", r.id);
        assert!(
            r.explain.len() > 80,
            "--explain {} should actually explain something",
            r.id
        );
    }
}
