// Allow-annotation fixture, scanned as a det crate:
//  - line allow above the violation       -> suppressed
//  - trailing allow on the violation line -> suppressed
//  - allow with no reason                 -> ALLOW-SYNTAX + violation survives
//  - unknown rule in allow                -> ALLOW-SYNTAX
use std::collections::HashMap;
// detlint::allow(DET-HASH, fixture: justified map)
pub type Covered = HashMap<u64, u64>;

pub type Trailing = HashMap<u64, u64>; // detlint::allow(DET-HASH, fixture: trailing)

// detlint::allow(DET-HASH)
pub type NoReason = HashMap<u64, u64>;

// detlint::allow(NOT-A-RULE, whatever)
pub type BadRule = HashMap<u64, u64>;
