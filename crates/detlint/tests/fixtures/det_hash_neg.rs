// Negative DET-HASH fixture: BTreeMap everywhere, plus HashMap mentions
// that only occur where the scanner must not look.
use std::collections::BTreeMap;

/// Docs may say HashMap as much as they like: HashMap, HashMap::new().
pub struct State {
    pending: BTreeMap<u64, String>, // "HashMap" in a trailing string? no: comment
}

pub fn describe() -> &'static str {
    "this returns the literal text HashMap::new() inside a string"
}

pub fn raw() -> &'static str {
    r#"raw strings hide HashSet<u64> too"#
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_only_hashmap_is_fine() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
