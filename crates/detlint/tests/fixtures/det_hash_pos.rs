// Positive DET-HASH fixture: scanned as if it lived in a
// sim-deterministic crate (e.g. crates/kts/src/...).
use std::collections::{HashMap, HashSet};

pub struct State {
    pending: HashMap<u64, String>,
    seen: HashSet<u64>,
}

impl State {
    pub fn new() -> Self {
        State {
            pending: HashMap::new(),
            seen: HashSet::new(),
        }
    }
}
