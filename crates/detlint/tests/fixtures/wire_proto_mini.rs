// Miniature frozen-codec file used by the WIRE-TAGS tests: shaped like
// crates/wire/src/proto.rs (encode pushes literal tags, decode matches
// them back) without depending on the real wire crate.
pub enum Msg {
    Ping,
    Pong,
}

impl Encode for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Ping => out.push(0),
            Msg::Pong => out.push(1),
        }
    }
}

impl Decode for Msg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            0 => Ok(Msg::Ping),
            1 => Ok(Msg::Pong),
            t => Err(WireError::BadTag(t)),
        }
    }
}
