// Positive DET-CLOCK / DET-RNG fixture.
use std::time::{Instant, SystemTime};

pub fn now_pair() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
