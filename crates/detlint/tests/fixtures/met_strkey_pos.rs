// Positive MET-STRKEY fixture: string-keyed counter calls outside the
// compat layer.
pub fn bump(m: &mut simnet::Metrics) {
    m.incr("hot.path.counter");
    m.incr_by("hot.path.bytes", 42);
}
