// Positive TOT-PANIC fixture: panics inside an `fn on_*` message handler
// (scanned under any crate) and anywhere in a wire decode-path file.
pub struct Node {
    vals: std::collections::BTreeMap<u64, u64>,
}

impl Node {
    pub fn on_message(&mut self, from: u64, raw: &[u8]) {
        let first = raw[0]; // literal index: panics on empty input
        let v = self.vals.get(&from).unwrap();
        if *v != u64::from(first) {
            panic!("mismatch");
        }
    }

    pub fn helper(&self, raw: &[u8]) -> u8 {
        // Outside on_* and outside wire paths: not TOT-PANIC territory.
        raw.first().copied().unwrap_or(0)
    }
}
