//! Suppression machinery: inline `detlint::allow` annotations and the
//! committed `detlint.baseline` file.
//!
//! * `// detlint::allow(RULE, reason)` suppresses RULE on its own line and
//!   the line immediately below — the annotation sits beside or above the
//!   code it justifies.
//! * `// detlint::allow-file(RULE, reason)` anywhere in a file suppresses
//!   RULE for the whole file (for modules that are exempt by contract,
//!   e.g. the real-time TCP runner vs DET-CLOCK).
//! * `detlint.baseline` lines of `RULE<TAB>path<TAB>trimmed-source-line`
//!   grandfather known findings without touching the source. The file is
//!   meant to shrink: new code should use inline allows with reasons.
//!
//! A reason is mandatory; an allow without one (or naming an unknown
//! rule) is an ALLOW-SYNTAX finding. Allows that suppress nothing are
//! reported as unused (errors under `--deny`), so stale suppressions
//! cannot linger.

use crate::rules::{rule, Finding};

/// One parsed allow annotation.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line it sits on.
    pub line: usize,
    /// Rule it suppresses.
    pub rule: String,
    /// Whole-file scope?
    pub file_scope: bool,
    /// Number of findings it suppressed (filled during filtering).
    pub used: usize,
}

/// Parse all allow annotations in `src`; malformed ones become findings.
pub fn parse_allows(rel: &str, src: &str, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        for (marker, file_scope) in [("detlint::allow-file(", true), ("detlint::allow(", false)] {
            let Some(off) = line.find(marker) else {
                continue;
            };
            let rest = &line[off + marker.len()..];
            let Some(end) = rest.find(')') else {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "ALLOW-SYNTAX",
                    msg: "unterminated detlint::allow annotation".to_string(),
                });
                continue;
            };
            let body = &rest[..end];
            let (rule_id, reason) = match body.split_once(',') {
                Some((r, reason)) => (r.trim(), reason.trim()),
                None => (body.trim(), ""),
            };
            if rule(rule_id).is_none() {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "ALLOW-SYNTAX",
                    msg: format!("unknown rule `{rule_id}` in allow annotation"),
                });
                continue;
            }
            if reason.is_empty() {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "ALLOW-SYNTAX",
                    msg: format!(
                        "allow({rule_id}) without a reason — write down why the \
                         invariant holds here"
                    ),
                });
                continue;
            }
            out.push(Allow {
                line: lineno,
                rule: rule_id.to_string(),
                file_scope,
                used: 0,
            });
            break; // one annotation per line
        }
    }
    out
}

/// A parsed baseline: `(rule, path, trimmed line)` entries with use counts.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<(String, String, String, usize)>,
}

impl Baseline {
    /// Parse the baseline file text. `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let mut parts = t.splitn(3, '\t');
            if let (Some(r), Some(p), Some(snip)) = (parts.next(), parts.next(), parts.next()) {
                entries.push((r.to_string(), p.to_string(), snip.trim().to_string(), 0));
            }
        }
        Baseline { entries }
    }

    /// Does the baseline cover `f` (whose source line, trimmed, is
    /// `snippet`)? Marks the entry used.
    pub fn covers(&mut self, f: &Finding, snippet: &str) -> bool {
        for (r, p, snip, used) in &mut self.entries {
            if r == f.rule && p == &f.file && snip == snippet.trim() {
                *used += 1;
                return true;
            }
        }
        false
    }

    /// Entries that matched nothing (stale grandfathering).
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(_, _, _, used)| *used == 0)
            .map(|(r, p, s, _)| format!("{r}\t{p}\t{s}"))
            .collect()
    }
}

/// Apply allows and baseline to raw findings for one file. Returns the
/// surviving findings; `allows` use-counts are updated in place.
pub fn filter_file(
    raw: Vec<Finding>,
    src: &str,
    allows: &mut [Allow],
    baseline: &mut Baseline,
) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    raw.into_iter()
        .filter(|f| {
            // ALLOW-SYNTAX findings cannot be suppressed by allows.
            if f.rule == "ALLOW-SYNTAX" {
                return true;
            }
            // Same-line allows first: a trailing annotation always claims
            // its own line, even when the line above also carries one.
            for a in allows.iter_mut() {
                if a.rule == f.rule && !a.file_scope && a.line == f.line {
                    a.used += 1;
                    return false;
                }
            }
            for a in allows.iter_mut() {
                if a.rule == f.rule && (a.file_scope || a.line + 1 == f.line) {
                    a.used += 1;
                    return false;
                }
            }
            let snippet = lines.get(f.line.saturating_sub(1)).copied().unwrap_or("");
            !baseline.covers(f, snippet)
        })
        .collect()
}
