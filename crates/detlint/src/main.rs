//! CLI for the workspace determinism & protocol-safety linter.
//!
//! ```text
//! cargo run -p detlint                  # scan, print findings, exit 1 if any
//! cargo run -p detlint -- --deny        # CI mode: also fail on stale allows
//! cargo run -p detlint -- --explain DET-HASH
//! cargo run -p detlint -- --write-tags  # regenerate crates/wire/TAGS.lock
//! cargo run -p detlint -- --summary-md out.md   # append per-rule counts
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{rules, scan_root, write_tags, Options, RULES};

fn usage() -> &'static str {
    "detlint — workspace determinism & protocol-safety linter

USAGE: detlint [--root PATH] [--deny] [--explain RULE] [--list-rules]
               [--write-tags] [--summary-md PATH]

  --root PATH        workspace root to scan (default: nearest ancestor of
                     the current directory containing detlint.baseline or
                     Cargo.toml)
  --deny             CI mode: unused allows and stale baseline entries are
                     errors too
  --explain RULE     print the long-form rationale for one rule and exit
  --list-rules       print the rule table and exit
  --write-tags       regenerate crates/wire/TAGS.lock from the code
  --summary-md PATH  append a per-rule markdown summary (GITHUB_STEP_SUMMARY)

Findings print as `file:line: [RULE] message`. Exit is nonzero on any
finding not covered by an inline `// detlint::allow(RULE, reason)`
annotation or the committed detlint.baseline."
}

/// Default root: walk up from cwd to the first dir holding Cargo.toml
/// with a `crates/` sibling (the workspace root, not a member).
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut opts = Options::default();
    let mut explain: Option<String> = None;
    let mut list_rules = false;
    let mut do_write_tags = false;
    let mut summary_md: Option<PathBuf> = None;

    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--deny" => opts.deny = true,
            "--explain" => explain = args.next(),
            "--list-rules" => list_rules = true,
            "--write-tags" => do_write_tags = true,
            "--summary-md" => summary_md = args.next().map(PathBuf::from),
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in RULES {
            println!("{:<12} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(id) = explain {
        match rules::rule(&id) {
            Some(r) => {
                println!("{} — {}\n\n{}", r.id, r.summary, r.explain);
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!(
                    "unknown rule `{id}`; known rules: {}",
                    RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(find_root);

    if do_write_tags {
        return match write_tags(&root) {
            Ok(text) => {
                let lines = text.lines().filter(|l| !l.starts_with('#')).count();
                println!("wrote {} ({lines} tags)", detlint::tags::TAGS_LOCK);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to write TAGS.lock: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match scan_root(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{}", f.render());
    }
    let mut summary = String::new();
    summary.push_str("### detlint\n\n| rule | findings |\n|---|---|\n");
    for r in RULES {
        let n = report.per_rule.get(r.id).copied().unwrap_or(0);
        summary.push_str(&format!("| `{}` | {} |\n", r.id, n));
    }
    summary.push_str(&format!(
        "\n{} file(s) scanned, {} finding(s), {} suppressed by allow/baseline.\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    ));
    if let Some(path) = summary_md {
        if let Err(e) = append_file(&path, &summary) {
            eprintln!("could not append summary to {}: {e}", path.display());
        }
    }
    eprintln!(
        "detlint: {} file(s), {} finding(s), {} suppressed{}",
        report.files_scanned,
        report.findings.len(),
        report.suppressed,
        if opts.deny { " (--deny)" } else { "" }
    );
    if !report.per_rule.is_empty() {
        for (rule, n) in &report.per_rule {
            eprintln!("  {rule}: {n}");
        }
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn append_file(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(text.as_bytes())
}
