//! Source masking: produce a same-length view of a Rust source file in
//! which comment bodies, string/char-literal contents, and (optionally)
//! `#[cfg(test)]` items are blanked to spaces.
//!
//! Rules then run plain substring matching over the masked text and can
//! never false-positive on prose in a doc comment, a pattern name inside a
//! string literal, or test-only code. Newlines are always preserved, so
//! byte offsets and line numbers in the masked text match the original.
//!
//! The lexer is a hand-rolled state machine over bytes. It understands:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments;
//! * string literals with escapes (delimiting quotes are *kept* so rules
//!   like "string-keyed counter call" can still see `("`);
//! * raw strings `r"…"`, `r#"…"#` (any hash depth), byte/raw-byte strings;
//! * char literals vs lifetimes (`'a'` vs `<'a>`), including escaped and
//!   multi-byte chars;
//! * `#[cfg(test)]`-gated items: the attribute plus the item it gates
//!   (through the matching close brace or terminating semicolon) are
//!   blanked when `mask_cfg_test` is on.

/// Blank `len` bytes starting at `start`, preserving newlines.
fn blank(out: &mut [u8], start: usize, len: usize) {
    for b in out.iter_mut().skip(start).take(len) {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Is `b` part of an identifier?
fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Mask comments and literal contents in `src`. Returns a same-length
/// string (newlines preserved; string-delimiting quotes preserved).
pub fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let n = bytes.len();
    let mut i = 0;
    while i < n {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let end = src[i..].find('\n').map(|o| i + o).unwrap_or(n);
                blank(&mut out, i, end - i);
                i = end;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                // Nested block comments, per the Rust grammar.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i - start);
            }
            b'"' => {
                // Plain string: keep both quotes, blank the contents.
                let start = i;
                i += 1;
                while i < n {
                    match bytes[i] {
                        b'\\' => i = (i + 2).min(n),
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                if i - start > 2 {
                    blank(&mut out, start + 1, i - start - 2);
                }
            }
            b'r' | b'b' | b'c' => {
                // Possible raw/byte/C string prefix: r" r#" br" b" rb is not
                // a thing, but br#" and cr#" are. Scan the prefix.
                let start = i;
                let mut j = i;
                while j < n
                    && (bytes[j] == b'r' || bytes[j] == b'b' || bytes[j] == b'c')
                    && j - i < 2
                {
                    j += 1;
                }
                let mut hashes = 0usize;
                let mut k = j;
                while k < n && bytes[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                let raw = j > i && src[i..j].contains('r');
                if k < n && bytes[k] == b'"' && (raw || (hashes == 0 && j == i + 1)) {
                    // Identifier chars immediately before mean this is just
                    // the tail of a name like `attr` — not a literal prefix.
                    if i > 0 && is_ident(bytes[i - 1]) {
                        i += 1;
                        continue;
                    }
                    if raw {
                        // Raw string: blank everything including delimiters.
                        let closer: Vec<u8> = {
                            let mut c = vec![b'"'];
                            c.extend(std::iter::repeat(b'#').take(hashes));
                            c
                        };
                        let mut m = k + 1;
                        while m < n {
                            if bytes[m] == b'"' && bytes[m..].starts_with(&closer) {
                                m += closer.len();
                                break;
                            }
                            m += 1;
                        }
                        blank(&mut out, start, m - start);
                        i = m;
                    } else {
                        // b"..." — treat like a plain string from the quote.
                        i = k; // the quote; next loop iteration handles it
                    }
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. A char literal is 'x', '\…', or
                // a multi-byte scalar; a lifetime has no closing quote
                // nearby ('a>, 'a,, 'static).
                let is_char = if i + 1 < n && bytes[i + 1] == b'\\' {
                    true
                } else if i + 2 < n && bytes[i + 2] == b'\'' {
                    true
                } else if i + 1 < n && bytes[i + 1] >= 0x80 {
                    // Multi-byte char: closing quote within the next few.
                    bytes[i + 1..(i + 6).min(n)].contains(&b'\'')
                } else {
                    false
                };
                if is_char {
                    let start = i;
                    i += 1;
                    while i < n {
                        match bytes[i] {
                            b'\\' => i = (i + 2).min(n),
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    if i - start > 2 {
                        blank(&mut out, start + 1, i - start - 2);
                    }
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // Masking only ever replaces bytes with ASCII spaces at literal/comment
    // content positions; code bytes are copied verbatim, so the result is
    // valid UTF-8 whenever the input was.
    String::from_utf8(out).unwrap_or_default()
}

/// Blank every `#[cfg(test)]` attribute and the item it gates (through the
/// matching `}` or terminating `;`). Operates on an already-masked buffer
/// so braces inside strings or comments cannot confuse the matcher.
pub fn mask_cfg_test(masked: &str) -> String {
    let mut out = masked.as_bytes().to_vec();
    let needle = b"#[cfg(test)]";
    let mut search_from = 0usize;
    loop {
        let hit = match masked[search_from..].find("#[cfg(test)]") {
            Some(o) => search_from + o,
            None => break,
        };
        let item_end = gated_item_end(&out, hit + needle.len());
        blank(&mut out, hit, item_end - hit);
        search_from = item_end;
    }
    String::from_utf8(out).unwrap_or_default()
}

/// From just past a `#[cfg(test)]` attribute, find the end (exclusive) of
/// the gated item: skip further attributes, then brace-match the first `{`
/// or stop at a top-level `;`.
fn gated_item_end(bytes: &[u8], mut i: usize) -> usize {
    let n = bytes.len();
    let mut brace_depth = 0usize;
    while i < n {
        match bytes[i] {
            b'#' if brace_depth == 0 && i + 1 < n && bytes[i + 1] == b'[' => {
                // Another attribute: skip its bracketed body.
                let mut depth = 0usize;
                while i < n {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            b'{' => {
                brace_depth += 1;
                i += 1;
            }
            b'}' => {
                brace_depth = brace_depth.saturating_sub(1);
                i += 1;
                if brace_depth == 0 {
                    return i;
                }
            }
            b';' if brace_depth == 0 => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Byte ranges (start, end) of the bodies of functions whose names start
/// with `prefix` (e.g. `on_`), found in masked text. Used to scope the
/// totality rule to message handlers.
pub fn fn_body_ranges(masked: &str, prefix: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let n = bytes.len();
    let pat = format!("fn {prefix}");
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(off) = masked[from..].find(&pat) {
        let at = from + off;
        from = at + pat.len();
        // `fn` must be a standalone keyword.
        if at > 0 && is_ident(bytes[at - 1]) {
            continue;
        }
        // Find the body opening brace; a `;` first means a trait method
        // declaration with no body.
        let mut i = at + 3;
        let mut body_start = None;
        while i < n {
            match bytes[i] {
                b'{' => {
                    body_start = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        let Some(start) = body_start else { continue };
        let mut depth = 0usize;
        let mut j = start;
        while j < n {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        out.push((start, j));
        from = j;
    }
    out
}

/// 1-based line number of byte offset `pos`.
pub fn line_of(src: &str, pos: usize) -> usize {
    src.as_bytes()[..pos.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}
