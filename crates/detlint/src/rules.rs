//! Rule definitions and the per-file scanning pass.
//!
//! Every rule has a stable ID, a one-line summary, and an `--explain` text
//! describing the invariant it protects, why it matters for this codebase,
//! and how to silence a justified finding.

use crate::lexer;

/// Crates whose state machines run under the deterministic simulator: any
/// observable iteration-order dependence breaks same-seed reproducibility.
pub const DET_CRATES: &[&str] = &["simnet", "kts", "chord", "core", "p2plog", "workload"];

/// Static description of one rule.
pub struct Rule {
    /// Stable identifier used in findings, allows, and the baseline.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Long-form `--explain` text.
    pub explain: &'static str,
}

/// All rules, in display order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "DET-HASH",
        summary: "HashMap/HashSet in a sim-deterministic crate",
        explain: "\
The simulator is byte-deterministic: the same seed must replay the same
run, and the committed bench baselines diff deterministic fields exactly.
std's HashMap/HashSet use a randomly seeded hasher, so *any* iteration
(including retain, values(), keys(), Debug formatting) observes a
different order per process — the class of bug PR 1 fixed in the kts
master handoff.

Scope: crates {simnet, kts, chord, core, p2plog, workload}. `use` lines
are not flagged — declaration and construction sites are the enforcement
points.

Fix: switch to BTreeMap/BTreeSet, or — when the container is provably
never iterated (keyed get/insert/remove only) — keep it and annotate the
line with `// detlint::allow(DET-HASH, <why it is never iterated>)`.",
    },
    Rule {
        id: "DET-CLOCK",
        summary: "wall-clock source outside bench wall-time measurement",
        explain: "\
Instant::now / SystemTime::now read the host clock. Inside simulated or
protocol code they smuggle real time into logic that must be a pure
function of the seed; results stop replaying and the fault matrix loses
its exact-drift gate.

Scope: everything except crates/bench (whose whole point is wall-time
measurement). Real-time components (the TCP transport/runner) are exempt
by design: annotate the file once with
`// detlint::allow-file(DET-CLOCK, <why this module is wall-clock by
contract>)`.",
    },
    Rule {
        id: "DET-RNG",
        summary: "unseeded randomness (thread_rng/from_entropy/OsRng)",
        explain: "\
All randomness must flow from the run's seeds (simnet::rng): the fault
engine (PR 5) replays byte-identically only because every decision draws
from a seeded stream. thread_rng / from_entropy / from_os_rng / OsRng /
getrandom inject OS entropy and break replay everywhere, including
benches (workloads must be reproducible even when wall time is not).

Fix: plumb a seeded Rng handle; for genuinely independent streams derive
a child seed (seed_from_u64) from the parent.",
    },
    Rule {
        id: "TOT-PANIC",
        summary: "panic path (unwrap/expect/panic!/indexing) in a decode or on_* handler",
        explain: "\
The wire decoder is property-tested to be *total*: hostile bytes return
Err, never panic (PR 3). Message handlers (`fn on_*`) sit behind it — a
panic there lets one malformed or unexpected message take down a node,
turning a protocol hiccup into a crash fault.

Scope: all of crates/wire/src/{varint,codec,frame,proto}.rs, plus the
bodies of functions whose names start with `on_` in every scanned crate.
Flagged: .unwrap(), .expect(, panic!, unreachable!, todo!,
unimplemented!, and literal/range slice indexing like buf[..4] or s[0]
(a heuristic: index expressions starting with a digit or `..`).

Fix: return the typed error (WireError or the handler's action list); if
the operation is infallible by construction, annotate with
`// detlint::allow(TOT-PANIC, <the invariant that makes it infallible>)`.",
    },
    Rule {
        id: "WIRE-TAGS",
        summary: "codec/envelope tag drift against crates/wire/TAGS.lock",
        explain: "\
Wire tags are frozen: append new variants, never renumber. detlint
extracts every integer tag arm from the Decode impls in
crates/wire/src/{codec,proto}.rs and crates/core/src/wire_impls.rs
(plus the literal tags on the Encode side as a cross-check) and diffs
them against the committed crates/wire/TAGS.lock manifest. A tag that is
added, removed, renumbered, renamed, or duplicated without touching the
lock file fails the build — silent renumbering is how mixed-version
rings corrupt each other.

Fix: if the change is an intentional, append-only addition, regenerate
the manifest with `cargo run -p detlint -- --write-tags` and commit it
alongside the codec change (the frozen_encodings tests must still pass).",
    },
    Rule {
        id: "MET-STRKEY",
        summary: "string-keyed counter call outside the metrics compat layer",
        explain: "\
PR 2/3 migrated hot-path metrics to pre-registered integer CounterId
handles; the string-keyed incr/incr_by API survives only as a compat
layer inside crates/simnet/src/metrics.rs. A string-keyed call anywhere
else re-introduces a per-event name lookup (and an allocation on first
use) on paths we measured and fixed.

Fix: register_counter(\"name\") once at construction, store the
CounterId, and call incr_id/incr_id_by on the hot path.",
    },
    Rule {
        id: "ALLOW-SYNTAX",
        summary: "malformed detlint::allow annotation",
        explain: "\
Every suppression must carry a written reason:
`// detlint::allow(RULE, reason)` on the finding's line or the line
above, or `// detlint::allow-file(RULE, reason)` anywhere in the file.
An allow with no reason, an unknown rule ID, or one that suppresses
nothing (reported under --deny) is itself an error — stale suppressions
are how enforced invariants rot.",
    },
];

/// Look up a rule by ID.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One raw (pre-suppression) finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the scanned root, with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule ID.
    pub rule: &'static str,
    /// Human message.
    pub msg: String,
}

impl Finding {
    /// Render as `file:line: [RULE] message`.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Crate name for a `crates/<name>/…` relative path, if any.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/")?.split('/').next()
}

/// Does `hay` contain `needle` as a whole word (ident-boundary on both
/// sides)? Returns the byte offset of the first such match.
fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(off) = hay[from..].find(needle) {
        let at = from + off;
        let before_ok = at == 0 || !bytes[at - 1].is_ascii_alphanumeric() && bytes[at - 1] != b'_';
        let end = at + needle.len();
        let after_ok =
            end >= bytes.len() || !bytes[end].is_ascii_alphanumeric() && bytes[end] != b'_';
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

/// Literal/range slice-index heuristic: `ident[<digit-or-..>` — the
/// shapes that panic on short input (buf[..4], s[0], b[4..]).
fn has_literal_index(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')') {
            continue; // not an index expression (array literal, vec![, …)
        }
        let rest = line[i + 1..].trim_start();
        if rest.starts_with("..") || rest.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return true;
        }
    }
    false
}

/// Scan one file's source. `rel` is the root-relative path. Returned
/// findings are pre-suppression (allow/baseline filtering happens in the
/// caller, which also owns the workspace-level WIRE-TAGS pass).
pub fn scan_file(rel: &str, src: &str) -> Vec<Finding> {
    let masked = lexer::mask_cfg_test(&lexer::mask_source(src));
    let mut out = Vec::new();

    let in_det_crate = crate_of(rel).is_some_and(|c| DET_CRATES.contains(&c));
    let in_bench = crate_of(rel) == Some("bench");
    let is_metrics_compat = rel == "crates/simnet/src/metrics.rs";
    let wire_decode_file = matches!(
        rel,
        "crates/wire/src/varint.rs"
            | "crates/wire/src/codec.rs"
            | "crates/wire/src/frame.rs"
            | "crates/wire/src/proto.rs"
    );
    let handler_ranges = lexer::fn_body_ranges(&masked, "on_");

    let mut offset = 0usize;
    for (idx, line) in masked.lines().enumerate() {
        let lineno = idx + 1;
        let line_start = offset;
        offset += line.len() + 1;
        let trimmed = line.trim_start();

        // DET-HASH ------------------------------------------------------
        if in_det_crate && !trimmed.starts_with("use ") {
            for ty in ["HashMap", "HashSet"] {
                if find_word(line, ty).is_some() {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "DET-HASH",
                        msg: format!(
                            "{ty} in sim-deterministic crate `{}`: iteration order is \
                             per-process random; use BTreeMap/BTreeSet or justify \
                             non-iteration with an allow",
                            crate_of(rel).unwrap_or("?")
                        ),
                    });
                }
            }
        }

        // DET-CLOCK -----------------------------------------------------
        if !in_bench {
            for src_pat in ["Instant::now", "SystemTime::now"] {
                if line.contains(src_pat) {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "DET-CLOCK",
                        msg: format!(
                            "{src_pat} outside crates/bench: wall time must not reach \
                             deterministic logic"
                        ),
                    });
                }
            }
        }

        // DET-RNG -------------------------------------------------------
        for rng_pat in [
            "thread_rng",
            "from_entropy",
            "from_os_rng",
            "OsRng",
            "getrandom",
        ] {
            if find_word(line, rng_pat).is_some() {
                out.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "DET-RNG",
                    msg: format!("{rng_pat}: all randomness must derive from the run's seeds"),
                });
            }
        }

        // TOT-PANIC -----------------------------------------------------
        let in_handler = handler_ranges
            .iter()
            .any(|&(s, e)| line_start >= s && line_start < e);
        if wire_decode_file || in_handler {
            let where_ = if wire_decode_file {
                "wire decode/frame path"
            } else {
                "message handler (fn on_*)"
            };
            for pat in [
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ] {
                if line.contains(pat) {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "TOT-PANIC",
                        msg: format!("{pat} in {where_}: must return an error, never panic"),
                    });
                }
            }
            if has_literal_index(line) {
                out.push(Finding {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "TOT-PANIC",
                    msg: format!(
                        "literal/range slice index in {where_}: panics on short input; \
                         use get()/first_chunk()/take()"
                    ),
                });
            }
        }

        // MET-STRKEY ----------------------------------------------------
        if !is_metrics_compat {
            for pat in [".incr(\"", ".incr_by(\""] {
                if line.contains(pat) {
                    out.push(Finding {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "MET-STRKEY",
                        msg: "string-keyed counter call outside the compat layer: \
                              pre-register a CounterId and use incr_id/incr_id_by"
                            .to_string(),
                    });
                }
            }
        }
    }
    out
}
