//! detlint — the workspace determinism & protocol-safety linter.
//!
//! A self-contained, dependency-free static-analysis pass over the
//! workspace sources (`crates/*/src` and `examples/`). Four rule
//! families protect the invariants the whole reproduction rests on:
//!
//! | family      | rules                          | invariant |
//! |-------------|--------------------------------|-----------|
//! | determinism | `DET-HASH` `DET-CLOCK` `DET-RNG` | same seed ⇒ byte-identical run |
//! | totality    | `TOT-PANIC`                    | hostile bytes / odd messages ⇒ `Err`, never a crash |
//! | wire freeze | `WIRE-TAGS`                    | codec tags append-only vs `crates/wire/TAGS.lock` |
//! | metrics     | `MET-STRKEY`                   | hot paths use pre-registered counter handles |
//!
//! The scanner is comment/string/raw-string aware and skips
//! `#[cfg(test)]` items, so it never false-positives on docs or tests
//! (see [`lexer`]). Findings are suppressed by inline
//! `// detlint::allow(RULE, reason)` annotations or the committed
//! `detlint.baseline` (see [`suppress`]); everything else fails the run.
//!
//! Run `cargo run -p detlint -- --explain RULE` for the long-form text of
//! any rule.

pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod tags;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use rules::{rule, Finding, Rule, RULES};

/// Scan configuration.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Also surface unused allows / baseline entries as findings
    /// (`--deny`, the CI mode).
    pub deny: bool,
}

/// Result of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by allows or the baseline.
    pub suppressed: usize,
    /// Per-rule counts of surviving findings.
    pub per_rule: BTreeMap<&'static str, usize>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Collect the `.rs` files under `crates/*/src` and `examples/`,
/// deterministically sorted.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            // The linter does not lint itself: its sources quote rule ids
            // and annotation syntax in docs and string literals.
            if d.file_name().is_some_and(|n| n == "detlint") {
                continue;
            }
            collect_rs(&d.join("src"), &mut out);
        }
    }
    collect_rs(&root.join("examples"), &mut out);
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Root-relative path with `/` separators.
fn rel_of(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scan the workspace rooted at `root`.
pub fn scan_root(root: &Path, opts: &Options) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut findings = Vec::new();

    let baseline_text = std::fs::read_to_string(root.join("detlint.baseline")).unwrap_or_default();
    let mut baseline = suppress::Baseline::parse(&baseline_text);

    for path in workspace_files(root) {
        let rel = rel_of(root, &path);
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue; // non-UTF-8: nothing for a text linter to do
        };
        report.files_scanned += 1;
        let mut raw = rules::scan_file(&rel, &src);
        let mut allows = suppress::parse_allows(&rel, &src, &mut raw);
        let before = raw.len();
        let surviving = suppress::filter_file(raw, &src, &mut allows, &mut baseline);
        report.suppressed += before - surviving.len();
        findings.extend(surviving);
        if opts.deny {
            for a in &allows {
                if a.used == 0 {
                    findings.push(Finding {
                        file: rel.clone(),
                        line: a.line,
                        rule: "ALLOW-SYNTAX",
                        msg: format!(
                            "unused allow({}) — it suppresses nothing; remove it",
                            a.rule
                        ),
                    });
                }
            }
        }
    }

    // Workspace-level wire-tag freeze.
    let (decode, encode) = tags::extract_root(root, &mut findings);
    let lock_text = std::fs::read_to_string(root.join(tags::TAGS_LOCK)).ok();
    tags::check(&decode, &encode, lock_text.as_deref(), &mut findings);

    if opts.deny {
        for entry in baseline.unused() {
            findings.push(Finding {
                file: "detlint.baseline".to_string(),
                line: 1,
                rule: "ALLOW-SYNTAX",
                msg: format!("stale baseline entry matches nothing: `{entry}`"),
            });
        }
    }

    findings.sort();
    findings.dedup();
    for f in &findings {
        *report.per_rule.entry(f.rule).or_insert(0) += 1;
    }
    report.findings = findings;
    Ok(report)
}

/// Regenerate `crates/wire/TAGS.lock` from the code. Returns the manifest
/// text written.
pub fn write_tags(root: &Path) -> std::io::Result<String> {
    let mut scratch = Vec::new();
    let (decode, _) = tags::extract_root(root, &mut scratch);
    let text = tags::render_lock(&decode);
    std::fs::write(root.join(tags::TAGS_LOCK), &text)?;
    Ok(text)
}
