//! WIRE-TAGS: extract every frozen codec/envelope tag from the Encode /
//! Decode impls and diff them against the committed manifest
//! (`crates/wire/TAGS.lock`).
//!
//! Extraction is syntactic but runs on masked, test-stripped source, so
//! doc examples and the frozen-encodings test vectors never leak in:
//!
//! * inside `impl Decode for T` blocks, every match arm of the form
//!   `<int> => <variant-expr>` is a (tag, variant) pair — the decode side
//!   names both the number and the variant, so it is the source of truth;
//! * inside `impl Encode for T` blocks, every `out.push(<int>)` and every
//!   `<pat> => <int>` arm contributes to a tag multiset cross-checked
//!   against the decode side (only when the encode side has literal tags
//!   at all — primitive impls encode computed bytes).

use std::collections::BTreeMap;

use crate::lexer;
use crate::rules::Finding;

/// Files whose tag constants are frozen by the manifest, relative to the
/// workspace root.
pub const TAG_FILES: &[&str] = &[
    "crates/wire/src/codec.rs",
    "crates/wire/src/proto.rs",
    "crates/core/src/wire_impls.rs",
];

/// Manifest location relative to the workspace root.
pub const TAGS_LOCK: &str = "crates/wire/TAGS.lock";

/// One extracted tag: `(file, type) -> tag -> (variant, line)`.
pub type TagTable = BTreeMap<(String, String), BTreeMap<u64, (String, usize)>>;

/// Strip an arm expression down to its variant name: `Ok(PutMode::Overwrite)`
/// → `Overwrite`, `ChordMsg::FindSuccessor {` → `FindSuccessor`,
/// `Ok(Some(T::decode(r)?))` → `Some`, `Ok(false)` → `false`.
fn variant_name(expr: &str) -> String {
    let mut s = expr.trim();
    if let Some(rest) = s.strip_prefix("Ok(") {
        s = rest;
    }
    let end = s
        .find(|c| c == '(' || c == '{' || c == ',' || c == ')')
        .unwrap_or(s.len());
    let head = s[..end].trim();
    head.rsplit("::").next().unwrap_or(head).trim().to_string()
}

/// A line like `impl Decode for ChordMsg {` or
/// `impl<T: Encode> Encode for Option<T> {` → (kind, type name).
fn impl_header(line: &str) -> Option<(&'static str, String)> {
    let t = line.trim_start();
    if !t.starts_with("impl") {
        return None;
    }
    for kind in ["Encode", "Decode"] {
        if let Some(pos) = t.find(&format!(" {kind} for ")) {
            let rest = &t[pos + kind.len() + 6..];
            let ty = rest.trim_end().trim_end_matches('{').trim();
            if !ty.is_empty() {
                let kind_static = if kind == "Encode" { "Encode" } else { "Decode" };
                return Some((kind_static, ty.to_string()));
            }
        }
    }
    None
}

/// Extract decode tags and encode tag multisets from one masked source.
pub fn extract(
    rel: &str,
    masked: &str,
    decode: &mut TagTable,
    encode: &mut BTreeMap<(String, String), Vec<u64>>,
    findings: &mut Vec<Finding>,
) {
    let mut cur: Option<(&'static str, String)> = None;
    let mut depth_at_impl = 0usize;
    let mut depth = 0usize;
    for (idx, line) in masked.lines().enumerate() {
        let lineno = idx + 1;
        if cur.is_none() {
            if let Some(h) = impl_header(line) {
                cur = Some(h);
                depth_at_impl = depth;
            }
        }
        let opens = line.bytes().filter(|&b| b == b'{').count();
        let closes = line.bytes().filter(|&b| b == b'}').count();
        if let Some((kind, ty)) = cur.clone() {
            let key = (rel.to_string(), ty.clone());
            match kind {
                "Decode" => {
                    // `<int> => <expr>` arms.
                    let t = line.trim_start();
                    if let Some((pat, rest)) = t.split_once("=>") {
                        if let Ok(tag) = pat.trim().parse::<u64>() {
                            let variant = variant_name(rest);
                            let slot = decode.entry(key).or_default();
                            if let Some((prev, prev_line)) = slot.get(&tag) {
                                findings.push(Finding {
                                    file: rel.to_string(),
                                    line: lineno,
                                    rule: "WIRE-TAGS",
                                    msg: format!(
                                        "duplicate tag {tag} for {ty}: `{variant}` collides \
                                         with `{prev}` (line {prev_line})"
                                    ),
                                });
                            } else {
                                slot.insert(tag, (variant, lineno));
                            }
                        }
                    }
                }
                "Encode" => {
                    let slot = encode.entry(key).or_default();
                    // `out.push(<int>)` occurrences.
                    let mut rest = line;
                    while let Some(off) = rest.find("out.push(") {
                        let arg = &rest[off + 9..];
                        let end = arg.find(')').unwrap_or(arg.len());
                        if let Ok(tag) = arg[..end].trim().parse::<u64>() {
                            slot.push(tag);
                        }
                        rest = &arg[end.min(arg.len())..];
                    }
                    // `<pat> => <int>,` arms (C-like enum encodes).
                    let t = line.trim();
                    if let Some((_, rhs)) = t.split_once("=>") {
                        if let Ok(tag) = rhs.trim().trim_end_matches(',').parse::<u64>() {
                            slot.push(tag);
                        }
                    }
                }
                _ => {}
            }
        }
        depth += opens;
        depth = depth.saturating_sub(closes);
        if cur.is_some() && closes > 0 && depth <= depth_at_impl {
            cur = None;
        }
    }
}

/// Render the manifest text for a decode table.
pub fn render_lock(decode: &TagTable) -> String {
    let mut out = String::new();
    out.push_str(
        "# Frozen wire-tag manifest — machine-checked by detlint (rule WIRE-TAGS).\n\
         # One line per tag: <file> | <type> | <tag> = <variant>\n\
         # Tags are a wire contract: append new variants, NEVER renumber.\n\
         # Regenerate after an intentional append-only change with:\n\
         #   cargo run -p detlint -- --write-tags\n",
    );
    for ((file, ty), tags) in decode {
        for (tag, (variant, _)) in tags {
            out.push_str(&format!("{file} | {ty} | {tag} = {variant}\n"));
        }
    }
    out
}

/// Parse a manifest back into `(file, type) -> tag -> variant`.
fn parse_lock(text: &str) -> Result<BTreeMap<(String, String), BTreeMap<u64, String>>, String> {
    let mut out: BTreeMap<(String, String), BTreeMap<u64, String>> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = t.splitn(3, '|').map(str::trim).collect();
        let (file, ty, rest) = match parts.as_slice() {
            [f, ty, rest] => (*f, *ty, *rest),
            _ => {
                return Err(format!(
                    "line {}: expected `file | type | tag = variant`",
                    idx + 1
                ))
            }
        };
        let (tag, variant) = rest
            .split_once('=')
            .ok_or_else(|| format!("line {}: missing `tag = variant`", idx + 1))?;
        let tag: u64 = tag
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad tag `{}`", idx + 1, tag.trim()))?;
        out.entry((file.to_string(), ty.to_string()))
            .or_default()
            .insert(tag, variant.trim().to_string());
    }
    Ok(out)
}

/// Diff extracted tags against the manifest and cross-check encode vs
/// decode. Produces WIRE-TAGS findings.
pub fn check(
    decode: &TagTable,
    encode: &BTreeMap<(String, String), Vec<u64>>,
    lock_text: Option<&str>,
    findings: &mut Vec<Finding>,
) {
    // Encode/decode cross-check (per type, only when encode has literals).
    for ((file, ty), enc_tags) in encode {
        if enc_tags.is_empty() {
            continue;
        }
        let mut enc = enc_tags.clone();
        enc.sort_unstable();
        enc.dedup();
        let dec: Vec<u64> = decode
            .get(&(file.clone(), ty.clone()))
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        if enc != dec {
            findings.push(Finding {
                file: file.clone(),
                line: 1,
                rule: "WIRE-TAGS",
                msg: format!(
                    "{ty}: encode-side tags {enc:?} disagree with decode-side {dec:?} — \
                     one direction was changed without the other"
                ),
            });
        }
    }

    let Some(lock_text) = lock_text else {
        if decode.is_empty() {
            return; // nothing frozen in this tree, no manifest required
        }
        findings.push(Finding {
            file: TAGS_LOCK.to_string(),
            line: 1,
            rule: "WIRE-TAGS",
            msg: "manifest missing: run `cargo run -p detlint -- --write-tags` and commit it"
                .to_string(),
        });
        return;
    };
    let locked = match parse_lock(lock_text) {
        Ok(l) => l,
        Err(e) => {
            findings.push(Finding {
                file: TAGS_LOCK.to_string(),
                line: 1,
                rule: "WIRE-TAGS",
                msg: format!("manifest unparsable: {e}"),
            });
            return;
        }
    };

    for ((file, ty), tags) in decode {
        let locked_ty = locked.get(&(file.clone(), ty.clone()));
        for (tag, (variant, line)) in tags {
            match locked_ty.and_then(|m| m.get(tag)) {
                None => findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "WIRE-TAGS",
                    msg: format!(
                        "{ty} tag {tag} = {variant} not in TAGS.lock — if this is an \
                         intentional append-only addition, regenerate with --write-tags"
                    ),
                }),
                Some(locked_variant) if locked_variant != variant => findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "WIRE-TAGS",
                    msg: format!(
                        "{ty} tag {tag} renumbered/renamed: code says `{variant}`, \
                         TAGS.lock says `{locked_variant}` — frozen byte pins must not move"
                    ),
                }),
                Some(_) => {}
            }
        }
    }
    for ((file, ty), tags) in &locked {
        for (tag, variant) in tags {
            let present = decode
                .get(&(file.clone(), ty.clone()))
                .is_some_and(|m| m.contains_key(tag));
            if !present {
                findings.push(Finding {
                    file: TAGS_LOCK.to_string(),
                    line: 1,
                    rule: "WIRE-TAGS",
                    msg: format!(
                        "{file}: {ty} tag {tag} = {variant} is locked but no longer in the \
                         code — removing a frozen variant breaks old peers"
                    ),
                });
            }
        }
    }
}

/// Extract decode/encode tables from the given root, reading each tag file
/// if present. Returns `(decode, encode)`.
pub fn extract_root(
    root: &std::path::Path,
    findings: &mut Vec<Finding>,
) -> (TagTable, BTreeMap<(String, String), Vec<u64>>) {
    let mut decode = TagTable::new();
    let mut encode = BTreeMap::new();
    for rel in TAG_FILES {
        let path = root.join(rel);
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let masked = lexer::mask_cfg_test(&lexer::mask_source(&src));
        extract(rel, &masked, &mut decode, &mut encode, findings);
    }
    (decode, encode)
}
