//! Editor models: synthetic users that read their replica, make a small
//! line edit, and save — the workload of a P2P wiki.

use ot::Document;
use simnet::Rng64;

/// One synthetic line edit applied to a text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditKind {
    /// Insert a fresh line at a random position.
    InsertLine,
    /// Delete a random line (no-op on an empty document).
    DeleteLine,
    /// Replace a random line (delete + insert).
    ChangeLine,
}

/// Weighted edit-kind chooser.
#[derive(Clone, Debug)]
pub struct EditMix {
    /// Relative weight of inserts.
    pub insert: u32,
    /// Relative weight of deletes.
    pub delete: u32,
    /// Relative weight of line changes.
    pub change: u32,
}

impl Default for EditMix {
    fn default() -> Self {
        // Wiki-like: mostly additions and rewordings.
        EditMix {
            insert: 5,
            delete: 1,
            change: 4,
        }
    }
}

impl EditMix {
    /// Sample an edit kind.
    pub fn sample(&self, rng: &mut Rng64) -> EditKind {
        let total = (self.insert + self.delete + self.change) as u64;
        let r = rng.gen_below(total) as u32;
        if r < self.insert {
            EditKind::InsertLine
        } else if r < self.insert + self.delete {
            EditKind::DeleteLine
        } else {
            EditKind::ChangeLine
        }
    }
}

/// Apply one synthetic edit to `text`, returning the new full text. The
/// `author` tag makes every inserted line unique and attributable, so
/// convergence checks can also verify no edit was lost.
pub fn mutate_text(
    text: &str,
    kind: EditKind,
    author: u64,
    edit_counter: u64,
    rng: &mut Rng64,
) -> String {
    let doc = Document::from_text(text);
    let mut lines: Vec<String> = doc.lines().to_vec();
    match kind {
        EditKind::InsertLine => {
            let pos = rng.index(lines.len() + 1);
            lines.insert(pos, format!("u{author}-e{edit_counter}"));
        }
        EditKind::DeleteLine => {
            if !lines.is_empty() {
                let pos = rng.index(lines.len());
                lines.remove(pos);
            } else {
                lines.push(format!("u{author}-e{edit_counter}"));
            }
        }
        EditKind::ChangeLine => {
            if lines.is_empty() {
                lines.push(format!("u{author}-e{edit_counter}"));
            } else {
                let pos = rng.index(lines.len());
                lines[pos] = format!("u{author}-e{edit_counter}");
            }
        }
    }
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sampling_covers_all_kinds() {
        let mix = EditMix::default();
        let mut rng = Rng64::new(1);
        let mut seen = [false; 3];
        for _ in 0..500 {
            match mix.sample(&mut rng) {
                EditKind::InsertLine => seen[0] = true,
                EditKind::DeleteLine => seen[1] = true,
                EditKind::ChangeLine => seen[2] = true,
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mutate_insert_grows() {
        let mut rng = Rng64::new(2);
        let out = mutate_text("a\nb", EditKind::InsertLine, 7, 3, &mut rng);
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("u7-e3"));
    }

    #[test]
    fn mutate_delete_shrinks() {
        let mut rng = Rng64::new(3);
        let out = mutate_text("a\nb\nc", EditKind::DeleteLine, 1, 1, &mut rng);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    fn mutate_delete_on_empty_inserts() {
        let mut rng = Rng64::new(4);
        let out = mutate_text("", EditKind::DeleteLine, 1, 1, &mut rng);
        assert_eq!(out, "u1-e1");
    }

    #[test]
    fn mutate_change_keeps_length() {
        let mut rng = Rng64::new(5);
        let out = mutate_text("a\nb\nc", EditKind::ChangeLine, 2, 9, &mut rng);
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("u2-e9"));
    }
}
