//! The scenario layer: named fault scenarios as *data*, executed by one
//! deterministic driver that always ends in the invariant oracles.
//!
//! A [`Scenario`] describes a population (peers, editors, documents), a
//! base fault envelope ([`LinkFaults`] for every link), and a timeline of
//! [`FaultAction`]s aimed at *roles* ([`Who`]: the current master of a
//! document, its successor, the editors…) rather than concrete node ids —
//! roles are resolved live, when the action fires, so "crash the master"
//! means whoever holds the key at that moment. [`run_scenario`] builds a
//! durable network (every peer journals to a `MemStore`), injects the
//! faults, heals everything after the drive window, waits for quiescence
//! and returns a [`ScenarioOutcome`] with the three correctness oracles
//! (continuity, total order, convergence) plus the fault/perf counters.
//!
//! [`named_scenarios`] is the committed matrix: the adversarial envelope
//! CI runs on every push (`exp_fault`, the `fault-matrix` job, and the
//! per-scenario integration tests in `tests/tests/fault_matrix.rs`).
//!
//! ## What the engine has caught
//!
//! Building this matrix surfaced (and led to fixes for) seven real bugs:
//! spurious replica fallback and master log-probe under-estimation when a
//! DHT get failed *operationally* (unreachable ≠ absent — the probe
//! variant let a master re-grant a used timestamp and fork the log),
//! single-message-loss neighbour eviction in the chord failure detector
//! (a split ring view let two nodes accept writes for one key range),
//! stale `last_ts` reads from a restored-but-unverified master entry
//! (idle replicas never pulled post-takeover grants), orphaned
//! primary records stranded at nodes whose transient ring view collapsed
//! (now re-homed by the replicate tick's orphan sweep), an orphan
//! re-home resolving back to its own holder and demoting the ring's only
//! primary copy (the once-per-~50-churn-runs "idle replicas one patch
//! stale" residual — readers now also send their own `known_ts` with
//! `LastTs` so a stale-but-verified master entry re-probes instead of
//! answering from memory), and a master re-granting a slot whose
//! earlier publish died *partially written* — closed by grant fencing:
//! every re-grant of a suspect slot happens under a strictly higher
//! master epoch behind a quorum-acknowledged fence (see the
//! `equivocation_free` / `epoch_monotonic` oracles and
//! `tests/tests/grant_fence_sweep.rs`).

use std::time::Instant;

use p2p_ltr::harness::LtrNet;
use p2p_ltr::{check_all, LtrConfig, Payload};
use simnet::{Duration, FaultPlan, LinkFaults, NodeState, Time};

use chord::NodeRef;

use crate::churn::{drive_churn, ChurnSpec};
use crate::driver::{drive_editors, EditorSpec};
use crate::editors::EditMix;

/// A role a fault action targets, resolved against the live network at
/// the moment the action fires.
#[derive(Clone, Copy, Debug)]
pub enum Who {
    /// The `i`-th initially created peer.
    Peer(usize),
    /// The current Master-key peer of document `i` (sorted-ring oracle).
    Master(usize),
    /// The ring successor of document `i`'s master (the backup holder).
    MasterSucc(usize),
    /// Every editor peer.
    Editors,
    /// Every initial non-editor peer.
    Others,
}

/// One fault to inject.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Cut every link in `a × b` at the fault layer; `oneway` cuts only
    /// the `a → b` direction (asymmetric partition). Heals after
    /// `heal_after_secs` (always healed at the end of the drive window).
    Cut {
        /// One side of the cut.
        a: Who,
        /// The other side.
        b: Who,
        /// Cut only `a → b`.
        oneway: bool,
        /// Self-heal delay, in seconds after the cut.
        heal_after_secs: Option<u64>,
    },
    /// Crash-stop the target; when `recover_after_secs` is set the peer
    /// later restarts *from its own journal* (`LtrNet::restart_from_store`
    /// — the crash-with-disk path), otherwise survivors must take over.
    Crash {
        /// The victim role.
        who: Who,
        /// Restart-from-store delay, in seconds after the crash.
        recover_after_secs: Option<u64>,
    },
    /// Graceful leave (timestamp + key handoff, ring splice).
    Leave {
        /// The leaver role.
        who: Who,
    },
    /// Replace the fault class of the targets (`None` = the default
    /// class of every link).
    SetLinkFaults {
        /// Target nodes, or `None` for the default class.
        who: Option<Who>,
        /// The new class.
        faults: LinkFaults,
    },
}

/// A timed fault: fires `at_secs` after the editors start.
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// Offset from the start of the drive window, in seconds.
    pub at_secs: u64,
    /// What happens.
    pub action: FaultAction,
}

/// Randomized background churn running alongside the fault timeline
/// (editor peers are protected).
#[derive(Clone, Debug)]
pub struct ChurnLoad {
    /// Mean time between churn events, ms (exponential).
    pub mean_interval_ms: u64,
    /// Relative crash weight.
    pub crash_weight: u32,
    /// Relative graceful-leave weight.
    pub leave_weight: u32,
    /// Relative join weight.
    pub join_weight: u32,
    /// Never drop below this many live peers.
    pub min_alive: usize,
}

/// A named fault scenario, pure data.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable scenario name (CI step summaries, JSON, test names).
    pub name: &'static str,
    /// One-line description for tables and docs.
    pub summary: &'static str,
    /// Initial ring size.
    pub peers: usize,
    /// Log replication degree `n = |Hr|`.
    pub replication: usize,
    /// Documents opened (editors pick by Zipf).
    pub docs: usize,
    /// Editing peers (peers `0..editors`).
    pub editors: usize,
    /// Mean editor think time, ms.
    pub mean_think_ms: u64,
    /// Drive window: editors and faults are active this long.
    pub drive_secs: u64,
    /// Settle time after every fault is healed, before quiescence checks.
    pub heal_secs: u64,
    /// Base fault class applied to every link for the whole drive window.
    pub base_faults: LinkFaults,
    /// The fault timeline.
    pub events: Vec<FaultEvent>,
    /// Optional background churn.
    pub churn: Option<ChurnLoad>,
}

/// What one scenario run produced. `ok()` is the CI gate.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Ring size.
    pub peers: usize,
    /// Simulated seconds covered.
    pub sim_secs: f64,
    /// Wall-clock cost of the run, ms.
    pub wall_ms: f64,
    /// Edits issued by the workload.
    pub edits: u64,
    /// Validated publishes (`ltr.publish_ok`).
    pub grants: u64,
    /// Simnet messages sent.
    pub msgs: u64,
    /// Simulator events executed.
    pub events: u64,
    /// Crash-stops (scripted + churn).
    pub crashes: u64,
    /// Restarts from a journal.
    pub restarts: u64,
    /// Messages dropped by the fault layer.
    pub faults_dropped: u64,
    /// Messages duplicated by the fault layer.
    pub faults_duplicated: u64,
    /// Messages delayed past later sends (reorder spikes).
    pub faults_reordered: u64,
    /// Messages vetoed by a cut link.
    pub faults_cut: u64,
    /// Continuity oracle (no duplicate or missing timestamps).
    pub continuity: bool,
    /// Total-order oracle (+1 integration steps everywhere).
    pub total_order: bool,
    /// Convergence oracle (identical replicas at quiescence).
    pub converged: bool,
    /// Equivocation oracle (no `(doc, ts)` slot holds two payloads
    /// anywhere in the network — the dual-master detector).
    pub equivocation_free: bool,
    /// Epoch-monotonicity oracle (per replica, integrated master epochs
    /// never regress).
    pub epoch_monotonic: bool,
    /// Human-readable invariant detail line.
    pub detail: String,
}

impl ScenarioOutcome {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.continuity
            && self.total_order
            && self.converged
            && self.equivocation_free
            && self.epoch_monotonic
    }
}

/// Resolve a role to concrete peers against the live network.
fn resolve(net: &LtrNet, sc: &Scenario, docs: &[String], who: Who) -> Vec<NodeRef> {
    match who {
        Who::Peer(i) => vec![net.peers[i]],
        Who::Master(d) => vec![net.master_of(&docs[d])],
        Who::MasterSucc(d) => vec![net.master_and_succ(&docs[d]).1],
        Who::Editors => net.peers[..sc.editors].to_vec(),
        Who::Others => net.peers[sc.editors..].to_vec(),
    }
}

/// A recovery owed to a crashed peer at an absolute simulated time.
struct PendingRecovery {
    at: Time,
    peer: NodeRef,
}

/// Execute one scenario deterministically. Same `sc` + same `seed` ⇒
/// bit-identical run (the byte-identity property test pins this).
/// Runs the default replication mode (Merkle-diff anti-entropy).
pub fn run_scenario(sc: &Scenario, seed: u64) -> ScenarioOutcome {
    run_scenario_with_mode(sc, seed, chord::ReplicationMode::MerkleDiff)
}

/// [`run_scenario`] with an explicit chord replication mode, so the fault
/// matrix and benches can exercise both the Merkle-diff protocol and the
/// legacy full push under identical fault schedules.
pub fn run_scenario_with_mode(
    sc: &Scenario,
    seed: u64,
    mode: chord::ReplicationMode,
) -> ScenarioOutcome {
    run_scenario_opts(sc, seed, mode, true)
}

/// [`run_scenario_with_mode`] with grant fencing switchable, so the
/// benches can pin the pre-epoch legacy protocol (`fencing = false`)
/// for byte-identity against historical baselines.
pub fn run_scenario_opts(
    sc: &Scenario,
    seed: u64,
    mode: chord::ReplicationMode,
    fencing: bool,
) -> ScenarioOutcome {
    run_scenario_net(sc, seed, mode, fencing).0
}

/// [`run_scenario_opts`] returning the quiesced network alongside the
/// outcome, so forensic tests can inspect events and storage after a run.
pub fn run_scenario_net(
    sc: &Scenario,
    seed: u64,
    mode: chord::ReplicationMode,
    fencing: bool,
) -> (ScenarioOutcome, LtrNet) {
    // detlint::allow(DET-CLOCK, wall-clock duration is reported alongside the outcome; it never feeds the simulation)
    let wall = Instant::now();
    let mut cfg = LtrConfig::default();
    cfg.log.replication = sc.replication;
    cfg.chord.replication_mode = mode;
    cfg.kts.fencing = fencing;

    // Every peer journals: crashes scripted with `recover_after_secs`
    // restart from the journal (crash-with-disk), the rest rely on
    // takeover (crash-without-disk).
    let mut net = LtrNet::build_with_stores(
        seed,
        simnet::NetConfig::lan(),
        sc.peers,
        cfg.clone(),
        Duration::from_millis(150),
        |_| Box::new(store::MemStore::new()),
    );
    net.install_faults(FaultPlan::new(seed ^ 0xFA17_FA17).with_default(LinkFaults::none()));
    net.settle(20 + sc.peers as u64 / 4);
    let t0 = net.now();

    let peers = net.peers.clone();
    let docs: Vec<String> = (0..sc.docs).map(|d| format!("fault/doc-{d}")).collect();
    let openers = &peers[..sc.editors.max(2).min(peers.len())];
    for d in &docs {
        net.open_doc(openers, d, "seed");
    }
    net.settle(2);

    // The fault window opens only now: stabilization and doc opening run
    // clean so every scenario starts from the same healthy baseline.
    net.sim.set_link_faults(None, sc.base_faults.clone());

    let start = net.now();
    let horizon = start + Duration::from_secs(sc.drive_secs);
    drive_editors(
        &mut net.sim,
        &peers[..sc.editors],
        &EditorSpec {
            docs: docs.clone(),
            zipf_skew: 0.8,
            mean_think: Duration::from_millis(sc.mean_think_ms),
            mix: EditMix::default(),
            horizon,
        },
        seed ^ 0xED17,
    );
    if let Some(churn) = &sc.churn {
        drive_churn(
            &mut net.sim,
            ChurnSpec {
                mean_interval: Duration::from_millis(churn.mean_interval_ms),
                crash_weight: churn.crash_weight,
                leave_weight: churn.leave_weight,
                join_weight: churn.join_weight,
                protected: peers[..sc.editors].to_vec(),
                min_alive: churn.min_alive,
                horizon,
            },
            cfg,
            seed ^ 0xC4BA,
        );
    }

    // Walk the fault timeline: run to each action's time, resolve its
    // role against the *live* network, apply. Recoveries owed by
    // `Crash { recover_after_secs }` interleave in time order.
    let mut events: Vec<&FaultEvent> = sc.events.iter().collect();
    events.sort_by_key(|e| e.at_secs);
    let mut recoveries: Vec<PendingRecovery> = Vec::new();
    let mut overridden: Vec<NodeRef> = Vec::new();
    for ev in events {
        let at = start + Duration::from_secs(ev.at_secs);
        run_recovering_until(&mut net, &mut recoveries, at);
        match &ev.action {
            FaultAction::Cut {
                a,
                b,
                oneway,
                heal_after_secs,
            } => {
                let left = resolve(&net, sc, &docs, *a);
                let right = resolve(&net, sc, &docs, *b);
                for x in &left {
                    for y in &right {
                        if x.addr != y.addr {
                            net.sim.fault_cut(x.addr, y.addr, *oneway);
                        }
                    }
                }
                if let Some(h) = heal_after_secs {
                    let heal_at = net.now() + Duration::from_secs(*h);
                    net.sim.schedule_at(
                        heal_at,
                        Box::new(move |s: &mut simnet::Sim<Payload>| {
                            for x in &left {
                                for y in &right {
                                    if x.addr != y.addr {
                                        s.fault_heal(x.addr, y.addr);
                                    }
                                }
                            }
                        }),
                    );
                }
            }
            FaultAction::Crash {
                who,
                recover_after_secs,
            } => {
                for p in resolve(&net, sc, &docs, *who) {
                    if net.sim.node_state(p.addr) == NodeState::Up {
                        net.crash(p);
                        if let Some(r) = recover_after_secs {
                            recoveries.push(PendingRecovery {
                                at: net.now() + Duration::from_secs(*r),
                                peer: p,
                            });
                        }
                    }
                }
            }
            FaultAction::Leave { who } => {
                for p in resolve(&net, sc, &docs, *who) {
                    if net.sim.node_state(p.addr) == NodeState::Up {
                        net.leave(p);
                    }
                }
            }
            FaultAction::SetLinkFaults { who, faults } => match who {
                Some(w) => {
                    for p in resolve(&net, sc, &docs, *w) {
                        net.sim.set_link_faults(Some(p.addr), faults.clone());
                        overridden.push(p);
                    }
                }
                None => net.sim.set_link_faults(None, faults.clone()),
            },
        }
    }

    // Close the fault window: run out the drive horizon, heal every cut,
    // restore inert link classes, pay every recovery still owed.
    run_recovering_until(&mut net, &mut recoveries, horizon);
    net.sim.fault_heal_all();
    net.sim.set_link_faults(None, LinkFaults::none());
    for p in overridden {
        net.sim.set_link_faults(Some(p.addr), LinkFaults::none());
    }
    for pr in recoveries {
        recover_now(&mut net, pr.peer);
    }

    // Quiesce: anti-entropy catches stragglers up; publishes in flight
    // complete or retry through the healed network.
    net.settle(sc.heal_secs);
    let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
    net.run_until_quiet(&doc_refs, 60);
    net.settle(5);
    net.run_until_quiet(&doc_refs, 60);

    let report = check_all(&net.sim);
    let m = net.sim.metrics();
    let outcome = ScenarioOutcome {
        name: sc.name.to_string(),
        peers: sc.peers,
        sim_secs: net.now().since(t0).as_millis_f64() / 1e3,
        wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        edits: m.counter("workload.edits_issued"),
        grants: m.counter("ltr.publish_ok"),
        msgs: m.counter("sim.msgs_sent"),
        events: net.sim.events_processed(),
        crashes: m.counter("sim.crashes"),
        restarts: m.counter("sim.restarts"),
        faults_dropped: m.counter("faults.dropped"),
        faults_duplicated: m.counter("faults.duplicated"),
        faults_reordered: m.counter("faults.reordered"),
        faults_cut: m.counter("faults.cut"),
        continuity: report.continuity.is_clean(),
        total_order: report.order.is_clean(),
        converged: report.convergence.is_converged(),
        equivocation_free: report.equivocation.is_clean(),
        epoch_monotonic: report.epochs.is_clean(),
        detail: report.summary(),
    };
    (outcome, net)
}

/// Run the simulation to `until`, paying any recovery that falls due on
/// the way (in time order, ties broken by insertion order).
fn run_recovering_until(net: &mut LtrNet, recoveries: &mut Vec<PendingRecovery>, until: Time) {
    loop {
        let next = recoveries
            .iter()
            .enumerate()
            .filter(|(_, r)| r.at <= until)
            .min_by_key(|(i, r)| (r.at, *i))
            .map(|(i, _)| i);
        match next {
            Some(i) => {
                let pr = recoveries.remove(i);
                let at = pr.at.max(net.now());
                net.sim.run_until(at);
                recover_now(net, pr.peer);
            }
            None => break,
        }
    }
    net.sim.run_until(until);
}

/// Restart a crashed peer from its journal; a peer that already
/// recovered (or was never crashed, e.g. resolved twice) is skipped.
fn recover_now(net: &mut LtrNet, peer: NodeRef) {
    if net.sim.node_state(peer.addr) == NodeState::Crashed {
        net.restart_from_store(peer)
            .expect("journal of a crashed peer replays");
    }
}

/// Scale a full-size scenario down for CI quick mode / integration tests.
fn quicken(mut sc: Scenario, quick: bool) -> Scenario {
    if quick {
        sc.peers = (sc.peers / 2).max(8);
        sc.docs = sc.docs.min(2);
        sc.drive_secs = sc.drive_secs.min(12);
        if let Some(churn) = &mut sc.churn {
            churn.min_alive = churn.min_alive.min(sc.peers.saturating_sub(2));
        }
    }
    sc
}

/// The committed scenario matrix: every entry runs deterministically
/// under a fixed seed and must end with all three oracles green.
pub fn named_scenarios(quick: bool) -> Vec<Scenario> {
    let base = |name, summary| Scenario {
        name,
        summary,
        peers: 16,
        replication: 3,
        docs: 4,
        editors: 4,
        mean_think_ms: 400,
        drive_secs: 20,
        heal_secs: 12,
        base_faults: LinkFaults::none(),
        events: Vec::new(),
        churn: None,
    };

    let mut out = Vec::new();

    // 1. The master of doc 0 leaves gracefully while cut off from the
    // editors: the timestamp handoff races a partition, and the editors
    // keep publishing into whatever half they can reach.
    let mut sc = base(
        "partition_during_handoff",
        "graceful master handoff while the old master is partitioned from the editors",
    );
    sc.events = vec![
        FaultEvent {
            at_secs: 4,
            action: FaultAction::Cut {
                a: Who::Master(0),
                b: Who::Editors,
                oneway: false,
                heal_after_secs: Some(6),
            },
        },
        FaultEvent {
            at_secs: 5,
            action: FaultAction::Leave {
                who: Who::Master(0),
            },
        },
    ];
    out.push(sc);

    // 2. Repeated kill + journal-restart of whoever currently masters
    // doc 0 — the crash-with-disk storm (each incarnation replays its
    // store, rejoins, and must not re-grant a timestamp).
    let mut sc = base(
        "master_crash_storm",
        "the current master of a hot doc crashes and restarts from its journal, three times",
    );
    sc.events = (0..3)
        .map(|k| FaultEvent {
            at_secs: 4 + 5 * k,
            action: FaultAction::Crash {
                who: Who::Master(0),
                recover_after_secs: Some(3),
            },
        })
        .collect();
    out.push(sc);

    // 3. Randomized joins / leaves / crashes under editing load, plus a
    // scripted no-recovery crash of a master mid-run (takeover only).
    let mut sc = base(
        "churn_under_load",
        "random joins, graceful leaves and crashes while the editors keep publishing",
    );
    sc.churn = Some(ChurnLoad {
        mean_interval_ms: 1_500,
        crash_weight: 1,
        leave_weight: 1,
        join_weight: 2,
        min_alive: 10,
    });
    sc.events = vec![FaultEvent {
        at_secs: 8,
        action: FaultAction::Crash {
            who: Who::Master(1),
            recover_after_secs: None,
        },
    }];
    out.push(sc);

    // 4. Every link duplicates and reorders aggressively: at-least-once
    // delivery with no ordering guarantee — grants, acks and retrievals
    // all arrive twice and out of order.
    let mut sc = base(
        "dup_heavy_links",
        "25% duplicated + 25% reordered delivery on every link",
    );
    sc.base_faults = LinkFaults {
        duplicate: 0.25,
        reorder: 0.25,
        ..LinkFaults::none()
    };
    out.push(sc);

    // 5. Asymmetric partition: the master of doc 0 can hear its users
    // but none of its replies reach them — validations disappear into a
    // one-way hole until the link heals.
    let mut sc = base(
        "asym_partition_master_users",
        "one-way cut: the master's replies to the editors vanish for 6 s",
    );
    sc.events = vec![FaultEvent {
        at_secs: 4,
        action: FaultAction::Cut {
            a: Who::Master(0),
            b: Who::Editors,
            oneway: true,
            heal_after_secs: Some(6),
        },
    }];
    out.push(sc);

    // 6. A laggy (but correct) master: every message it sends or
    // receives pays 20–80 ms extra — timeouts, retries and redirects
    // fire constantly against a node that is merely slow, not dead.
    let mut sc = base(
        "laggy_master",
        "the master of doc 0 runs 20-80 ms slower than everyone else",
    );
    sc.events = vec![FaultEvent {
        at_secs: 2,
        action: FaultAction::SetLinkFaults {
            who: Some(Who::Master(0)),
            faults: LinkFaults {
                jitter: Some((Duration::from_millis(20), Duration::from_millis(80))),
                ..LinkFaults::none()
            },
        },
    }];
    out.push(sc);

    // 7. Uniform 5% loss with jitter on every link — the WAN-gone-bad
    // envelope every retry path must survive.
    let mut sc = base(
        "lossy_links",
        "5% loss + 1-10 ms jitter on every link for the whole window",
    );
    sc.base_faults = LinkFaults {
        drop: 0.05,
        jitter: Some((Duration::from_millis(1), Duration::from_millis(10))),
        ..LinkFaults::none()
    };
    out.push(sc);

    out.into_iter().map(|sc| quicken(sc, quick)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_the_committed_names() {
        let names: Vec<&str> = named_scenarios(true).iter().map(|s| s.name).collect();
        assert!(names.len() >= 6, "matrix shrank: {names:?}");
        for expect in [
            "partition_during_handoff",
            "master_crash_storm",
            "churn_under_load",
            "dup_heavy_links",
            "asym_partition_master_users",
            "laggy_master",
            "lossy_links",
        ] {
            assert!(names.contains(&expect), "missing scenario {expect}");
        }
    }

    #[test]
    fn quick_mode_shrinks_but_keeps_structure() {
        let full = named_scenarios(false);
        let quick = named_scenarios(true);
        assert_eq!(full.len(), quick.len());
        for (f, q) in full.iter().zip(&quick) {
            assert_eq!(f.name, q.name);
            assert!(q.peers <= f.peers);
            assert!(q.drive_secs <= f.drive_secs);
            assert_eq!(f.events.len(), q.events.len());
        }
    }

    #[test]
    fn clean_scenario_runs_green() {
        // A no-fault scenario through the whole driver: the pipeline
        // itself (build, drive, heal, quiesce, oracles) must be sound.
        let mut sc = named_scenarios(true).remove(0);
        sc.name = "clean";
        sc.events.clear();
        sc.drive_secs = 6;
        sc.peers = 8;
        let out = run_scenario(&sc, 0xC1EA);
        assert!(out.ok(), "{} failed: {}", out.name, out.detail);
        assert!(out.grants > 0, "no publishes happened: {out:?}");
        assert_eq!(out.faults_dropped + out.faults_cut, 0);
    }
}
