//! Churn schedules: scripted and randomized joins, graceful leaves and
//! crashes ("we may … provoke failures", RR-6497 §4).

use std::collections::BTreeSet;
use std::sync::Arc;

use chord::{Id, NodeRef};
use p2p_ltr::{LtrConfig, LtrNode, Payload, UserCmd};
use simnet::{CounterId, Duration, NodeId, NodeState, Rng64, Sim, Time};

/// What a churn event does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnAction {
    /// Crash-stop a random unprotected peer.
    Crash,
    /// Graceful leave of a random unprotected peer.
    Leave,
    /// A brand-new peer joins.
    Join,
}

/// Randomized churn parameters.
#[derive(Clone, Debug)]
pub struct ChurnSpec {
    /// Mean time between churn events (exponential).
    pub mean_interval: Duration,
    /// Relative weight of crashes.
    pub crash_weight: u32,
    /// Relative weight of graceful leaves.
    pub leave_weight: u32,
    /// Relative weight of joins.
    pub join_weight: u32,
    /// Peers that are never removed (e.g. the measured editors).
    pub protected: Vec<NodeRef>,
    /// Keep at least this many peers alive.
    pub min_alive: usize,
    /// Stop scheduling events after this time.
    pub horizon: Time,
}

struct ChurnInner {
    spec: ChurnSpec,
    protected: BTreeSet<NodeId>,
    cfg: LtrConfig,
    crashes: CounterId,
    leaves: CounterId,
    joins: CounterId,
}

/// Schedule a precise crash at an absolute time.
pub fn schedule_crash(sim: &mut Sim<Payload>, at: Time, peer: NodeRef) {
    let crashes = sim.metrics_mut().register_counter("churn.crashes");
    sim.schedule_at(
        at,
        Box::new(move |s: &mut Sim<Payload>| {
            s.crash(peer.addr);
            s.metrics_mut().incr_id(crashes);
        }),
    );
}

/// Schedule a precise graceful leave at an absolute time.
pub fn schedule_leave(sim: &mut Sim<Payload>, at: Time, peer: NodeRef) {
    let leaves = sim.metrics_mut().register_counter("churn.leaves");
    sim.schedule_at(
        at,
        Box::new(move |s: &mut Sim<Payload>| {
            if s.node_state(peer.addr) == NodeState::Up {
                s.send_external(peer.addr, Payload::Cmd(UserCmd::Leave));
                s.metrics_mut().incr_id(leaves);
            }
        }),
    );
}

/// Schedule a join of a fresh peer named `name` at an absolute time.
/// The joiner bootstraps via any live peer.
pub fn schedule_join(sim: &mut Sim<Payload>, at: Time, name: String, cfg: LtrConfig) {
    let joins = sim.metrics_mut().register_counter("churn.joins");
    sim.schedule_at(
        at,
        Box::new(move |s: &mut Sim<Payload>| {
            join_now(s, &name, &cfg, joins);
        }),
    );
}

fn live_peers(sim: &Sim<Payload>) -> Vec<NodeRef> {
    sim.alive_nodes()
        .into_iter()
        .filter_map(|a| sim.node_as::<LtrNode>(a).map(|n| n.me()))
        .collect()
}

fn join_now(
    sim: &mut Sim<Payload>,
    name: &str,
    cfg: &LtrConfig,
    joins: CounterId,
) -> Option<NodeRef> {
    let bootstrap = live_peers(sim).first().copied()?;
    let id = Id::hash(name.as_bytes());
    let addr = NodeId(sim.node_count() as u32);
    let me = NodeRef::new(addr, id);
    let assigned = sim.add_node(LtrNode::new(
        me,
        cfg.clone(),
        Some(bootstrap),
        Duration::ZERO,
    ));
    debug_assert_eq!(assigned, addr);
    sim.metrics_mut().incr_id(joins);
    Some(me)
}

/// Run randomized churn until the horizon. Deterministic given `seed`.
pub fn drive_churn(sim: &mut Sim<Payload>, spec: ChurnSpec, cfg: LtrConfig, seed: u64) {
    let inner = Arc::new(ChurnInner {
        protected: spec.protected.iter().map(|p| p.addr).collect(),
        spec,
        cfg,
        crashes: sim.metrics_mut().register_counter("churn.crashes"),
        leaves: sim.metrics_mut().register_counter("churn.leaves"),
        joins: sim.metrics_mut().register_counter("churn.joins"),
    });
    let rng = Rng64::new(seed);
    let first = sim.now() + inner.spec.mean_interval;
    schedule_churn_step(sim, first, inner, rng, 0);
}

fn schedule_churn_step(
    sim: &mut Sim<Payload>,
    at: Time,
    inner: Arc<ChurnInner>,
    mut rng: Rng64,
    counter: u64,
) {
    if at > inner.spec.horizon {
        return;
    }
    let at = at.max(sim.now());
    sim.schedule_at(
        at,
        Box::new(move |s: &mut Sim<Payload>| {
            let spec = &inner.spec;
            let total = (spec.crash_weight + spec.leave_weight + spec.join_weight) as u64;
            if total > 0 {
                let r = rng.gen_below(total) as u32;
                let action = if r < spec.crash_weight {
                    ChurnAction::Crash
                } else if r < spec.crash_weight + spec.leave_weight {
                    ChurnAction::Leave
                } else {
                    ChurnAction::Join
                };
                match action {
                    ChurnAction::Crash | ChurnAction::Leave => {
                        let candidates: Vec<NodeRef> = live_peers(s)
                            .into_iter()
                            .filter(|p| !inner.protected.contains(&p.addr))
                            .collect();
                        if live_peers(s).len() > spec.min_alive && !candidates.is_empty() {
                            let victim = *rng.pick(&candidates);
                            if action == ChurnAction::Crash {
                                s.crash(victim.addr);
                                s.metrics_mut().incr_id(inner.crashes);
                            } else {
                                s.send_external(victim.addr, Payload::Cmd(UserCmd::Leave));
                                s.metrics_mut().incr_id(inner.leaves);
                            }
                        }
                    }
                    ChurnAction::Join => {
                        let name = format!("churn-joiner-{counter}");
                        join_now(s, &name, &inner.cfg, inner.joins);
                    }
                }
            }
            let gap = Duration::from_micros(
                rng.exp_mean(inner.spec.mean_interval.as_micros() as f64)
                    .max(1.0) as u64,
            );
            let next = s.now() + gap;
            schedule_churn_step(s, next, inner, rng, counter + 1);
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_ltr::harness::LtrNet;
    use simnet::NetConfig;

    #[test]
    fn scripted_crash_and_join_fire() {
        let mut net = LtrNet::build(
            21,
            NetConfig::lan(),
            6,
            LtrConfig::default(),
            Duration::from_millis(100),
        );
        net.settle(10);
        let victim = net.peers[3];
        let t_crash = net.now() + Duration::from_secs(1);
        let t_join = net.now() + Duration::from_secs(2);
        schedule_crash(&mut net.sim, t_crash, victim);
        schedule_join(&mut net.sim, t_join, "fresh".into(), LtrConfig::default());
        net.settle(10);
        assert_eq!(net.sim.node_state(victim.addr), NodeState::Crashed);
        assert_eq!(net.sim.metrics().counter("churn.crashes"), 1);
        assert_eq!(net.sim.metrics().counter("churn.joins"), 1);
        assert_eq!(net.alive_peers().len(), 6); // 6 - 1 + 1
    }

    #[test]
    fn random_churn_respects_min_alive_and_protection() {
        let mut net = LtrNet::build(
            22,
            NetConfig::lan(),
            8,
            LtrConfig::default(),
            Duration::from_millis(100),
        );
        net.settle(10);
        let protected = vec![net.peers[0], net.peers[1]];
        let horizon = net.now() + Duration::from_secs(30);
        let spec = ChurnSpec {
            mean_interval: Duration::from_millis(300),
            crash_weight: 2,
            leave_weight: 1,
            join_weight: 0,
            protected: protected.clone(),
            min_alive: 4,
            horizon,
        };
        drive_churn(&mut net.sim, spec, LtrConfig::default(), 5);
        net.settle(40);
        let alive = net.alive_peers();
        assert!(alive.len() >= 4, "min_alive violated: {}", alive.len());
        for p in &protected {
            assert_eq!(
                net.sim.node_state(p.addr),
                NodeState::Up,
                "protected peer removed"
            );
        }
        assert!(
            net.sim.metrics().counter("churn.crashes") + net.sim.metrics().counter("churn.leaves")
                > 0
        );
    }
}
