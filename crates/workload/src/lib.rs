//! # ltr-workload — workload generators for the P2P-LTR experiments
//!
//! The paper's prototype drove demonstrations by hand through a GUI
//! ("specify the number of peers or network latencies, or provoke
//! failures"); this crate scripts the same stimuli deterministically:
//!
//! * [`editors`] / [`driver`] — synthetic wiki editors: exponential think
//!   times, Zipf document popularity, insert/delete/change line mixes,
//!   unique attributable lines (so lost updates are detectable);
//! * [`churn`] — scripted and randomized joins, graceful leaves and
//!   crashes, with protected peers and a minimum-alive floor;
//! * [`scenario`] — named fault scenarios as data (partitions during
//!   handoff, master crash storms, duplicate-heavy links, …) executed by
//!   one driver over the `simnet` fault engine, every run ending in the
//!   invariant oracles.
//!
//! Everything is seeded and replayable.

#![warn(missing_docs)]

pub mod churn;
pub mod driver;
pub mod editors;
pub mod scenario;

pub use churn::{drive_churn, schedule_crash, schedule_join, schedule_leave, ChurnSpec};
pub use driver::{drive_editors, EditorSpec};
pub use editors::{mutate_text, EditKind, EditMix};
pub use scenario::{
    named_scenarios, run_scenario, run_scenario_with_mode, ChurnLoad, FaultAction, FaultEvent,
    Scenario, ScenarioOutcome, Who,
};
