//! Self-scheduling workload drivers: editors that wake up on exponential
//! think times, pick a document by Zipf popularity, mutate it, and save.

use std::sync::Arc;

use p2p_ltr::{LtrNode, Payload, UserCmd};
use simnet::{CounterId, Duration, NodeState, Rng64, Sim, Time, Zipf};

use chord::NodeRef;

use crate::editors::{mutate_text, EditMix};

/// Parameters of an editing population.
#[derive(Clone, Debug)]
pub struct EditorSpec {
    /// Documents edited (must be open at the editing peers).
    pub docs: Vec<String>,
    /// Zipf skew for document choice (0.0 = uniform).
    pub zipf_skew: f64,
    /// Mean think time between saves per editor (exponential).
    pub mean_think: Duration,
    /// Edit kind mix.
    pub mix: EditMix,
    /// Stop scheduling new edits at this simulated time.
    pub horizon: Time,
}

struct SpecInner {
    docs: Vec<String>,
    zipf: Zipf,
    mean_think_us: f64,
    mix: EditMix,
    horizon: Time,
    /// Pre-registered handle (PR-2 metrics discipline: fixed-name counters
    /// never do by-name lookups at fire time).
    edits_issued: CounterId,
}

/// Attach an editor loop to each of `peers`. Each editor gets its own
/// deterministic RNG stream derived from `seed`.
pub fn drive_editors(sim: &mut Sim<Payload>, peers: &[NodeRef], spec: &EditorSpec, seed: u64) {
    let inner = Arc::new(SpecInner {
        docs: spec.docs.clone(),
        zipf: Zipf::new(spec.docs.len(), spec.zipf_skew),
        mean_think_us: spec.mean_think.as_micros() as f64,
        mix: spec.mix.clone(),
        horizon: spec.horizon,
        edits_issued: sim.metrics_mut().register_counter("workload.edits_issued"),
    });
    let mut seeder = Rng64::new(seed);
    for &peer in peers {
        let rng = seeder.fork();
        let first =
            sim.now() + Duration::from_micros(seeder.gen_below(spec.mean_think.as_micros().max(1)));
        schedule_step(sim, first, peer, Arc::clone(&inner), rng, 0);
    }
}

fn schedule_step(
    sim: &mut Sim<Payload>,
    at: Time,
    peer: NodeRef,
    spec: Arc<SpecInner>,
    mut rng: Rng64,
    counter: u64,
) {
    if at > spec.horizon {
        return;
    }
    let at = at.max(sim.now());
    sim.schedule_at(
        at,
        Box::new(move |s: &mut Sim<Payload>| {
            if s.node_state(peer.addr) == NodeState::Up {
                let doc = spec.docs[spec.zipf.sample(&mut rng)].clone();
                let edit = s.node_as::<LtrNode>(peer.addr).and_then(|node| {
                    if node.is_busy(&doc) {
                        None // skip this beat; edit next time
                    } else {
                        node.doc_text(&doc).map(|text| {
                            let kind = spec.mix.sample(&mut rng);
                            mutate_text(&text, kind, node.site(), counter, &mut rng)
                        })
                    }
                });
                if let Some(new_text) = edit {
                    s.send_external(peer.addr, Payload::Cmd(UserCmd::Edit { doc, new_text }));
                    s.metrics_mut().incr_id(spec.edits_issued);
                }
            }
            let gap = Duration::from_micros(rng.exp_mean(spec.mean_think_us).max(1.0) as u64);
            let next = s.now() + gap;
            schedule_step(s, next, peer, spec, rng, counter + 1);
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2p_ltr::harness::LtrNet;
    use p2p_ltr::LtrConfig;
    use simnet::NetConfig;

    #[test]
    fn editors_issue_edits_until_horizon() {
        let mut net = LtrNet::build(
            11,
            NetConfig::lan(),
            6,
            LtrConfig::default(),
            Duration::from_millis(100),
        );
        net.settle(15);
        let peers = net.peers.clone();
        net.open_doc(&peers, "doc", "seed");
        net.settle(1);
        let spec = EditorSpec {
            docs: vec!["doc".into()],
            zipf_skew: 0.0,
            mean_think: Duration::from_millis(500),
            mix: EditMix::default(),
            horizon: net.now() + Duration::from_secs(5),
        };
        drive_editors(&mut net.sim, &peers[..2], &spec, 7);
        net.settle(10);
        let issued = net.sim.metrics().counter("workload.edits_issued");
        assert!(issued > 5, "only {issued} edits issued");
        // No edits after the horizon.
        let at_horizon = issued;
        net.settle(5);
        assert_eq!(
            net.sim.metrics().counter("workload.edits_issued"),
            at_horizon
        );
    }
}
